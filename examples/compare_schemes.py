#!/usr/bin/env python
"""Compare all register storage schemes across the benchmark suite.

Reproduces the core comparison of the paper's Figure 11 at one cache
size: LRU, non-bypass, and use-based register caches, the optimistic
two-level register file, and monolithic register files at 1-3 cycles.

Usage::

    python examples/compare_schemes.py [cache_entries] [scale]
"""

import sys

from repro import (
    DEFAULT_SUITE,
    lru_config,
    mean_ipc,
    monolithic_config,
    non_bypass_config,
    simulate_suite,
    two_level_config,
    use_based_config,
)


def main() -> None:
    entries = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    machines = {
        "use-based cache": use_based_config(cache_entries=entries),
        "LRU cache (Yung & Wilhelm)": lru_config(cache_entries=entries),
        "non-bypass cache (Cruz et al.)": non_bypass_config(
            cache_entries=entries
        ),
        f"two-level RF (L1={entries + 32})": two_level_config(
            cache_entries=entries
        ),
        "monolithic RF, 1 cycle": monolithic_config(1),
        "monolithic RF, 2 cycles": monolithic_config(2),
        "monolithic RF, 3 cycles": monolithic_config(3),
    }

    print(f"cache size {entries}, suite of {len(DEFAULT_SUITE)} "
          f"benchmarks at scale {scale}")
    print()
    print(f"{'machine':32s} {'mean IPC':>9s} {'miss rate':>10s}")
    print("-" * 54)
    for label, config in machines.items():
        results = simulate_suite(config, scale=scale)
        ipc = mean_ipc(results)
        first = next(iter(results.values()))
        if first.cache is not None:
            reads = sum(s.cache.reads for s in results.values())
            misses = sum(s.cache.miss_count for s in results.values())
            miss_text = f"{misses / reads:10.4f}"
        else:
            miss_text = f"{'-':>10s}"
        print(f"{label:32s} {ipc:9.3f} {miss_text}")


if __name__ == "__main__":
    main()
