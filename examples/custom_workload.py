#!/usr/bin/env python
"""Bring your own workload: assemble a program and study its register
behaviour under different cache policies.

Demonstrates the three workload entry points the library offers:

1. writing assembly directly and running it through the functional VM,
2. the prepackaged SPECint-like kernels,
3. the statistical trace synthesizer with custom degree-of-use
   distributions.

Usage::

    python examples/custom_workload.py
"""

from repro import assemble, lru_config, run_program, simulate, use_based_config
from repro.workloads.synthetic import SyntheticSpec, generate

DOT_PRODUCT = """
# dot product of two 64-element vectors, two lanes
main:
    addi r2, r0, 0x1000      # vector a
    addi r3, r0, 0x2000      # vector b
    addi r4, r0, 64          # length
    addi r5, r0, 0           # index
    addi r16, r0, 0          # accumulator lane 0
    addi r17, r0, 0          # accumulator lane 1
loop:
    add  r6, r2, r5
    lw   r7, 0(r6)
    add  r8, r3, r5
    lw   r9, 0(r8)
    mul  r10, r7, r9
    add  r16, r16, r10
    lw   r11, 1(r6)
    lw   r12, 1(r8)
    mul  r13, r11, r12
    add  r17, r17, r13
    addi r5, r5, 2
    bne  r5, r4, loop
    add  r16, r16, r17
    out  r16
    halt
""" + "\n".join(
    f".data {0x1000 + i}: " + " ".join(str((i + j) % 7 + 1) for j in range(1))
    for i in range(64)
) + "\n" + "\n".join(
    f".data {0x2000 + i}: " + " ".join(str((3 * i + j) % 5 + 1) for j in range(1))
    for i in range(64)
)


def describe(label, stats) -> None:
    cache = stats.cache
    print(f"{label:24s} ipc={stats.ipc:6.3f}  "
          f"miss={cache.miss_rate:7.4f}  "
          f"filtered_writes={cache.filtered_write_fraction:6.3f}  "
          f"bypass={stats.bypass_fraction:6.3f}")


def main() -> None:
    # 1. Hand-written assembly through the VM.
    from repro.vm.machine import Machine

    program = assemble(DOT_PRODUCT, name="dot_product")
    machine = Machine(program)
    trace = machine.run()
    print(f"dot_product: {len(trace)} dynamic instructions, "
          f"result = {machine.output[0]}")
    print()
    print("policy comparison on the custom kernel:")
    describe("use-based", simulate(trace, use_based_config()))
    describe("lru", simulate(trace, lru_config()))

    # 2. A statistical trace with an aggressive multi-use distribution.
    print()
    print("synthetic trace, heavy value reuse:")
    spec = SyntheticSpec(
        length=8_000,
        degree_weights=(0.05, 0.45, 0.25, 0.15, 0.10),
        high_use_fraction=0.05,
        seed=2024,
        name="synthetic-reuse",
    )
    synthetic = generate(spec)
    describe("use-based", simulate(synthetic, use_based_config()))
    describe("lru", simulate(synthetic, lru_config()))


if __name__ == "__main__":
    main()
