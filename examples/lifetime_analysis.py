#!/usr/bin/env python
"""Register-lifetime analysis (the paper's Figures 1 and 2).

Shows why register caching works: values are *live* (written but not
yet fully consumed) for only a small slice of the time their physical
registers stay allocated, so a small structure holding just the live
values can serve most reads.

Usage::

    python examples/lifetime_analysis.py [scale]
"""

import sys

from repro import DEFAULT_SUITE, simulate_suite, use_based_config
from repro.core.lifetimes import (
    allocated_cdf,
    concatenate_records,
    live_cdf,
    mean_phase_summary,
    phase_summary,
)


def bar(value, width=40, maximum=300):
    filled = min(width, int(width * value / maximum))
    return "#" * filled


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    print(f"running {len(DEFAULT_SUITE)} benchmarks at scale {scale} ...")
    results = simulate_suite(use_based_config(), scale=scale)

    print()
    print("register lifetime phases (median cycles per benchmark):")
    print(f"{'benchmark':14s} {'empty':>7s} {'live':>7s} {'dead':>7s}")
    summaries = []
    for name, stats in results.items():
        summary = phase_summary(stats.lifetimes)
        summaries.append(summary)
        print(f"{name:14s} {summary.empty:7.1f} {summary.live:7.1f} "
              f"{summary.dead:7.1f}")
    mean = mean_phase_summary(summaries)
    print(f"{'MEAN':14s} {mean.empty:7.1f} {mean.live:7.1f} "
          f"{mean.dead:7.1f}")
    live_share = mean.live / max(1e-9, mean.total)
    print(f"\nvalues are live for only {live_share:.1%} of the register "
          "lifetime -> a small cache of live values suffices")

    records = concatenate_records(
        [stats.lifetimes for stats in results.values()]
    )
    alloc = allocated_cdf(records)
    live = live_cdf(records)
    print()
    print("simultaneously allocated vs live registers:")
    for label, cdf in (("allocated", alloc), ("live", live)):
        p50, p90 = cdf.median, cdf.percentile(0.9)
        print(f"  {label:10s} p50={p50:4d} {bar(p50)}")
        print(f"  {label:10s} p90={p90:4d} {bar(p90)}")
    print()
    print(f"90% of the time, {live.percentile(0.9)} entries hold every "
          "live value (the paper found 56 with 512 physical registers)")


if __name__ == "__main__":
    main()
