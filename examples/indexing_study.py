#!/usr/bin/env python
"""Decoupled indexing study (the paper's Figure 7, §4).

Sweeps the four set-assignment policies over associativities and plots
conflict misses and IPC as ASCII charts. Also demonstrates the pipeline
debug viewer on a short window to show where operands come from.

Usage::

    python examples/indexing_study.py [scale]
"""

import sys

from repro import use_based_config
from repro.analysis.charts import bar_chart, line_chart
from repro.analysis.sweeps import load_traces, run_config
from repro.core.debug import render_timeline
from repro.core.pipeline import Pipeline
from repro.core.simulator import mean_ipc
from repro.workloads.suite import load_trace

POLICIES = ("preg", "round_robin", "minimum", "filtered_rr")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    traces = load_traces(scale=scale)

    print("indexing policies on the 64-entry cache "
          "(conflict misses, lower is better):")
    conflicts = {}
    ipcs = {}
    for policy in POLICIES:
        results = run_config(
            traces, use_based_config(indexing=policy, cache_assoc=2)
        )
        conflicts[policy] = float(sum(
            stats.cache.misses["conflict"] for stats in results.values()
        ))
        ipcs[policy] = mean_ipc(results)
    print()
    print(bar_chart(conflicts, title="conflict misses (2-way)",
                    fmt="{:.0f}"))
    print()
    print(bar_chart(ipcs, title="mean IPC (2-way)"))

    # IPC vs associativity for standard vs filtered round-robin.
    print()
    series = {}
    for policy in ("preg", "filtered_rr"):
        points = []
        for assoc in (1, 2, 4):
            results = run_config(
                traces,
                use_based_config(indexing=policy, cache_assoc=assoc),
            )
            points.append((assoc, mean_ipc(results)))
        series[policy] = points
    print(line_chart(series, title="IPC vs associativity",
                     y_label="mean IPC", height=12))

    # Peek at the pipeline with the debug viewer.
    print()
    print("pipeline timeline for the first interp dispatches:")
    trace = load_trace("interp", scale=0.15)
    pipeline = Pipeline(trace, use_based_config(record_timing=True))
    pipeline.run()
    print(render_timeline(pipeline, first_seq=20, count=12))


if __name__ == "__main__":
    main()
