#!/usr/bin/env python
"""Quickstart: simulate one benchmark under the paper's design point.

Runs the `compress` kernel on the use-based register-cache machine
(64-entry, 2-way, filtered round-robin indexing) and on the 3-cycle
monolithic register file it replaces, then prints the headline numbers
the paper's evaluation revolves around.

Usage::

    python examples/quickstart.py [scale]

where *scale* (default 0.3) multiplies the benchmark's dynamic
instruction count.
"""

import sys

from repro import monolithic_config, simulate_benchmark, use_based_config


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3

    print(f"simulating 'compress' at scale {scale} ...")
    cached = simulate_benchmark("compress", use_based_config(), scale=scale)
    baseline = simulate_benchmark(
        "compress", monolithic_config(3), scale=scale
    )
    ideal = simulate_benchmark("compress", monolithic_config(1), scale=scale)

    print()
    print(f"{'machine':34s} {'IPC':>7s}")
    print("-" * 42)
    print(f"{'1-cycle register file (ideal)':34s} {ideal.ipc:7.3f}")
    print(f"{'use-based register cache (64, 2w)':34s} {cached.ipc:7.3f}")
    print(f"{'3-cycle register file (baseline)':34s} {baseline.ipc:7.3f}")

    cache = cached.cache
    print()
    print("register cache behaviour:")
    print(f"  miss rate (per operand read) : {cache.miss_rate:8.4f}")
    print(f"  misses by cause              : {dict(cache.misses)}")
    print(f"  initial writes filtered      : "
          f"{cache.filtered_write_fraction:8.4f}")
    print(f"  values never cached          : "
          f"{cache.never_cached_fraction:8.4f}")
    print(f"  average occupancy (entries)  : "
          f"{cache.average_occupancy(cached.cycles):8.2f}")
    print(f"  operands from bypass network : "
          f"{cached.bypass_fraction:8.4f}")
    print(f"  degree-of-use pred. accuracy : "
          f"{cached.predictor_accuracy:8.4f}")

    recovered = (cached.ipc - baseline.ipc) / max(
        1e-9, ideal.ipc - baseline.ipc
    )
    print()
    print(f"the cache recovers {recovered:.0%} of the performance lost "
          "to the 3-cycle register file")


if __name__ == "__main__":
    main()
