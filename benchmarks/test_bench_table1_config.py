"""T1: the simulated machine matches the paper's Table 1."""

from repro.analysis.experiments import table1_config


def test_bench_table1(run_experiment):
    result = run_experiment(table1_config)
    for row in result.rows:
        parameter, ours, paper = row
        assert ours == paper, f"{parameter}: {ours} != {paper}"
