"""F8: miss-rate breakdown by cause (Figure 8).

Shapes to reproduce: LRU has no filtered misses (it writes everything);
non-bypass's filtered misses push its total above LRU's; use-based
filtering keeps the total below non-bypass; decoupled indexing reduces
conflict misses for every scheme.
"""

from repro.analysis.experiments import fig8_miss_breakdown


def test_bench_fig8(run_experiment):
    result = run_experiment(fig8_miss_breakdown)
    rows = {(r[0], r[1]): r[2:] for r in result.rows}
    # columns: filtered, capacity, conflict, total

    assert rows[("lru", "standard")][0] == 0, "LRU never filters writes"
    assert rows[("lru", "decoupled")][0] == 0

    nb_total = rows[("non_bypass", "decoupled")][3]
    lru_total = rows[("lru", "decoupled")][3]
    ub_total = rows[("use_based", "decoupled")][3]
    assert nb_total > lru_total, (
        "non-bypass filtered misses should exceed LRU's total at 64"
    )
    assert ub_total < nb_total, "use-based filtering beats non-bypass"

    # Decoupled indexing cuts conflicts for each scheme.
    for scheme in ("lru", "non_bypass", "use_based"):
        standard = rows[(scheme, "standard")][2]
        decoupled = rows[(scheme, "decoupled")][2]
        assert decoupled <= standard * 1.05, (
            f"{scheme}: decoupled indexing should not add conflicts"
        )
