"""Engine speedups: serial vs parallel fan-out, cold vs warm cache, and
the single-trace pipeline hot loop.

Unlike the figure benchmarks these do not reproduce a paper artifact;
they track the performance of the harness itself. Each test records its
measurements in ``benchmark.extra_info`` so the bench JSON carries the
speedup trajectory across PRs. Speedup *assertions* that depend on real
parallel hardware are skipped on single-core machines (the numbers are
still recorded).
"""

import os
import time

import pytest

from repro.analysis.engine import ExperimentEngine, SimJob
from repro.core.config import (
    lru_config,
    monolithic_config,
    non_bypass_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline
from repro.workloads.suite import load_trace

SCALE = float(os.environ.get("REPRO_SCALE", "0.2"))
TRACE_NAMES = ("compress", "pointer_chase", "interp", "hash_dict")
CONFIGS = (
    use_based_config(),
    lru_config(),
    non_bypass_config(),
    monolithic_config(3),
)


def _grid_jobs():
    """The 4x4 sweep grid used by both engine benchmarks."""
    return [
        SimJob(config=config, trace_name=name, scale=SCALE, label=name)
        for config in CONFIGS
        for name in TRACE_NAMES
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_bench_parallel_vs_serial(benchmark, tmp_path):
    """4x4 sweep, serial pass vs process-pool pass (cache disabled)."""
    cpus = os.cpu_count() or 1
    serial_engine = ExperimentEngine(workers=1, use_cache=False)
    serial_stats, serial_s = _timed(lambda: serial_engine.run(_grid_jobs()))

    parallel_engine = ExperimentEngine(workers=0, use_cache=False)
    parallel_stats = None

    def parallel_pass():
        nonlocal parallel_stats
        parallel_stats = parallel_engine.run(_grid_jobs())

    benchmark.pedantic(parallel_pass, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean

    assert [s.to_dict() for s in parallel_stats] == [
        s.to_dict() for s in serial_stats
    ], "parallel results must be bitwise-identical to serial"

    speedup = serial_s / parallel_s if parallel_s else 0.0
    benchmark.extra_info.update({
        "cpus": cpus,
        "workers": parallel_engine.workers,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "parallel_speedup": round(speedup, 3),
        "serial_fallbacks": parallel_engine.counters.serial_fallbacks,
    })
    print(f"\nserial {serial_s:.2f}s, parallel {parallel_s:.2f}s "
          f"({parallel_engine.workers} workers, {cpus} cpus): "
          f"{speedup:.2f}x")
    if cpus < 2:
        pytest.skip("parallel speedup needs >= 2 CPUs; numbers recorded")
    assert speedup >= 1.8, (
        f"expected >= 1.8x with {parallel_engine.workers} workers, "
        f"got {speedup:.2f}x"
    )


def test_bench_cold_vs_warm_cache(benchmark, tmp_path):
    """Cold 4x4 sweep populates the cache; warm pass must be >= 10x."""
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path / "cache")
    cold_stats, cold_s = _timed(lambda: engine.run(_grid_jobs()))
    assert engine.counters.executed == len(cold_stats)

    warm_stats = None

    def warm_pass():
        nonlocal warm_stats
        warm_stats = engine.run(_grid_jobs())

    benchmark.pedantic(warm_pass, rounds=1, iterations=1)
    warm_s = benchmark.stats.stats.mean

    assert [s.to_dict() for s in warm_stats] == [
        s.to_dict() for s in cold_stats
    ], "cached results must be bitwise-identical to simulated ones"
    assert engine.counters.cache_hits == len(cold_stats)
    assert engine.counters.executed == len(cold_stats), "warm pass resimulated"

    speedup = cold_s / warm_s if warm_s else 0.0
    benchmark.extra_info.update({
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_speedup": round(speedup, 3),
        "jobs": len(cold_stats),
    })
    print(f"\ncold {cold_s:.2f}s, warm {warm_s:.3f}s: {speedup:.1f}x")
    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x faster"


def test_bench_pipeline_hot_loop(benchmark):
    """Single-trace simulation rate — the pipeline inner-loop metric.

    The seed measured ~0.306s for compress at scale 0.4 on the
    reference container; the hot-loop rework targets >= 10% under that.
    Absolute thresholds are machine-dependent, so the assertion here is
    only that the run completes and the rate is recorded.
    """
    trace = load_trace("compress", scale=0.4)
    config = use_based_config()
    Pipeline(trace, config).run()  # warm caches/allocators

    stats = benchmark.pedantic(
        lambda: Pipeline(trace, config).run(), rounds=3, iterations=1,
    )
    best = benchmark.stats.stats.min
    rate = stats.retired / best if best else 0.0
    benchmark.extra_info.update({
        "trace": "compress@0.4",
        "retired": stats.retired,
        "best_seconds": round(best, 4),
        "insts_per_second": round(rate),
    })
    print(f"\ncompress@0.4: {best:.3f}s best, {rate:,.0f} retired insts/s")
    assert stats.retired > 0
