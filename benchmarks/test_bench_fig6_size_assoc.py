"""F6: cache size and organization sweep (Figure 6).

Shapes to reproduce: associativity matters most; higher associativity
never hurts at fixed size; performance rises with size; the 64-entry
2-way cache beats the 3-cycle monolithic register file; direct-mapped
caches trail badly.
"""

from repro.analysis.experiments import fig6_size_assoc


def _numeric(rows):
    return {r[0]: r[1:] for r in rows if isinstance(r[0], int)}


def test_bench_fig6(run_experiment):
    result = run_experiment(
        fig6_size_assoc, sizes=(16, 32, 64, 128), assocs=(1, 2, 4, 0)
    )
    by_size = _numeric(result.rows)
    rf3 = next(r[4] for r in result.rows if r[0] == "RF 3-cycle")

    # Associativity helps (or at least never hurts much) at every size.
    for size, (direct, two_way, four_way, full) in by_size.items():
        assert two_way >= direct - 0.01, f"2-way < DM at {size}"
        assert four_way >= two_way - 0.01, f"4-way < 2-way at {size}"
        assert full >= four_way - 0.01, f"full < 4-way at {size}"

    # Size helps within an organization.
    assert by_size[128][1] >= by_size[16][1]

    # The chosen design point (64-entry 2-way) beats the 3-cycle file.
    assert by_size[64][1] > rf3
