"""Trace-factory speedups: predecoded VM dispatch and the on-disk
trace cache.

Like the engine benches, these track the performance of the harness
itself rather than a paper artifact. Each test records its measurements
in ``benchmark.extra_info`` so the bench JSON carries the trajectory
across PRs; hardware-dependent speedup assertions are relaxed or skipped
on constrained machines (the numbers are still recorded).
"""

import os
import time

import pytest

from repro.workloads import suite
from repro.workloads.suite import build_program, clear_trace_memo, load_trace
from repro.vm.machine import Machine

SCALE = float(os.environ.get("REPRO_SCALE", "0.2"))
TRACE_NAMES = ("compress", "pointer_chase", "interp", "hash_dict")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_bench_interpreter_vs_predecoded(benchmark):
    """Trace generation across four kernels: if/elif interpreter vs the
    predecoded dispatch path (the tentpole's >= 2x target)."""
    programs = [build_program(name, scale=SCALE) for name in TRACE_NAMES]
    # Warm once so first-touch allocator effects hit neither side.
    for program in programs:
        Machine(program).run()

    interp_traces, interp_s = _timed(
        lambda: [Machine(p, predecode=False).run() for p in programs]
    )

    fast_traces = None

    def predecoded_pass():
        nonlocal fast_traces
        fast_traces = [Machine(p).run() for p in programs]

    benchmark.pedantic(predecoded_pass, rounds=1, iterations=1)
    fast_s = benchmark.stats.stats.mean

    for slow, fast in zip(interp_traces, fast_traces):
        assert [r.signature() for r in fast.records] == [
            r.signature() for r in slow.records
        ], "predecoded trace must be bit-identical to the interpreter's"

    insts = sum(len(t) for t in fast_traces)
    speedup = interp_s / fast_s if fast_s else 0.0
    benchmark.extra_info.update({
        "kernels": ",".join(TRACE_NAMES),
        "dynamic_insts": insts,
        "interpreter_seconds": round(interp_s, 4),
        "predecoded_seconds": round(fast_s, 4),
        "predecode_speedup": round(speedup, 3),
        "predecoded_insts_per_second": round(insts / fast_s) if fast_s else 0,
    })
    print(f"\ninterpreter {interp_s:.3f}s, predecoded {fast_s:.3f}s: "
          f"{speedup:.2f}x over {insts:,} insts")
    assert speedup >= 2.0, (
        f"predecoded dispatch only {speedup:.2f}x over the interpreter"
    )


def test_bench_cold_vs_warm_trace_cache(benchmark, tmp_path, monkeypatch):
    """Suite loading wall-clock: VM execution (cold) vs packed-trace
    deserialization (warm), through the real load_trace path."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", "1")
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "traces"))
    clear_trace_memo()

    before = suite.trace_counters().snapshot()
    _, cold_s = _timed(
        lambda: [load_trace(name, scale=SCALE) for name in TRACE_NAMES]
    )
    cold_delta = suite.trace_counters().since(before)
    assert cold_delta["traces_generated"] == len(TRACE_NAMES)

    clear_trace_memo()  # cold process, warm disk
    warm_traces = None

    def warm_pass():
        nonlocal warm_traces
        warm_traces = [load_trace(name, scale=SCALE) for name in TRACE_NAMES]

    benchmark.pedantic(warm_pass, rounds=1, iterations=1)
    warm_s = benchmark.stats.stats.mean

    warm_delta = suite.trace_counters().since(before)
    assert warm_delta["traces_generated"] == len(TRACE_NAMES), \
        "warm pass must not re-execute the VM"
    assert warm_delta["traces_loaded"] == len(TRACE_NAMES)
    clear_trace_memo()

    speedup = cold_s / warm_s if warm_s else 0.0
    benchmark.extra_info.update({
        "kernels": ",".join(TRACE_NAMES),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "trace_cache_speedup": round(speedup, 3),
    })
    print(f"\ncold {cold_s:.3f}s, warm {warm_s:.3f}s: {speedup:.2f}x")
    if (os.cpu_count() or 1) < 2:
        pytest.skip("cache speedup noisy on constrained machines; recorded")
    assert speedup >= 1.5, f"trace cache only {speedup:.2f}x faster"
