"""F1: register lifetime phases (Figure 1).

Shape to reproduce: values are live for a short slice of the register's
lifetime — the median live time is small compared with empty + dead.
"""

from repro.analysis.experiments import fig1_lifetimes


def test_bench_fig1(run_experiment):
    result = run_experiment(fig1_lifetimes)
    mean_row = next(r for r in result.rows if r[0] == "MEAN")
    _, empty, live, dead = mean_row
    assert live < empty + dead, (
        "live time should be a small slice of the register lifetime"
    )
    assert dead > 0, "registers spend cycles dead before being freed"
