"""F10: write-filtering effects (Figure 10).

Shapes to reproduce: the filtering schemes sharply reduce the fraction
of cached-but-never-read values versus LRU; use-based filters at least
as many initial writes as non-bypass yet leaves the largest fraction of
values never cached at all.
"""

from repro.analysis.experiments import fig10_filtering


def test_bench_fig10(run_experiment):
    result = run_experiment(fig10_filtering)
    rows = {r[0]: r[1:] for r in result.rows}
    # columns: cached never read, writes filtered, never cached

    assert rows["use_based"][0] < rows["lru"][0], (
        "use-based caches far fewer dead values than LRU"
    )
    assert rows["non_bypass"][0] < rows["lru"][0]
    assert rows["lru"][1] == 0, "LRU filters no writes"
    assert rows["use_based"][2] >= rows["non_bypass"][2] * 0.9, (
        "use-based leaves at least as many values never cached"
    )
    assert rows["lru"][2] <= 0.01, "LRU caches every value"
