"""T2: register cache metric comparison (Table 2).

Shapes to reproduce (paper values LRU / non-bypass / use-based):
reads per cached value 0.67 / 1.18 / 1.67 — use-based highest;
cache count 1.09 / 0.61 / 0.44 — use-based lowest, LRU >= 1;
occupancy 36.7 / 28.8 / 26.6 — LRU highest;
entry lifetime 25.2 / 36.3 / 43.6 — use-based longest.
"""

from repro.analysis.experiments import table2_metrics


def test_bench_table2(run_experiment):
    result = run_experiment(table2_metrics)
    rows = {r[0]: r[1:] for r in result.rows}
    # columns: reads/cached value, cache count, occupancy, lifetime

    assert (
        rows["use_based"][0] > rows["non_bypass"][0] > rows["lru"][0]
    ), "reads per cached value ordering"
    assert (
        rows["lru"][1] > rows["non_bypass"][1] > rows["use_based"][1]
    ), "cache count ordering"
    assert rows["lru"][1] >= 0.99, "LRU caches every value at least once"
    assert rows["lru"][2] > rows["use_based"][2], "occupancy ordering"
    assert (
        rows["use_based"][3] > rows["non_bypass"][3] > rows["lru"][3]
    ), "entry lifetime ordering"
