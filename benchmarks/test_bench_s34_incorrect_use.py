"""S34: incorrect use information (paper §3.4).

Shape to reproduce: degrading the use information (modelling wrong-path
use counting and mispredictions) raises the miss rate and lowers
accuracy, but performance degrades gracefully — the paper argues stale
values are bounded by invalidation-at-free and falsely-dead values are
masked by lazy eviction and the bypass network.
"""

from repro.analysis.experiments import incorrect_use_info


def test_bench_s34(run_experiment):
    result = run_experiment(
        incorrect_use_info, noise_levels=(0.0, 0.3, 0.6)
    )
    rows = {r[0]: r[1:] for r in result.rows}
    # columns: mean ipc, miss rate, pred accuracy

    assert rows[0.6][2] < rows[0.0][2], "noise must lower accuracy"
    assert rows[0.6][1] >= rows[0.0][1] - 1e-6, (
        "noise should not reduce the miss rate"
    )
    # Graceful degradation: even 60% training noise costs little IPC.
    assert rows[0.6][0] > rows[0.0][0] * 0.9
