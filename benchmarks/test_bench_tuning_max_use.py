"""S53a: IPC versus the maximum representable use count (paper §5.3).

Shape to reproduce: very low limits pin too many values and hurt; the
curve improves toward the paper's chosen limit of 7 and is roughly flat
beyond it.
"""

from repro.analysis.experiments import tuning_max_use


def test_bench_tuning_max_use(run_experiment):
    result = run_experiment(tuning_max_use, values=(2, 3, 7, 12))
    by_value = {r[0]: r[1] for r in result.rows}
    assert by_value[7] >= by_value[2] - 0.005, (
        "max_use 7 should not lose to an aggressive limit of 2"
    )
    # Beyond the knee the curve is roughly flat.
    assert abs(by_value[12] - by_value[7]) < 0.03
