"""Benchmark-harness configuration.

Each ``test_bench_*`` module regenerates one table or figure of the
paper via :mod:`repro.analysis.experiments`, times it with
pytest-benchmark, prints the rendered ASCII artifact, and asserts its
qualitative shape.

Workload scale is controlled with ``REPRO_SCALE`` (default 0.2 here to
keep the full harness to a few minutes) and ``REPRO_SUITE``.

**Regression gating:** set ``REPRO_BENCH_BASELINE=<old BENCH_*.json>``
while also passing ``--benchmark-json=<new path>`` and the session runs
``repro.analysis.obs``'s compare gate over the freshly written JSON at
exit, failing the session (exit code 1) on a regression. This turns the
recorded ``BENCH_*.json`` trajectory into an enforceable contract.
CI points the gate at the committed ``benchmarks/baselines/seed.json``;
``REPRO_BENCH_REL_TOL`` relaxes the wall-clock tolerance (a float, e.g.
``1.5``) for runners slower than the baseline machine.
"""

import os

import pytest

os.environ.setdefault("REPRO_SCALE", "0.2")
os.environ.setdefault("REPRO_SUITE", "full")


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment exactly once under the benchmark timer and
    print its rendered table."""
    from repro.analysis.report import render

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1,
        )
        engine_meta = getattr(result, "meta", {}).get("engine")
        if engine_meta:
            # Persist engine activity (cache hits, jobs executed, wall
            # clock) alongside the timing in the bench JSON.
            benchmark.extra_info["engine"] = engine_meta
        print()
        print(render(result))
        return result

    return runner


def _benchmark_json_path(config) -> str | None:
    """The ``--benchmark-json`` target path, if one was requested."""
    target = getattr(config.option, "benchmark_json", None)
    if target is None:
        return None
    # pytest-benchmark stores an open file object (argparse FileType).
    return getattr(target, "name", None) or (
        target if isinstance(target, str) else None
    )


@pytest.hookimpl(trylast=True)  # after pytest-benchmark writes its JSON
def pytest_sessionfinish(session, exitstatus):
    baseline = os.environ.get("REPRO_BENCH_BASELINE")
    if not baseline:
        return
    current = _benchmark_json_path(session.config)
    if not current or not os.path.exists(current):
        return
    from repro.analysis.obs import Thresholds, compare_files

    thresholds = None
    rel_tol = os.environ.get("REPRO_BENCH_REL_TOL")
    if rel_tol:
        # CI runners are slower and noisier than the machine that
        # recorded the baseline; let the workflow relax the wall-clock
        # tolerance without touching the quality/rate gates.
        try:
            thresholds = Thresholds(rel_time=float(rel_tol))
        except ValueError:
            print(f"\nbench gate: ignoring REPRO_BENCH_REL_TOL={rel_tol!r}")
    try:
        regressions, compared = compare_files(baseline, current, thresholds)
    except (OSError, ValueError) as error:
        print(f"\nbench gate: skipped ({error})")
        return
    print(f"\nbench gate: {compared} metrics vs {baseline}, "
          f"{len(regressions)} regressions")
    for regression in regressions:
        print(f"  {regression}")
    if regressions:
        session.exitstatus = 1
