"""Benchmark-harness configuration.

Each ``test_bench_*`` module regenerates one table or figure of the
paper via :mod:`repro.analysis.experiments`, times it with
pytest-benchmark, prints the rendered ASCII artifact, and asserts its
qualitative shape.

Workload scale is controlled with ``REPRO_SCALE`` (default 0.2 here to
keep the full harness to a few minutes) and ``REPRO_SUITE``.
"""

import os

import pytest

os.environ.setdefault("REPRO_SCALE", "0.2")
os.environ.setdefault("REPRO_SUITE", "full")


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment exactly once under the benchmark timer and
    print its rendered table."""
    from repro.analysis.report import render

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1,
        )
        engine_meta = getattr(result, "meta", {}).get("engine")
        if engine_meta:
            # Persist engine activity (cache hits, jobs executed, wall
            # clock) alongside the timing in the bench JSON.
            benchmark.extra_info["engine"] = engine_meta
        print()
        print(render(result))
        return result

    return runner
