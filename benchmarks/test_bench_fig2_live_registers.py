"""F2: allocated vs live register distributions (Figure 2).

Shape to reproduce: the median number of live values is a small fraction
of the number of allocated physical registers, and the 90th-percentile
live count sits far below the 512-register file size (the paper reports
56).
"""

from repro.analysis.experiments import fig2_occupancy_cdf


def test_bench_fig2(run_experiment):
    result = run_experiment(fig2_occupancy_cdf)
    live_p50 = result.meta["live_p50"]
    alloc_p50 = result.meta["alloc_p50"]
    live_p90 = result.meta["live_p90"]
    assert live_p50 < 0.5 * alloc_p50, (
        "median live values should be well below allocated registers"
    )
    assert live_p90 < 128, (
        "p90 live values should be far below the 512-entry register file"
    )
