"""Observability overhead budget on a single-trace pipeline run.

Acceptance criteria for the `repro.obs` subsystem: with the metrics
registry **enabled** a pipeline run may cost at most 5% more wall-clock
than a run with observability fully off; with the registry **disabled**
at most 1% (plus a small absolute epsilon to absorb timer noise). The
design makes this easy — publishing is one bulk fold at end of run —
but the budget is asserted here so a future per-cycle publish sneaking
into the hot loop fails the bench.
"""

import time

from repro.core.config import use_based_config
from repro.core.pipeline import Pipeline
from repro.obs.metrics import MetricsRegistry
from repro.workloads.suite import load_trace

ROUNDS = 7
#: Absolute slack (seconds) so sub-millisecond timer jitter on the
#: near-identical paths cannot flake the 1% budget.
EPSILON = 0.003


def test_bench_metrics_registry_overhead(benchmark):
    trace = load_trace("compress", scale=0.3)
    config = use_based_config()
    enabled_registry = MetricsRegistry(enabled=True)
    disabled_registry = MetricsRegistry(enabled=False)

    modes = {
        "off": lambda: Pipeline(
            trace, config, tracer=None, metrics=None,
        ).run(),
        "disabled": lambda: Pipeline(
            trace, config, tracer=None, metrics=disabled_registry,
        ).run(),
        "enabled": lambda: Pipeline(
            trace, config, tracer=None, metrics=enabled_registry,
        ).run(),
    }
    for fn in modes.values():  # warmup: traces, caches, JIT-free but fair
        fn()

    # Interleave rounds so clock drift and cache state hit every mode
    # equally; compare best-of-N, the standard low-noise estimator.
    times = {name: [] for name in modes}
    for _ in range(ROUNDS):
        for name, fn in modes.items():
            start = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - start)
    best = {name: min(samples) for name, samples in times.items()}

    benchmark.extra_info["obs_overhead"] = {
        name: round(value, 6) for name, value in best.items()
    }
    benchmark.extra_info["enabled_ratio"] = round(
        best["enabled"] / best["off"], 4
    )
    benchmark.pedantic(modes["enabled"], rounds=1, iterations=1)

    assert best["disabled"] <= best["off"] * 1.01 + EPSILON, (
        f"disabled metrics registry cost >1%: {best}"
    )
    assert best["enabled"] <= best["off"] * 1.05 + EPSILON, (
        f"enabled metrics registry cost >5%: {best}"
    )
    # And the enabled run actually published something.
    snapshot = enabled_registry.snapshot()
    assert any(key.startswith("sim.ipc") for key in snapshot)
    assert any(key.startswith("rc.") for key in snapshot)
