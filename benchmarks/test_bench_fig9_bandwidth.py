"""F9: access bandwidth by structure (Figure 9).

Shapes to reproduce: write-filtering schemes have lower cache write
bandwidth than LRU; the register (backing) file write bandwidth sees
every produced value and is similar across schemes; RF read bandwidth
tracks the miss rate.
"""

from repro.analysis.experiments import fig9_bandwidth


def test_bench_fig9(run_experiment):
    result = run_experiment(fig9_bandwidth)
    rows = {r[0]: r[1:] for r in result.rows}
    # columns: cache rd, cache wr, RF rd, RF wr

    assert rows["use_based"][1] < rows["lru"][1], (
        "use-based filtering lowers cache write bandwidth vs LRU"
    )
    assert rows["non_bypass"][1] < rows["lru"][1]

    for scheme, (cache_rd, cache_wr, rf_rd, rf_wr) in rows.items():
        assert cache_rd > 0 and rf_wr > 0
        assert rf_rd < cache_rd, (
            f"{scheme}: the cache must filter most reads from the RF"
        )
