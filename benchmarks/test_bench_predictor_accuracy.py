"""S33: degree-of-use predictor accuracy (paper §3.3, reports ~97%)."""

from repro.analysis.experiments import predictor_accuracy


def test_bench_predictor(run_experiment):
    result = run_experiment(predictor_accuracy)
    all_row = next(r for r in result.rows if r[0] == "ALL")
    _, accuracy, coverage = all_row
    assert accuracy > 0.9, "aggregate accuracy should be near the paper's 97%"
    assert coverage > 0.7, "the predictor should supply most predictions"
