"""F12: performance vs backing file / L2 latency (Figure 12).

Shapes to reproduce: every caching scheme degrades with backing
latency, use-based degrades the least among the caches; the two-level
file is least sensitive (its L2 is off the common path); use-based with
a 2-cycle backing file beats the 3-cycle monolithic register file.
"""

from repro.analysis.experiments import fig12_backing_latency


def test_bench_fig12(run_experiment):
    result = run_experiment(fig12_backing_latency, latencies=(1, 2, 5))
    rows = {r[0]: r[1:] for r in result.rows if isinstance(r[0], int)}
    rf3 = next(r[3] for r in result.rows if r[0] == "RF 3-cyc")
    # columns: lru, non_bypass, use_based, two_level

    # Monotone (within tolerance) degradation for the caches.
    for col in range(3):
        assert rows[5][col] <= rows[1][col] + 0.02

    # Use-based degrades least among the caches (relative drop 1 -> 5).
    def drop(col):
        return (rows[1][col] - rows[5][col]) / rows[1][col]

    assert drop(2) <= drop(0) + 0.02, "use-based vs lru sensitivity"
    assert drop(2) <= drop(1) + 0.02, "use-based vs non-bypass sensitivity"

    # Two-level is least latency-sensitive of all.
    tl_drop = (rows[1][3] - rows[5][3]) / rows[1][3]
    assert tl_drop <= drop(2) + 0.02

    # Design point (backing latency 2) beats the 3-cycle file.
    assert rows[2][2] > rf3
