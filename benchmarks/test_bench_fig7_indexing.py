"""F7: decoupled indexing algorithms (Figure 7).

Shape to reproduce: decoupled set assignment (round-robin, minimum,
filtered round-robin) reduces conflict misses relative to standard
preg-derived indexing on the 2-way cache.
"""

from repro.analysis.experiments import fig7_indexing


def test_bench_fig7(run_experiment):
    result = run_experiment(fig7_indexing, assocs=(1, 2))
    rows = {r[0]: r[1:] for r in result.rows}
    # Columns per assoc: (ipc, conflicts); assoc order is (1, 2).
    preg_conf_2w = rows["preg"][3]
    for policy in ("round_robin", "minimum", "filtered_rr"):
        assert rows[policy][3] <= preg_conf_2w, (
            f"{policy} should not increase 2-way conflict misses"
        )
    # At least one decoupled policy meaningfully reduces conflicts.
    best = min(rows[p][3] for p in ("round_robin", "minimum",
                                    "filtered_rr"))
    assert best < preg_conf_2w
