"""Ablations beyond the paper: each ingredient of the proposal earns
its keep at the 64-entry 2-way design point (see DESIGN.md)."""

from repro.analysis.experiments import ablations


def test_bench_ablations(run_experiment):
    result = run_experiment(ablations)
    rows = {r[0]: (r[1], r[2]) for r in result.rows}
    full_ipc, full_miss = rows["full use-based"]
    # No single ablation should dramatically beat the full design.
    for label, (ipc, _miss) in rows.items():
        assert ipc <= full_ipc + 0.02, (
            f"{label} unexpectedly beats the full design by a wide margin"
        )
    # Disabling the predictor entirely must not reduce the miss rate:
    # defaults alone cannot filter as precisely.
    assert rows["no predictor (defaults only)"][0] <= full_ipc + 0.02
