"""F11: performance vs cache/L1 size for all schemes (Figure 11).

Shapes to reproduce: use-based wins among the caches at small-to-medium
sizes, with an advantage that grows as the cache shrinks; a 4-way
use-based cache reaches the 64-entry 2-way performance with fewer
entries; the 64-entry use-based cache beats the 3-cycle register file;
the two-level file falls off at small L1 sizes.
"""

from repro.analysis.experiments import fig11_perf_vs_size


def test_bench_fig11(run_experiment):
    result = run_experiment(fig11_perf_vs_size, sizes=(16, 32, 64))
    rows = {r[0]: r[1:] for r in result.rows if isinstance(r[0], int)}
    rf3 = next(r[5] for r in result.rows if r[0] == "RF 3-cyc")
    # columns: lru, non_bypass, use_based, use_based 4w, two_level

    # Use-based beats the other caching schemes at 16 and 32 entries.
    for size in (16, 32):
        lru, non_bypass, use_based, _, _ = rows[size]
        assert use_based > lru, f"use-based <= LRU at {size}"
        assert use_based > non_bypass, f"use-based <= non-bypass at {size}"

    # Advantage grows as the cache shrinks.
    margin_small = rows[16][2] - rows[16][0]
    margin_large = rows[64][2] - rows[64][0]
    assert margin_small > margin_large

    # 4-way at 32 entries is at least close to 2-way at 64 (paper: 48
    # entries suffice).
    assert rows[32][3] >= rows[64][2] - 0.01

    # Design point beats the 3-cycle monolithic file.
    assert rows[64][2] > rf3

    # Two-level degrades as its L1 shrinks.
    assert rows[16][4] <= rows[64][4]
