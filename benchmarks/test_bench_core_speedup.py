"""Speedup gates for the event-driven timing core (``REPRO_SIM_CORE``).

Both tests run the same workload twice — once with the per-cycle
reference loop, once with the cycle-skipping event core — assert the
two produce **bit-identical** :meth:`SimStats.to_dict` payloads, and
gate the wall-clock ratio.

Regime: ``pointer_chase`` at scale 12 (1.15 MB footprint, larger than
the 1 MB unified L2) with ``memory_latency=1500``. Dependent loads that
miss the whole hierarchy serialize on memory, so the window drains and
most cycles are dead — the stall-dominated profile of memory-bound
workloads like mcf, and exactly the regime the event core exists for.
At the default 180-cycle memory the per-instruction model work bounds
the achievable ratio near 1.1 (Amdahl); the gates below are only
meaningful where dead cycles dominate, so the regime is pinned here
rather than inherited from ``REPRO_SCALE``.

The sweep gate additionally routes through the experiment engine: the
per-cycle side runs unbatched (one full frontend per config, as before
this optimization) while the event side uses shared-frontend batching
(``REPRO_SWEEP_BATCH``), matching how Figure 12's backing-latency sweep
actually executes.
"""

import os
import time

import pytest

from repro.analysis.engine import ExperimentEngine, SimJob
from repro.core.config import use_based_config
from repro.core.pipeline import Pipeline
from repro.workloads.suite import load_trace

#: Stress regime (see module docstring). Scale keeps the pointer-chase
#: footprint just past the 1 MB L2; the latency makes stalls dominate.
SCALE = 12.0
MEMORY_LATENCY = 1500

#: Acceptance thresholds from the issue: single-trace >= 1.5x, Figure 12
#: style backing-latency sweep >= 2.0x. Measured headroom on the dev
#: container: ~2.3x for both.
SINGLE_MIN_SPEEDUP = 1.5
SWEEP_MIN_SPEEDUP = 2.0

BACKING_LATENCIES = (1, 4)


@pytest.fixture(scope="module")
def stress_trace():
    """The pointer-chase trace, with derived analyses pre-warmed.

    ``trace.analysis()`` is memoized on the trace object; warming it
    here keeps the first timed run from paying it on behalf of both.
    """
    trace = load_trace("pointer_chase", scale=SCALE)
    trace.analysis()
    return trace


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_bench_event_core_single_trace(benchmark, stress_trace):
    """Event core >= 1.5x the cycle core on one stalled trace, same bits."""
    config = use_based_config(memory_latency=MEMORY_LATENCY)
    cycle_stats, cycle_seconds = _timed(
        lambda: Pipeline(stress_trace, config, core="cycle").run()
    )

    seconds = {}

    def run_event():
        stats, seconds["event"] = _timed(
            lambda: Pipeline(stress_trace, config, core="event").run()
        )
        return stats

    event_stats = benchmark.pedantic(run_event, rounds=1, iterations=1)

    assert event_stats.to_dict() == cycle_stats.to_dict()
    speedup = cycle_seconds / seconds["event"]
    benchmark.extra_info["cycle_seconds"] = round(cycle_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    print(
        f"\nsingle-trace: cycle={cycle_seconds:.2f}s "
        f"event={seconds['event']:.2f}s speedup={speedup:.2f}x"
    )
    assert speedup >= SINGLE_MIN_SPEEDUP


def _sweep_jobs(trace):
    return [
        SimJob.for_trace(
            trace,
            use_based_config(
                memory_latency=MEMORY_LATENCY,
                backing_read_latency=latency,
            ),
            label=f"backing{latency}",
        )
        for latency in BACKING_LATENCIES
    ]


def _run_sweep(trace, core, batching):
    """One serial, uncached engine pass over the backing-latency points."""
    previous = os.environ.get("REPRO_SIM_CORE")
    os.environ["REPRO_SIM_CORE"] = core
    try:
        engine = ExperimentEngine(
            workers=1, use_cache=False, batching=batching,
        )
        return _timed(lambda: engine.run(_sweep_jobs(trace)))
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_CORE", None)
        else:
            os.environ["REPRO_SIM_CORE"] = previous


def test_bench_event_core_backing_latency_sweep(benchmark, stress_trace):
    """Batched event sweep >= 2x the unbatched cycle sweep, same bits."""
    cycle_results, cycle_seconds = _run_sweep(
        stress_trace, core="cycle", batching=False,
    )

    timing = {}

    def run_event_sweep():
        results, timing["event"] = _run_sweep(
            stress_trace, core="event", batching=True,
        )
        return results

    event_results = benchmark.pedantic(run_event_sweep, rounds=1, iterations=1)

    assert len(event_results) == len(BACKING_LATENCIES)
    for cycle_stats, event_stats in zip(cycle_results, event_results):
        assert event_stats.to_dict() == cycle_stats.to_dict()
    speedup = cycle_seconds / timing["event"]
    benchmark.extra_info["cycle_seconds"] = round(cycle_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    print(
        f"\nsweep: cycle={cycle_seconds:.2f}s "
        f"event={timing['event']:.2f}s speedup={speedup:.2f}x"
    )
    assert speedup >= SWEEP_MIN_SPEEDUP
