"""S53b: unknown and fill defaults (paper §5.3).

Shape to reproduce: an unknown default of 1 is at or near the best
(most values have one use); extreme defaults in either direction do not
beat it by much.
"""

from repro.analysis.experiments import tuning_defaults


def test_bench_tuning_defaults(run_experiment):
    result = run_experiment(
        tuning_defaults, unknown_values=(0, 1, 3), fill_values=(0, 2)
    )
    unknown = {r[1]: r[2] for r in result.rows if r[0] == "unknown"}
    fill = {r[1]: r[2] for r in result.rows if r[0] == "fill"}
    best_unknown = max(unknown.values())
    assert unknown[1] >= best_unknown - 0.01, (
        "unknown default of 1 should be near-optimal"
    )
    assert fill[0] >= fill[2] - 0.01, (
        "fill default of 0 should not lose to 2"
    )
