"""Parameter-sweep helpers shared by the experiment harness."""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.config import MachineConfig
from repro.core.pipeline import Pipeline
from repro.core.simulator import mean_ipc
from repro.core.stats import SimStats
from repro.vm.trace import Trace
from repro.workloads.suite import DEFAULT_SUITE, load_trace


def load_traces(
    names: Iterable[str] = DEFAULT_SUITE, scale: float = 0.3
) -> dict[str, Trace]:
    """Load the benchmark traces used by an experiment."""
    return {name: load_trace(name, scale=scale) for name in names}


def run_config(
    traces: dict[str, Trace], config: MachineConfig
) -> dict[str, SimStats]:
    """Simulate every trace under *config*."""
    return {
        name: Pipeline(trace, config).run()
        for name, trace in traces.items()
    }


def sweep(
    traces: dict[str, Trace],
    configs: dict[str, MachineConfig],
) -> dict[str, dict[str, SimStats]]:
    """Simulate every trace under every named configuration.

    Returns:
        Mapping of configuration label to per-benchmark statistics.
    """
    return {
        label: run_config(traces, config)
        for label, config in configs.items()
    }


def ipc_curve(
    traces: dict[str, Trace],
    config_for: Callable[[int], MachineConfig],
    points: Iterable[int],
) -> list[tuple[int, float]]:
    """Geometric-mean IPC at each sweep point.

    Args:
        traces: benchmark traces.
        config_for: maps a sweep value (e.g. cache size) to a config.
        points: sweep values.

    Returns:
        List of ``(point, mean_ipc)`` pairs in input order.
    """
    curve = []
    for point in points:
        results = run_config(traces, config_for(point))
        curve.append((point, mean_ipc(results)))
    return curve
