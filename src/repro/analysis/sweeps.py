"""Parameter-sweep helpers shared by the experiment harness.

All sweeps route through the :mod:`repro.analysis.engine` experiment
engine: each ``(config, trace)`` pair becomes one :class:`SimJob`, the
whole grid is submitted in a single batch (so parallel workers see the
full fan-out, not one trace at a time), and previously simulated pairs
are served from the engine's content-addressed result cache. Grids are
submitted trace-major: all configurations of one trace are adjacent, so
the engine's shared-frontend batching (``REPRO_SWEEP_BATCH``) groups
them onto one worker where they share a single trace decode,
``trace.analysis()`` pass, and branch-prediction plan.

Sweeps degrade gracefully: a failed job leaves an explicit hole — a
falsy :class:`~repro.analysis.engine.JobFailure` in that result slot —
rather than raising, so one bad benchmark costs one point of one curve
instead of the whole figure. Downstream aggregation
(:func:`~repro.core.simulator.mean_ipc`,
:func:`~repro.analysis.metrics.aggregate_cache_metrics`) skips the
holes, and the experiment CLI reports them with exit code 3.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.analysis.engine import (
    ExperimentEngine,
    JobFailure,
    SimJob,
    get_engine,
)
from repro.core.config import MachineConfig
from repro.core.simulator import mean_ipc
from repro.core.stats import SimStats
from repro.vm.trace import Trace
from repro.workloads.suite import DEFAULT_SUITE, load_trace


def load_traces(
    names: Iterable[str] = DEFAULT_SUITE, scale: float = 0.3
) -> dict[str, Trace]:
    """Load the benchmark traces used by an experiment."""
    return {name: load_trace(name, scale=scale) for name in names}


def run_config(
    traces: dict[str, Trace],
    config: MachineConfig,
    engine: ExperimentEngine | None = None,
) -> dict[str, SimStats | JobFailure]:
    """Simulate every trace under *config* (cached, possibly parallel).

    Failed benchmarks map to falsy :class:`JobFailure` holes.
    """
    engine = engine or get_engine()
    return engine.run_grid(traces, config, raise_on_error=False)


def sweep(
    traces: dict[str, Trace],
    configs: dict[str, MachineConfig],
    engine: ExperimentEngine | None = None,
) -> dict[str, dict[str, SimStats | JobFailure]]:
    """Simulate every trace under every named configuration.

    The full ``configs x traces`` grid is submitted as one engine batch
    so a parallel engine can overlap work across configurations, not
    just within one.

    Returns:
        Mapping of configuration label to per-benchmark statistics;
        failed cells hold falsy :class:`JobFailure` records.
    """
    engine = engine or get_engine()
    names = list(traces)
    config_list = list(configs.values())
    # Trace-major submission keeps each trace's configurations adjacent
    # — exactly the engine's shared-frontend batch groups.
    jobs = [
        SimJob.for_trace(traces[name], config, label=name)
        for name in names
        for config in config_list
    ]
    stats = engine.run(jobs, raise_on_error=False)
    num_configs = len(config_list)
    out: dict[str, dict[str, SimStats | JobFailure]] = {}
    for row, label in enumerate(configs):
        out[label] = {
            name: stats[col * num_configs + row]
            for col, name in enumerate(names)
        }
    return out


def ipc_curve(
    traces: dict[str, Trace],
    config_for: Callable[[int], MachineConfig],
    points: Iterable[int],
    engine: ExperimentEngine | None = None,
) -> list[tuple[int, float]]:
    """Geometric-mean IPC at each sweep point.

    Args:
        traces: benchmark traces.
        config_for: maps a sweep value (e.g. cache size) to a config.
        points: sweep values.
        engine: experiment engine (defaults to the shared one).

    Returns:
        List of ``(point, mean_ipc)`` pairs in input order. Benchmarks
        that failed at a point are excluded from that point's mean.
    """
    engine = engine or get_engine()
    points = list(points)
    names = list(traces)
    # Trace-major, like sweep(): when config_for only varies storage
    # parameters (cache size, backing latency, policies — the usual
    # sweep axes), every point of one trace shares a frontend batch.
    jobs = [
        SimJob.for_trace(traces[name], config_for(point), label=name)
        for name in names
        for point in points
    ]
    stats = engine.run(jobs, raise_on_error=False)
    num_points = len(points)
    curve = []
    for row, point in enumerate(points):
        per_point = {
            name: stats[col * num_points + row]
            for col, name in enumerate(names)
        }
        curve.append((point, mean_ipc(per_point)))
    return curve
