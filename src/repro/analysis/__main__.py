"""Module entry point: ``python -m repro.analysis <experiment> ...``.

Flags handled by :func:`repro.analysis.experiments.main`:

* ``--verbose``/``-v`` — engine progress and diagnostics (INFO).
* ``--quiet``/``-q`` — errors only.

Exit codes: 0 success; 1 usage; 2 unknown experiment; 3 when any job in
an experiment failed (the failure tracebacks are printed to stderr and
recorded in the engine run manifest).
"""

from repro.analysis.experiments import main

raise SystemExit(main())
