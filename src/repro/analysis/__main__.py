"""Module entry point: ``python -m repro.analysis <experiment> ...``."""

from repro.analysis.experiments import main

raise SystemExit(main())
