"""Experiment harness: engine, metrics, sweeps, reports, artifacts."""

from repro.analysis.engine import (
    ExperimentEngine,
    JobFailure,
    SimJob,
    configure,
    get_engine,
)
from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.metrics import CacheMetricsRow, aggregate_cache_metrics
from repro.analysis.report import ExperimentResult, render, render_all
from repro.analysis.sweeps import ipc_curve, load_traces, run_config, sweep

__all__ = [
    "CacheMetricsRow",
    "EXPERIMENTS",
    "ExperimentEngine",
    "ExperimentResult",
    "JobFailure",
    "SimJob",
    "aggregate_cache_metrics",
    "configure",
    "get_engine",
    "ipc_curve",
    "load_traces",
    "render",
    "render_all",
    "run_config",
    "sweep",
]
