"""Experiment harness: metrics, sweeps, reports, and paper artifacts."""

from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.metrics import CacheMetricsRow, aggregate_cache_metrics
from repro.analysis.report import ExperimentResult, render, render_all
from repro.analysis.sweeps import ipc_curve, load_traces, run_config, sweep

__all__ = [
    "CacheMetricsRow",
    "EXPERIMENTS",
    "ExperimentResult",
    "aggregate_cache_metrics",
    "ipc_curve",
    "load_traces",
    "render",
    "render_all",
    "run_config",
    "sweep",
]
