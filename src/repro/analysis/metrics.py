"""Aggregate metric computation across benchmark runs (Table 2 et al.)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import SimStats


@dataclass(frozen=True)
class CacheMetricsRow:
    """One scheme's row of Table 2 plus the Figure 8-10 aggregates."""

    scheme: str
    miss_rate: float
    miss_filtered: float
    miss_conflict: float
    miss_capacity: float
    reads_per_cached_value: float
    cache_count: float
    occupancy: float
    entry_lifetime: float
    never_read_fraction: float
    filtered_write_fraction: float
    never_cached_fraction: float
    cache_read_bw: float
    cache_write_bw: float
    rf_read_bw: float
    rf_write_bw: float


def aggregate_cache_metrics(
    scheme: str, results: dict[str, SimStats]
) -> CacheMetricsRow:
    """Combine per-benchmark cache statistics into one summary row.

    Count-based metrics are summed across benchmarks before forming
    ratios (i.e. weighted by activity, as the paper's aggregate figures
    are); bandwidths are averaged over total cycles.

    Falsy result slots (failed-job holes from a gracefully degraded
    sweep) are skipped.

    Raises:
        ValueError: if any result has no register cache, or every slot
            is a hole.
    """
    results = {name: stats for name, stats in results.items() if stats}
    if not results:
        raise ValueError("no results to aggregate")
    totals = {
        "reads": 0, "hits": 0, "filtered": 0, "conflict": 0, "capacity": 0,
        "cold": 0, "instances": 0, "never_read": 0, "values_freed": 0,
        "never_cached": 0, "writes_initial": 0, "writes_fill": 0,
        "writes_filtered": 0, "lifetime_sum": 0, "lifetime_count": 0,
        "occupancy_integral": 0, "cycles": 0, "rf_reads": 0, "rf_writes": 0,
    }
    for stats in results.values():
        cache = stats.cache
        if cache is None:
            raise ValueError(f"{stats.benchmark}: no register cache")
        totals["reads"] += cache.reads
        totals["hits"] += cache.hits
        for key in ("filtered", "conflict", "capacity", "cold"):
            totals[key] += cache.misses[key]
        totals["instances"] += cache.instances_cached
        totals["never_read"] += cache.instances_never_read
        totals["values_freed"] += cache.values_freed
        totals["never_cached"] += cache.values_never_cached
        totals["writes_initial"] += cache.writes_initial
        totals["writes_fill"] += cache.writes_fill
        totals["writes_filtered"] += cache.writes_filtered
        totals["lifetime_sum"] += cache.lifetime_sum
        totals["lifetime_count"] += cache.lifetime_count
        totals["occupancy_integral"] += cache.occupancy_integral
        totals["cycles"] += stats.cycles
        totals["rf_reads"] += stats.rf_reads
        totals["rf_writes"] += stats.rf_writes

    reads = max(1, totals["reads"])
    misses = (
        totals["filtered"] + totals["conflict"] + totals["capacity"]
        + totals["cold"]
    )
    initial_attempts = max(
        1, totals["writes_initial"] + totals["writes_filtered"]
    )
    cycles = max(1, totals["cycles"])
    return CacheMetricsRow(
        scheme=scheme,
        miss_rate=misses / reads,
        miss_filtered=totals["filtered"] / reads,
        miss_conflict=totals["conflict"] / reads,
        miss_capacity=totals["capacity"] / reads,
        reads_per_cached_value=totals["hits"] / max(1, totals["instances"]),
        cache_count=totals["instances"] / max(1, totals["values_freed"]),
        occupancy=totals["occupancy_integral"] / cycles,
        entry_lifetime=(
            totals["lifetime_sum"] / max(1, totals["lifetime_count"])
        ),
        never_read_fraction=(
            totals["never_read"] / max(1, totals["instances"])
        ),
        filtered_write_fraction=totals["writes_filtered"] / initial_attempts,
        never_cached_fraction=(
            totals["never_cached"] / max(1, totals["values_freed"])
        ),
        cache_read_bw=totals["reads"] / cycles,
        cache_write_bw=(
            (totals["writes_initial"] + totals["writes_fill"]) / cycles
        ),
        rf_read_bw=totals["rf_reads"] / cycles,
        rf_write_bw=totals["rf_writes"] / cycles,
    )
