"""ASCII rendering of experiment results.

Every experiment in :mod:`repro.analysis.experiments` returns an
:class:`ExperimentResult`; :func:`render` turns one into the aligned
text table recorded in EXPERIMENTS.md and printed by the benchmark
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Structured output of one paper experiment.

    Attributes:
        experiment_id: paper artifact id (e.g. "fig11", "table2").
        title: human-readable experiment title.
        headers: column names.
        rows: row cells; numbers are formatted by :func:`render`.
        notes: free-form commentary (paper-vs-measured remarks).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""
    meta: dict[str, object] = field(default_factory=dict)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def _engine_note(meta: dict) -> str | None:
    """One-line engine-activity summary from ``meta["engine"]``."""
    engine = meta.get("engine")
    if not isinstance(engine, dict) or not engine.get("jobs"):
        return None
    parts = [
        f"engine: {engine.get('jobs', 0)} jobs",
        f"{engine.get('cache_hits', 0)} cached",
        f"{engine.get('executed', 0)} run",
    ]
    errors = engine.get("errors", 0)
    if errors:
        parts.append(f"{errors} FAILED")
    retries = engine.get("retries", 0)
    if retries:
        parts.append(f"{retries} retried")
    timeouts = engine.get("timeouts", 0)
    if timeouts:
        parts.append(f"{timeouts} timed out")
    resumed = engine.get("resumed", 0)
    if resumed:
        parts.append(f"{resumed} resumed")
    seconds = engine.get("engine_seconds")
    if isinstance(seconds, (int, float)):
        parts.append(f"{seconds:.2f}s")
    p95 = engine.get("job_seconds_p95")
    if p95:
        parts.append(f"job p95 {p95:.3f}s")
    return ", ".join(parts)


def render(result: ExperimentResult) -> str:
    """Render an experiment result as an aligned ASCII table.

    Besides the table and ``notes``, two meta entries surface in the
    output when present: ``meta["engine"]`` (the engine counter deltas
    recorded by the experiment wrapper) becomes a one-line activity
    note, and ``meta["failures"]`` (a list of strings or dicts with a
    ``job``/``error``) becomes per-failure notes — so a rendered
    artifact always shows whether its data is complete.
    """
    table = [result.headers] + [
        [_format_cell(cell) for cell in row] for row in result.rows
    ]
    widths = [
        max(len(row[col]) for row in table)
        for col in range(len(result.headers))
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    header = "  ".join(
        cell.ljust(width) for cell, width in zip(table[0], widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in table[1:]:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    if result.notes:
        lines.append("")
        for note_line in result.notes.strip().splitlines():
            lines.append(f"  note: {note_line.strip()}")
    engine_note = _engine_note(result.meta)
    failures = result.meta.get("failures") or []
    if engine_note or failures:
        lines.append("")
    if engine_note:
        lines.append(f"  {engine_note}")
    for failure in failures:
        if isinstance(failure, dict):
            job = failure.get("job", "?")
            error = str(failure.get("error", "")).strip().splitlines()
            detail = error[-1] if error else ""
            lines.append(f"  failed: {job}{': ' if detail else ''}{detail}")
        else:
            lines.append(f"  failed: {failure}")
    return "\n".join(lines)


def render_all(results: list[ExperimentResult]) -> str:
    """Render several experiments separated by blank lines."""
    return "\n\n".join(render(result) for result in results)


def to_json(result: ExperimentResult) -> str:
    """Serialize an experiment result as JSON.

    The output is machine-readable for downstream tooling (plotting,
    regression tracking); :func:`from_json` round-trips it.
    """
    import json

    return json.dumps({
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": result.headers,
        "rows": result.rows,
        "notes": result.notes,
        "meta": result.meta,
    }, indent=2)


def from_json(text: str) -> ExperimentResult:
    """Reconstruct an :class:`ExperimentResult` from :func:`to_json`."""
    import json

    data = json.loads(text)
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        title=data["title"],
        headers=list(data["headers"]),
        rows=[list(row) for row in data["rows"]],
        notes=data.get("notes", ""),
        meta=dict(data.get("meta", {})),
    )
