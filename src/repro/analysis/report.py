"""ASCII rendering of experiment results.

Every experiment in :mod:`repro.analysis.experiments` returns an
:class:`ExperimentResult`; :func:`render` turns one into the aligned
text table recorded in EXPERIMENTS.md and printed by the benchmark
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Structured output of one paper experiment.

    Attributes:
        experiment_id: paper artifact id (e.g. "fig11", "table2").
        title: human-readable experiment title.
        headers: column names.
        rows: row cells; numbers are formatted by :func:`render`.
        notes: free-form commentary (paper-vs-measured remarks).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""
    meta: dict[str, object] = field(default_factory=dict)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render an experiment result as an aligned ASCII table."""
    table = [result.headers] + [
        [_format_cell(cell) for cell in row] for row in result.rows
    ]
    widths = [
        max(len(row[col]) for row in table)
        for col in range(len(result.headers))
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    header = "  ".join(
        cell.ljust(width) for cell, width in zip(table[0], widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in table[1:]:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    if result.notes:
        lines.append("")
        for note_line in result.notes.strip().splitlines():
            lines.append(f"  note: {note_line.strip()}")
    return "\n".join(lines)


def render_all(results: list[ExperimentResult]) -> str:
    """Render several experiments separated by blank lines."""
    return "\n\n".join(render(result) for result in results)


def to_json(result: ExperimentResult) -> str:
    """Serialize an experiment result as JSON.

    The output is machine-readable for downstream tooling (plotting,
    regression tracking); :func:`from_json` round-trips it.
    """
    import json

    return json.dumps({
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": result.headers,
        "rows": result.rows,
        "notes": result.notes,
        "meta": result.meta,
    }, indent=2)


def from_json(text: str) -> ExperimentResult:
    """Reconstruct an :class:`ExperimentResult` from :func:`to_json`."""
    import json

    data = json.loads(text)
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        title=data["title"],
        headers=list(data["headers"]),
        rows=[list(row) for row in data["rows"]],
        notes=data.get("notes", ""),
        meta=dict(data.get("meta", {})),
    )
