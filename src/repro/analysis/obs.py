"""Observability CLI: manifest summaries and the regression gate.

Two subcommands::

    python -m repro.analysis.obs summarize <manifest.jsonl> [-o out.json]
    python -m repro.analysis.obs compare <baseline.json> <current.json>

``summarize`` rolls an engine run manifest (see
:mod:`repro.obs.manifest`) into a flat summary — job counts, cache
hit/miss totals, failure records, wall-clock aggregates — suitable for
archiving next to bench JSONs.

``compare`` is the regression gate: it extracts comparable numeric
metrics from two artifacts and exits nonzero when the current one
regresses past thresholds. It understands every JSON shape the repo
produces:

* engine manifests (``*.jsonl``) — summarized on the fly,
* ``summarize`` output (or any flat dict of numbers),
* pytest-benchmark JSONs (``BENCH_*.json``: per-bench mean seconds plus
  the engine counters stored in ``extra_info``),
* :func:`repro.analysis.report.to_json` experiment results (numeric
  table cells become ``<experiment>.<row>.<column>`` metrics).

Classification is by metric name: IPC/accuracy/coverage must not drop,
miss rates must not rise, ``*seconds``/``wall*`` must not grow past the
time tolerance (with an absolute noise floor), and error counts must
never increase. The bench conftest wires this gate to
``REPRO_BENCH_BASELINE`` so recorded ``BENCH_*.json`` trajectories
become enforceable in CI.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.core.stats import SimStats
from repro.obs.manifest import read_manifest, summarize_manifest

#: Default tolerances; all overridable from the CLI.
REL_TOL_QUALITY = 0.02  # ipc / accuracy / coverage may drop this much
REL_TOL_RATE = 0.05     # miss rates may rise this much (relative)
REL_TOL_TIME = 0.25     # wall-clock may grow this much (relative)
TIME_FLOOR = 0.05       # absolute seconds below which time noise is ignored
RATE_FLOOR = 0.002      # absolute rate change below which noise is ignored


@dataclass
class Regression:
    """One gate violation."""

    metric: str
    baseline: float
    current: float
    reason: str

    def __str__(self) -> str:
        return (
            f"REGRESSION {self.metric}: {self.baseline:.6g} -> "
            f"{self.current:.6g} ({self.reason})"
        )


@dataclass
class Thresholds:
    """Gate tolerances (see module constants for defaults)."""

    rel_quality: float = REL_TOL_QUALITY
    rel_rate: float = REL_TOL_RATE
    rel_time: float = REL_TOL_TIME
    time_floor: float = TIME_FLOOR
    rate_floor: float = RATE_FLOOR


# ----------------------------------------------------------------------
# Metric extraction.


def suite_summary(results: dict[str, SimStats]) -> dict[str, float]:
    """Flat gate-comparable summary of a suite run.

    Pools the per-benchmark :class:`SimStats` via :meth:`SimStats.merge`
    so rates are traffic-weighted, then flattens the headline numbers.
    """
    merged = SimStats.merge(results.values())
    out = {f"suite.{key}": value for key, value in merged.summary().items()}
    for name, stats in results.items():
        out[f"bench.{name}.ipc"] = stats.ipc
        if stats.cache is not None:
            out[f"bench.{name}.miss_rate"] = stats.cache.miss_rate
    return out


def _from_benchmark_json(data: dict) -> dict[str, float]:
    """Metrics from a pytest-benchmark JSON (``BENCH_*.json``)."""
    out: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "?")
        stats = bench.get("stats", {})
        if isinstance(stats.get("mean"), (int, float)):
            out[f"bench.{name}.seconds"] = float(stats["mean"])
        engine = bench.get("extra_info", {}).get("engine", {})
        for key in ("trace_gen_seconds", "trace_load_seconds",
                    "job_seconds", "errors"):
            value = engine.get(key)
            if isinstance(value, (int, float)):
                out[f"bench.{name}.{key}"] = float(value)
    return out


def _from_experiment_json(data: dict) -> dict[str, float]:
    """Metrics from a :func:`repro.analysis.report.to_json` artifact."""
    out: dict[str, float] = {}
    experiment = data.get("experiment_id", "experiment")
    headers = data.get("headers", [])
    for row in data.get("rows", []):
        if not row:
            continue
        label = str(row[0])
        for header, cell in zip(headers[1:], row[1:]):
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue
            out[f"{experiment}.{label}.{header}"] = float(cell)
    engine = data.get("meta", {}).get("engine", {})
    for key in ("errors", "job_seconds", "trace_gen_seconds"):
        value = engine.get(key)
        if isinstance(value, (int, float)):
            out[f"{experiment}.engine.{key}"] = float(value)
    return out


def _from_flat_dict(data: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in data.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[str(key)] = float(value)
    return out


def extract_metrics(source: dict | str | Path) -> dict[str, float]:
    """Comparable numeric metrics from any supported artifact.

    *source* is a parsed JSON object or a path; ``.jsonl`` paths are
    read as engine manifests and summarized first.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.suffix == ".jsonl":
            return _from_flat_dict(summarize_manifest(read_manifest(path)))
        source = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(source, dict):
        raise ValueError("unsupported artifact: expected a JSON object")
    if "benchmarks" in source:
        return _from_benchmark_json(source)
    if "experiment_id" in source:
        return _from_experiment_json(source)
    return _from_flat_dict(source)


# ----------------------------------------------------------------------
# Comparison.


def _is_quality(name: str) -> bool:
    lowered = name.lower()
    return any(k in lowered for k in ("ipc", "accuracy", "coverage"))


def _is_rate(name: str) -> bool:
    lowered = name.lower()
    return "miss_rate" in lowered or lowered.endswith("miss rate")


def _is_time(name: str) -> bool:
    lowered = name.lower()
    return "seconds" in lowered or "wall" in lowered


def _is_errors(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith("errors") or lowered.endswith("failures")


def compare_metrics(
    baseline: dict[str, float],
    current: dict[str, float],
    thresholds: Thresholds | None = None,
) -> tuple[list[Regression], int]:
    """Gate *current* against *baseline*.

    Only metrics present in both artifacts are compared (a renamed or
    newly added metric is not a regression), and a metric whose value
    is non-finite on either side — NaN from a zero-denominator rate,
    inf from a degenerate ratio — is skipped rather than poisoning the
    gate (every NaN comparison is False, which would silently pass).
    Returns the violations and the number of metrics actually compared.
    """
    thresholds = thresholds or Thresholds()
    regressions: list[Regression] = []
    compared = 0
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        if not (math.isfinite(base) and math.isfinite(cur)):
            continue
        if _is_errors(name):
            compared += 1
            if cur > base:
                regressions.append(Regression(
                    name, base, cur, "error count increased",
                ))
        elif _is_quality(name):
            compared += 1
            if cur < base * (1.0 - thresholds.rel_quality) - 1e-12:
                regressions.append(Regression(
                    name, base, cur,
                    f"dropped more than {thresholds.rel_quality:.1%}",
                ))
        elif _is_rate(name):
            compared += 1
            limit = base * (1.0 + thresholds.rel_rate) + thresholds.rate_floor
            if cur > limit:
                regressions.append(Regression(
                    name, base, cur,
                    f"rose more than {thresholds.rel_rate:.1%} "
                    f"(+{thresholds.rate_floor} floor)",
                ))
        elif _is_time(name):
            compared += 1
            limit = base * (1.0 + thresholds.rel_time)
            if cur > limit and cur - base > thresholds.time_floor:
                regressions.append(Regression(
                    name, base, cur,
                    f"grew more than {thresholds.rel_time:.1%} "
                    f"(and by > {thresholds.time_floor}s)",
                ))
        # Anything else (job counts, cache hit totals...) is contextual,
        # not gated: fluctuating cache warmth must not fail CI.
    return regressions, compared


def compare_files(
    baseline: str | Path,
    current: str | Path,
    thresholds: Thresholds | None = None,
) -> tuple[list[Regression], int]:
    """File-level :func:`compare_metrics` (any supported artifact mix)."""
    return compare_metrics(
        extract_metrics(baseline), extract_metrics(current), thresholds,
    )


# ----------------------------------------------------------------------
# CLI.


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module docstring).

    Exit codes: 0 clean, 1 regressions found, 2 unreadable artifact.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.obs",
        description="Manifest summaries and the bench regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="summarize a run manifest")
    p_sum.add_argument("manifest", help="path to manifest.jsonl")
    p_sum.add_argument("-o", "--output", help="write summary JSON here")

    p_cmp = sub.add_parser("compare", help="gate current vs baseline")
    p_cmp.add_argument("baseline")
    p_cmp.add_argument("current")
    p_cmp.add_argument("--rel-tol-quality", type=float,
                       default=REL_TOL_QUALITY)
    p_cmp.add_argument("--rel-tol-rate", type=float, default=REL_TOL_RATE)
    p_cmp.add_argument("--rel-tol-time", type=float, default=REL_TOL_TIME)
    p_cmp.add_argument("--time-floor", type=float, default=TIME_FLOOR)
    p_cmp.add_argument("--quiet", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "summarize":
        summary = summarize_manifest(read_manifest(args.manifest))
        text = json.dumps(summary, indent=2, sort_keys=True)
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        else:
            print(text)
        return 0

    thresholds = Thresholds(
        rel_quality=args.rel_tol_quality,
        rel_rate=args.rel_tol_rate,
        rel_time=args.rel_tol_time,
        time_floor=args.time_floor,
    )
    try:
        regressions, compared = compare_files(
            args.baseline, args.current, thresholds,
        )
    except (OSError, ValueError) as error:
        print(f"obs compare: {error}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(f"obs compare: {compared} metrics compared, "
              f"{len(regressions)} regressions")
        for regression in regressions:
            print(f"  {regression}")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
