"""ASCII charts for experiment results.

Matplotlib is deliberately not a dependency; the paper's figures are
line and bar charts that render adequately as text for terminals, logs,
and EXPERIMENTS.md.
"""

from __future__ import annotations


def line_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII scatter chart.

    Each series gets a distinct marker; points falling on the same cell
    show the marker of the last series drawn.

    Args:
        series: label -> list of (x, y) points.
        width/height: plot area size in characters.
        title: optional heading.
        y_label: optional y-axis annotation.

    Returns:
        The rendered chart text.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    for (label, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((x - x_min) / x_span * (width - 1))
            row = int((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    label_width = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(label_width)
        elif index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(
        " " * label_width + " +" + "-" * width
    )
    lines.append(
        " " * label_width + f"  {x_min:<.4g}"
        + " " * max(1, width - len(f"{x_min:<.4g}") - len(f"{x_max:.4g}"))
        + f"{x_max:.4g}"
    )
    legend = "   ".join(
        f"{marker}={label}"
        for (label, _), marker in zip(series.items(), markers)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    if y_label:
        lines.append(f"{' ' * label_width}  y: {y_label}")
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float],
    *,
    width: int = 50,
    title: str = "",
    fmt: str = "{:.4f}",
) -> str:
    """Render a labelled horizontal bar chart.

    Args:
        values: label -> value (non-negative).
        width: maximum bar length in characters.
        title: optional heading.
        fmt: value format string.
    """
    if not values:
        return f"{title}\n(no data)"
    maximum = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, int(width * value / maximum))
        lines.append(
            f"{label.ljust(label_width)}  {fmt.format(value):>10s}  {bar}"
        )
    return "\n".join(lines)
