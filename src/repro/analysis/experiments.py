"""One entry point per table and figure of the paper.

Each ``fig*``/``table*``/``tuning*`` function regenerates the data behind
the corresponding artifact of Butts & Sohi (ISCA 2004) on the synthetic
suite, returning an :class:`~repro.analysis.report.ExperimentResult`.

Environment knobs (read once at call time, not import time):

* ``REPRO_SCALE`` — workload scale factor (default 0.3). Larger values
  lengthen every benchmark trace proportionally.
* ``REPRO_SUITE`` — ``full`` (default) or ``short`` (four benchmarks,
  for quick sweeps).

Run from the command line::

    python -m repro.analysis.experiments fig8 table2
    python -m repro.analysis.experiments all
"""

from __future__ import annotations

import functools
import os
import sys
import traceback
from collections.abc import Iterable

from repro.analysis.engine import get_engine
from repro.analysis.metrics import aggregate_cache_metrics
from repro.analysis.report import ExperimentResult, render
from repro.analysis.sweeps import load_traces, run_config, sweep
from repro.core.config import (
    MachineConfig,
    lru_config,
    monolithic_config,
    non_bypass_config,
    two_level_config,
    use_based_config,
)
from repro.core.lifetimes import (
    allocated_cdf,
    concatenate_records,
    live_cdf,
    mean_phase_summary,
    phase_summary,
)
from repro.core.simulator import mean_ipc
from repro.workloads.suite import DEFAULT_SUITE, SHORT_SUITE


def _with_engine_meta(fn):
    """Record engine activity (jobs, cache hits, wall-clock) in meta.

    Wraps an experiment function so its :class:`ExperimentResult`
    carries a ``meta["engine"]`` dict with the shared engine's counter
    deltas for that experiment — the observability data bench JSONs use
    to track the harness's own perf trajectory — and, when any jobs
    failed, a ``meta["failures"]`` list describing the holes (sweeps
    degrade to partial results instead of raising; the CLI turns a
    non-empty failure list into exit code 3).
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        engine = get_engine()
        counters = engine.counters
        before = counters.snapshot()
        failures_before = len(engine.failure_log)
        result = fn(*args, **kwargs)
        if isinstance(result, ExperimentResult):
            result.meta["engine"] = counters.since(before)
            new_failures = engine.failure_log[failures_before:]
            if new_failures:
                result.meta["failures"] = [
                    {
                        "job": failure.job.describe(),
                        "kind": failure.kind,
                        "error": failure.error.strip().splitlines()[-1]
                        if failure.error else "",
                    }
                    for failure in new_failures
                ]
        return result

    return wrapper


def _present(results: dict) -> dict:
    """Drop failed-job holes so aggregation sees only real statistics."""
    return {name: stats for name, stats in results.items() if stats}


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.3"))


def _names() -> tuple[str, ...]:
    choice = os.environ.get("REPRO_SUITE", "full")
    return SHORT_SUITE if choice == "short" else DEFAULT_SUITE


def _traces(scale: float | None = None, names: Iterable[str] | None = None):
    return load_traces(names or _names(), scale if scale is not None else _scale())


#: The three caching schemes compared throughout §5.4-§5.5, with the
#: indexing assignments the paper uses after Figure 8 (round-robin for
#: the reference designs, filtered round-robin for use-based).
def _scheme_configs(**common) -> dict[str, MachineConfig]:
    return {
        "lru": lru_config(**common),
        "non_bypass": non_bypass_config(**common),
        "use_based": use_based_config(**common),
    }


# ----------------------------------------------------------------------
# Figure 1 / Figure 2 — register lifetimes.


@_with_engine_meta
def fig1_lifetimes(scale: float | None = None) -> ExperimentResult:
    """Median empty/live/dead register lifetime phases (Figure 1)."""
    traces = _traces(scale)
    results = _present(run_config(traces, use_based_config()))
    rows = []
    summaries = []
    for name, stats in results.items():
        summary = phase_summary(stats.lifetimes)
        summaries.append(summary)
        rows.append([name, summary.empty, summary.live, summary.dead])
    mean = mean_phase_summary(summaries)
    rows.append(["MEAN", mean.empty, mean.live, mean.dead])
    return ExperimentResult(
        experiment_id="fig1",
        title="Physical register lifetime phases (median cycles)",
        headers=["benchmark", "empty", "live", "dead"],
        rows=rows,
        notes=(
            "Paper reports means of per-benchmark medians of roughly "
            "16 (empty), 11 (live), 36 (dead) cycles on SPECint 2000; "
            "the shape to check is live << empty + dead."
        ),
    )


@_with_engine_meta
def fig2_occupancy_cdf(scale: float | None = None) -> ExperimentResult:
    """Allocated vs live register distributions (Figure 2)."""
    traces = _traces(scale)
    results = _present(run_config(traces, use_based_config()))
    rows = []
    for name, stats in results.items():
        alloc = allocated_cdf(stats.lifetimes)
        live = live_cdf(stats.lifetimes)
        rows.append([
            name, alloc.median, alloc.percentile(0.9),
            live.median, live.percentile(0.9),
        ])
    pooled = concatenate_records([s.lifetimes for s in results.values()])
    alloc = allocated_cdf(pooled)
    live = live_cdf(pooled)
    rows.append([
        "ALL", alloc.median, alloc.percentile(0.9),
        live.median, live.percentile(0.9),
    ])
    return ExperimentResult(
        experiment_id="fig2",
        title="Simultaneously allocated vs live registers (median / p90)",
        headers=["benchmark", "alloc p50", "alloc p90", "live p50",
                 "live p90"],
        rows=rows,
        notes=(
            "Paper: median live values < 20% of allocated; 90th "
            "percentile of live values is 56 with 512 physical "
            "registers. Check live << allocated and p90(live) well "
            "under the register count."
        ),
        meta={"live_p90": live.percentile(0.9),
              "alloc_p50": alloc.median, "live_p50": live.median},
    )


# ----------------------------------------------------------------------
# Figure 6 / Figure 7 — organization and indexing tuning.


@_with_engine_meta
def fig6_size_assoc(
    scale: float | None = None,
    sizes: tuple[int, ...] = (16, 32, 48, 64, 96, 128),
    assocs: tuple[int, ...] = (1, 2, 4, 0),
) -> ExperimentResult:
    """IPC versus cache size and associativity (Figure 6).

    Uses standard (preg) indexing as the paper's Figure 6 does; 0 in
    *assocs* means fully associative.
    """
    traces = _traces(scale)
    rows = []
    for size in sizes:
        row: list[object] = [size]
        for assoc in assocs:
            if assoc and size % assoc:
                row.append("-")
                continue
            config = use_based_config(
                cache_entries=size, cache_assoc=assoc, indexing="preg",
            )
            row.append(mean_ipc(run_config(traces, config)))
        rows.append(row)
    for latency in (1, 2, 3, 4):
        results = run_config(traces, monolithic_config(latency))
        rows.append([f"RF {latency}-cycle", "-", "-", "-",
                     mean_ipc(results)])
    return ExperimentResult(
        experiment_id="fig6",
        title="Register cache size and organization (mean IPC)",
        headers=["entries", "direct", "2-way", "4-way", "full"],
        rows=rows,
        notes=(
            "Paper: associativity dominates; direct-mapped caches fail "
            "to beat the 3-cycle register file; the fully-associative "
            "curve flattens near the 90th-percentile live-value count; "
            "64-entry 2-way is the chosen design point."
        ),
    )


@_with_engine_meta
def fig7_indexing(
    scale: float | None = None,
    assocs: tuple[int, ...] = (1, 2, 4),
) -> ExperimentResult:
    """Decoupled indexing policies vs standard indexing (Figure 7)."""
    traces = _traces(scale)
    policies = ("preg", "round_robin", "minimum", "filtered_rr")
    rows = []
    for policy in policies:
        row: list[object] = [policy]
        for assoc in assocs:
            config = use_based_config(indexing=policy, cache_assoc=assoc)
            results = run_config(traces, config)
            conflicts = sum(
                s.cache.misses["conflict"]
                for s in _present(results).values()
            )
            row.append(mean_ipc(results))
            row.append(conflicts)
        rows.append(row)
    headers = ["policy"]
    for assoc in assocs:
        headers += [f"ipc {assoc}w", f"conf {assoc}w"]
    return ExperimentResult(
        experiment_id="fig7",
        title="Decoupled indexing algorithms (64-entry cache)",
        headers=headers,
        rows=rows,
        notes=(
            "Paper: use-based assignment (filtered round-robin, minimum) "
            "performs best; filtered round-robin gains 1.9% on 2-way; "
            "advantages are larger at lower associativity. Check that "
            "decoupled policies cut conflict misses versus preg."
        ),
    )


# ----------------------------------------------------------------------
# Figure 8-10 and Table 2 — characterization at the design point.


@_with_engine_meta
def fig8_miss_breakdown(scale: float | None = None) -> ExperimentResult:
    """Miss-rate taxonomy under standard vs decoupled indexing (Fig 8)."""
    traces = _traces(scale)
    rows = []
    for scheme, base in (
        ("lru", lru_config), ("non_bypass", non_bypass_config),
        ("use_based", use_based_config),
    ):
        for indexing, label in (
            ("preg", "standard"),
            ("filtered_rr" if scheme == "use_based" else "round_robin",
             "decoupled"),
        ):
            results = run_config(traces, base(indexing=indexing))
            metrics = aggregate_cache_metrics(scheme, results)
            rows.append([
                scheme, label, metrics.miss_filtered,
                metrics.miss_capacity, metrics.miss_conflict,
                metrics.miss_rate,
            ])
    return ExperimentResult(
        experiment_id="fig8",
        title="Register cache misses per operand, 64-entry 2-way",
        headers=["scheme", "indexing", "filtered", "capacity", "conflict",
                 "total"],
        rows=rows,
        notes=(
            "Paper: write filtering trades filtered-value misses for "
            "capacity/conflict misses; non-bypass's filtered misses push "
            "its total above LRU at this size while use-based filtering "
            "does not; decoupled indexing removes 30-40% of conflict "
            "misses for every scheme."
        ),
    )


@_with_engine_meta
def fig9_bandwidth(scale: float | None = None) -> ExperimentResult:
    """Cache / register file access bandwidth (Figure 9)."""
    traces = _traces(scale)
    rows = []
    for scheme, results in sweep(traces, _scheme_configs()).items():
        metrics = aggregate_cache_metrics(scheme, results)
        rows.append([
            scheme, metrics.cache_read_bw, metrics.cache_write_bw,
            metrics.rf_read_bw, metrics.rf_write_bw,
        ])
    return ExperimentResult(
        experiment_id="fig9",
        title="Average access bandwidth (per cycle), 64-entry 2-way",
        headers=["scheme", "cache rd", "cache wr", "RF rd", "RF wr"],
        rows=rows,
        notes=(
            "Paper: write filtering lowers cache write bandwidth for "
            "non-bypass/use-based; RF read bandwidth tracks the miss "
            "rate (fills); RF write bandwidth sees every result."
        ),
    )


@_with_engine_meta
def fig10_filtering(scale: float | None = None) -> ExperimentResult:
    """Write-filtering effects (Figure 10)."""
    traces = _traces(scale)
    rows = []
    for scheme, results in sweep(traces, _scheme_configs()).items():
        metrics = aggregate_cache_metrics(scheme, results)
        rows.append([
            scheme, metrics.never_read_fraction,
            metrics.filtered_write_fraction, metrics.never_cached_fraction,
        ])
    return ExperimentResult(
        experiment_id="fig10",
        title="Filtering effects (fractions)",
        headers=["scheme", "cached never read", "writes filtered",
                 "never cached"],
        rows=rows,
        notes=(
            "Paper: use-based shows the lowest cached-never-read "
            "fraction, filters the most initial writes, and leaves the "
            "largest fraction of values never cached."
        ),
    )


@_with_engine_meta
def table2_metrics(scale: float | None = None) -> ExperimentResult:
    """Register cache metric comparison (Table 2)."""
    traces = _traces(scale)
    rows = []
    for scheme, results in sweep(traces, _scheme_configs()).items():
        metrics = aggregate_cache_metrics(scheme, results)
        rows.append([
            scheme, metrics.reads_per_cached_value, metrics.cache_count,
            metrics.occupancy, metrics.entry_lifetime,
        ])
    return ExperimentResult(
        experiment_id="table2",
        title="Register cache metrics, 64-entry 2-way",
        headers=["scheme", "reads/cached value", "cache count",
                 "occupancy", "entry lifetime"],
        rows=rows,
        notes=(
            "Paper (LRU / non-bypass / use-based): reads per cached "
            "value 0.67 / 1.18 / 1.67; cache count 1.09 / 0.61 / 0.44; "
            "occupancy 36.7 / 28.8 / 26.6; lifetime 25.2 / 36.3 / 43.6. "
            "Check the orderings: use-based highest reads/value and "
            "lifetime, lowest cache count and occupancy."
        ),
    )


# ----------------------------------------------------------------------
# Figure 11 / Figure 12 — performance comparisons.


@_with_engine_meta
def fig11_perf_vs_size(
    scale: float | None = None,
    sizes: tuple[int, ...] = (16, 32, 48, 64, 96),
) -> ExperimentResult:
    """IPC versus cache/L1 size for all schemes (Figure 11)."""
    traces = _traces(scale)
    rows = []
    for size in sizes:
        row: list[object] = [size]
        row.append(mean_ipc(run_config(
            traces, lru_config(cache_entries=size))))
        row.append(mean_ipc(run_config(
            traces, non_bypass_config(cache_entries=size))))
        row.append(mean_ipc(run_config(
            traces, use_based_config(cache_entries=size))))
        row.append(mean_ipc(run_config(
            traces, use_based_config(cache_entries=size, cache_assoc=4))))
        row.append(mean_ipc(run_config(
            traces, two_level_config(cache_entries=size))))
        rows.append(row)
    for latency in (1, 3):
        results = run_config(traces, monolithic_config(latency))
        rows.append([f"RF {latency}-cyc", "-", "-", "-", "-",
                     mean_ipc(results)])
    return ExperimentResult(
        experiment_id="fig11",
        title="Performance vs cache/L1 size (mean IPC)",
        headers=["entries", "lru", "non_bypass", "use_based",
                 "use_based 4w", "two_level(+32)"],
        rows=rows,
        notes=(
            "Paper: use-based outperforms the other caches across "
            "capacities, with the advantage growing as caches shrink; "
            "the 4-way use-based cache matches the 64-entry 2-way with "
            "~48 entries; the two-level file trails due to rename "
            "stalls and falls off rapidly at small L1 sizes."
        ),
    )


@_with_engine_meta
def fig12_backing_latency(
    scale: float | None = None,
    latencies: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
) -> ExperimentResult:
    """IPC versus backing file / L2 latency (Figure 12)."""
    traces = _traces(scale)
    rows = []
    for latency in latencies:
        row: list[object] = [latency]
        row.append(mean_ipc(run_config(
            traces, lru_config(backing_read_latency=latency))))
        row.append(mean_ipc(run_config(
            traces, non_bypass_config(backing_read_latency=latency))))
        row.append(mean_ipc(run_config(
            traces, use_based_config(backing_read_latency=latency))))
        row.append(mean_ipc(run_config(
            traces, two_level_config(two_level_l2_latency=latency))))
        rows.append(row)
    for latency in (1, 3):
        results = run_config(traces, monolithic_config(latency))
        rows.append([f"RF {latency}-cyc", "-", "-",
                     mean_ipc(results), "-"])
    return ExperimentResult(
        experiment_id="fig12",
        title="Performance vs backing file / L2 latency (mean IPC)",
        headers=["latency", "lru", "non_bypass", "use_based",
                 "two_level"],
        rows=rows,
        notes=(
            "Paper: use-based degrades most slowly with backing "
            "latency among the caches; the two-level file is least "
            "sensitive (L2 latency seen only on recovery) but stays "
            "below use-based through latency ~4-5; use-based still "
            "beats a 3-cycle monolithic file at backing latencies up "
            "to ~5."
        ),
    )


# ----------------------------------------------------------------------
# §5.3 tuning studies and §3.3 predictor accuracy.


@_with_engine_meta
def tuning_max_use(
    scale: float | None = None,
    values: tuple[int, ...] = (2, 3, 5, 7, 9, 12, 15),
) -> ExperimentResult:
    """IPC versus the maximum representable use count (§5.3)."""
    traces = _traces(scale)
    rows = []
    for max_use in values:
        results = run_config(traces, use_based_config(max_use=max_use))
        metrics = aggregate_cache_metrics("use_based", results)
        rows.append([max_use, mean_ipc(results), metrics.miss_rate])
    return ExperimentResult(
        experiment_id="tuning_max_use",
        title="Maximum representable use count",
        headers=["max_use", "mean ipc", "miss rate"],
        rows=rows,
        notes=(
            "Paper: performance falls off rapidly below ~6 (too many "
            "values pinned), improves to ~12, with the knee around 7 "
            "(three bits)."
        ),
    )


@_with_engine_meta
def tuning_defaults(
    scale: float | None = None,
    unknown_values: tuple[int, ...] = (0, 1, 2, 3),
    fill_values: tuple[int, ...] = (0, 1, 2),
) -> ExperimentResult:
    """IPC versus the unknown and fill defaults (§5.3)."""
    traces = _traces(scale)
    rows = []
    for unknown in unknown_values:
        results = run_config(
            traces, use_based_config(unknown_default=unknown)
        )
        rows.append(["unknown", unknown, mean_ipc(results)])
    for fill in fill_values:
        results = run_config(traces, use_based_config(fill_default=fill))
        rows.append(["fill", fill, mean_ipc(results)])
    return ExperimentResult(
        experiment_id="tuning_defaults",
        title="Unknown and fill default use counts",
        headers=["default", "value", "mean ipc"],
        rows=rows,
        notes=(
            "Paper: unknown default of 1 (most values are used once) "
            "and fill default of 0 (a filled value's triggering use is "
            "likely its last) maximize performance."
        ),
    )


@_with_engine_meta
def predictor_accuracy(scale: float | None = None) -> ExperimentResult:
    """Degree-of-use predictor accuracy and coverage (§3.3)."""
    traces = _traces(scale)
    results = _present(run_config(traces, use_based_config()))
    rows = []
    total_supplied = total_correct = total_queries = 0
    for name, stats in results.items():
        coverage = (
            stats.predictor_supplied / stats.predictor_queries
            if stats.predictor_queries else 0.0
        )
        rows.append([name, stats.predictor_accuracy, coverage])
        total_supplied += stats.predictor_supplied
        total_correct += stats.predictor_correct
        total_queries += stats.predictor_queries
    rows.append([
        "ALL",
        total_correct / total_supplied if total_supplied else 0.0,
        total_supplied / total_queries if total_queries else 0.0,
    ])
    return ExperimentResult(
        experiment_id="predictor",
        title="Degree-of-use predictor accuracy / coverage",
        headers=["benchmark", "accuracy", "coverage"],
        rows=rows,
        notes="Paper reports 97% average accuracy (§3.3).",
    )


@_with_engine_meta
def incorrect_use_info(
    scale: float | None = None,
    noise_levels: tuple[float, ...] = (0.0, 0.05, 0.15, 0.3, 0.6),
) -> ExperimentResult:
    """Sensitivity to incorrect use information (paper §3.4).

    Injects training noise into the degree-of-use predictor to model
    wrong-path use counting and mispredictions, measuring how stale and
    falsely-dead values affect the miss rate and performance. The paper
    argues both effects are naturally bounded (invalidation-at-free
    limits stale values; lazy eviction and bypassing mask falsely-dead
    values), so degradation should be gradual.
    """
    traces = _traces(scale)
    rows = []
    for noise in noise_levels:
        results = run_config(
            traces, use_based_config(wrongpath_use_noise=noise)
        )
        metrics = aggregate_cache_metrics("use_based", results)
        accuracy_num = sum(
            s.predictor_correct for s in _present(results).values()
        )
        accuracy_den = max(
            1, sum(s.predictor_supplied for s in _present(results).values())
        )
        rows.append([
            noise, mean_ipc(results), metrics.miss_rate,
            accuracy_num / accuracy_den,
        ])
    return ExperimentResult(
        experiment_id="s34_noise",
        title="Incorrect use information (training noise sweep)",
        headers=["noise", "mean ipc", "miss rate", "pred accuracy"],
        rows=rows,
        notes=(
            "Paper §3.4: stale values are bounded by invalidation at "
            "register free; falsely-dead values are masked by lazy "
            "eviction and the bypass network. Performance should "
            "degrade gracefully, not collapse, as use information "
            "degrades."
        ),
    )


@_with_engine_meta
def table1_config() -> ExperimentResult:
    """Machine configuration versus Table 1 of the paper."""
    config = MachineConfig()
    rows = [
        ["issue width", config.issue_width, 8],
        ["window", config.window_size, 128],
        ["ROB", config.rob_size, 512],
        ["physical registers", config.num_pregs, 512],
        ["bypass stages", config.bypass_stages, 2],
        ["RF latency (baseline)", config.rf_read_latency, 3],
        ["backing latency", config.backing_read_latency, 2],
        ["cache entries", config.cache_entries, 64],
        ["cache assoc", config.cache_assoc, 2],
        ["max use", config.max_use, 7],
        ["unknown default", config.unknown_default, 1],
        ["fill default", config.fill_default, 0],
        ["predictor entries", config.predictor_entries, 4096],
        ["predictor assoc", config.predictor_assoc, 4],
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Simulator configuration vs paper Table 1",
        headers=["parameter", "ours", "paper"],
        rows=rows,
        notes="All structural parameters match the paper's Table 1.",
    )


@_with_engine_meta
def ablations(scale: float | None = None) -> ExperimentResult:
    """Design-choice ablations beyond the paper's explicit studies."""
    traces = _traces(scale)
    variants = {
        "full use-based": use_based_config(),
        "no pinning": use_based_config(pin_at_max=False),
        "lru replacement": use_based_config(replacement="lru"),
        "always insert": use_based_config(insertion="always"),
        "no predictor (defaults only)": use_based_config(
            predictor_enabled=False
        ),
        "standard indexing": use_based_config(indexing="preg"),
    }
    rows = []
    for label, config in variants.items():
        results = run_config(traces, config)
        metrics = aggregate_cache_metrics(label, results)
        rows.append([label, mean_ipc(results), metrics.miss_rate])
    return ExperimentResult(
        experiment_id="ablations",
        title="Use-based design ablations (64-entry 2-way)",
        headers=["variant", "mean ipc", "miss rate"],
        rows=rows,
        notes=(
            "Each row disables one ingredient of the proposal; the full "
            "configuration should be at or near the top."
        ),
    )


#: Registry used by the CLI and the benchmark harness.
EXPERIMENTS = {
    "table1": table1_config,
    "fig1": fig1_lifetimes,
    "fig2": fig2_occupancy_cdf,
    "fig6": fig6_size_assoc,
    "fig7": fig7_indexing,
    "fig8": fig8_miss_breakdown,
    "fig9": fig9_bandwidth,
    "fig10": fig10_filtering,
    "table2": table2_metrics,
    "fig11": fig11_perf_vs_size,
    "fig12": fig12_backing_latency,
    "tuning_max_use": tuning_max_use,
    "tuning_defaults": tuning_defaults,
    "predictor": predictor_accuracy,
    "s34_noise": incorrect_use_info,
    "ablations": ablations,
}


def _run_profiled(name: str, runner):
    """Run *runner* under cProfile; dump stats next to the result cache.

    Prints the top 25 functions by cumulative time and writes the raw
    profile to ``<cache_dir>/profiles/<name>.prof`` for snakeviz/pstats
    digging. Profiling captures this process only, so pair it with
    serial execution (``REPRO_JOBS`` unset) to see the simulator's hot
    loop rather than pool bookkeeping.
    """
    import cProfile
    import io
    import pstats
    from pathlib import Path

    profiler = cProfile.Profile()
    result = profiler.runcall(runner)
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats(
        "cumulative",
    ).print_stats(25)
    print(f"== profile: {name} (top 25, cumulative) ==")
    print(stream.getvalue())
    prof_dir = Path(get_engine().cache_dir) / "profiles"
    try:
        prof_dir.mkdir(parents=True, exist_ok=True)
        prof_path = prof_dir / f"{name}.prof"
        profiler.dump_stats(prof_path)
        print(f"profile written to {prof_path}")
    except OSError:
        pass  # read-only cache dir: keep the printed table
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI: print the requested experiments (or ``all``).

    ``--verbose``/``-v`` and ``--quiet``/``-q`` adjust the logging setup
    (INFO / ERROR; the default comes from ``REPRO_LOG_LEVEL``).
    ``--profile`` wraps each requested experiment in cProfile, printing
    the top-25 cumulative functions and dumping the raw ``.prof`` under
    the result cache directory. Exit codes: 0 success, 1 usage, 2
    unknown experiment, 3 when at least one experiment had failing jobs
    (the remaining experiments still run and render).
    """
    from repro.errors import EngineError
    from repro.obs.log import get_logger, setup_logging

    args = list(argv if argv is not None else sys.argv[1:])
    level = None
    while "--verbose" in args or "-v" in args:
        args.remove("--verbose") if "--verbose" in args else args.remove("-v")
        level = "INFO"
    while "--quiet" in args or "-q" in args:
        args.remove("--quiet") if "--quiet" in args else args.remove("-q")
        level = "ERROR"
    profile = False
    while "--profile" in args:
        args.remove("--profile")
        profile = True
    setup_logging(level)
    logger = get_logger("experiments")

    if not args:
        print(__doc__)
        print("available:", ", ".join(EXPERIMENTS))
        return 1
    requested = list(EXPERIMENTS) if "all" in args else args
    failed: list[str] = []
    for name in requested:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        try:
            result = _run_profiled(name, runner) if profile else runner()
        except EngineError as error:
            failed.append(name)
            logger.error("experiment %s had failing jobs", name)
            print(f"== {name}: FAILED ==\n{error}\n", file=sys.stderr)
            continue
        except Exception:
            # Sweeps degrade to partial results, so an escaping
            # exception means the experiment could not cope with its
            # holes (or has a bug); report it without killing the rest
            # of the batch.
            failed.append(name)
            logger.error("experiment %s raised", name)
            print(
                f"== {name}: FAILED ==\n{traceback.format_exc()}\n",
                file=sys.stderr,
            )
            continue
        print(render(result))
        print()
        if result.meta.get("failures"):
            # Partial result: it rendered (with its holes called out),
            # but the batch must still exit non-zero.
            failed.append(name)
            logger.error(
                "experiment %s completed with %d failed job(s)",
                name, len(result.meta["failures"]),
            )
    if failed:
        print(
            f"{len(failed)} experiment(s) with failing jobs: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
