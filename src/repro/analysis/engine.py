"""Parallel experiment engine with content-addressed result caching.

Every figure and table of the reproduction reduces to simulating a grid
of ``(MachineConfig, trace)`` pairs. This module owns that execution:

* **Fan-out** — jobs run across a :class:`~concurrent.futures.
  ProcessPoolExecutor` when more than one worker is configured, with
  deterministic result ordering (results come back in job order no
  matter which worker finishes first) and graceful fallback to the
  serial in-process path when a pool cannot be created or breaks.
* **Memoization** — results are stored in a content-addressed on-disk
  cache keyed by a canonical hash of the machine configuration
  (:meth:`~repro.core.config.MachineConfig.config_key`), the trace
  provenance ``(kernel, scale, seed)``, the serialized-stats schema
  version, and a fingerprint of the simulator source itself. Figures
  that share baseline configs (fig7/fig8/fig11/table2 all re-run the
  ``preg``/``monolithic`` variants) hit the cache instead of
  re-simulating, and any edit to the simulator code automatically
  invalidates stale entries.
* **Error capture** — a worker failure is captured per job (with its
  traceback) rather than poisoning the whole sweep; by default the
  first failure re-raises as :class:`~repro.errors.EngineError`.
* **Observability** — the engine counts jobs, cache hits/misses, and
  per-job wall-clock (including p50/p95) so experiment results and
  bench JSONs can track the perf trajectory of the harness itself; it
  logs live progress (jobs done/total, ETA, cache hit rate) through
  :mod:`repro.obs.log`; and every run appends per-job records — job
  identity, config hash, trace provenance, cache hit/miss, wall-clock,
  worker pid, failure traceback — to a JSONL manifest under the cache
  directory (:mod:`repro.obs.manifest`), which the regression gate
  (``python -m repro.analysis.obs``) summarizes and diffs.

Environment knobs (read when the shared engine is created):

* ``REPRO_JOBS`` — worker count (``1``/unset = serial; ``0``/``auto``
  = one per CPU).
* ``REPRO_CACHE`` — set to ``0`` to disable the on-disk result cache.
* ``REPRO_CACHE_DIR`` — cache location (default ``.repro-cache``).
* ``REPRO_MANIFEST`` — ``0`` disables run manifests; a path overrides
  the default ``<cache_dir>/manifest.jsonl``.
* ``REPRO_LOG_LEVEL`` — progress/diagnostic logging level (the engine
  logs at INFO).
* ``REPRO_TRACE_CACHE`` / ``REPRO_TRACE_CACHE_DIR`` — the trace
  factory's on-disk cache (see :mod:`repro.workloads.suite`), warmed
  by the engine before fan-out so cold workers never re-execute the VM.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import time
import traceback
import uuid
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import MachineConfig
from repro.core.pipeline import Pipeline
from repro.core.stats import STATS_SCHEMA_VERSION, SimStats
from repro.errors import EngineError
from repro.obs.log import ProgressReporter, get_logger
from repro.obs.manifest import ManifestWriter, manifest_path_for
from repro.obs.metrics import Histogram, get_metrics
from repro.vm.trace import Trace
from repro.workloads.suite import load_trace, trace_counters, warm_trace_cache

_log = get_logger("engine")

#: Monotonic discriminator so concurrent same-process cache writers
#: (threads) never collide on a tmp-file name.
_tmp_counter = itertools.count()

#: Bump to invalidate every cached result regardless of code changes
#: (e.g. when the cache file layout itself changes).
CACHE_SCHEMA_VERSION = 1

_code_fingerprint_memo: str | None = None


def _code_fingerprint() -> str:
    """Hash of every simulator source file that can affect a result.

    The analysis layer (this package) is excluded: it only reports on
    :class:`SimStats`, it never changes them. Everything else — pipeline,
    register files, policies, predictor, ISA, VM, kernels — feeds the
    cache key, so editing the simulator silently invalidates stale
    results instead of serving them.
    """
    global _code_fingerprint_memo
    if _code_fingerprint_memo is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel.startswith("analysis/"):
                continue
            digest.update(rel.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _code_fingerprint_memo = digest.hexdigest()
    return _code_fingerprint_memo


# ----------------------------------------------------------------------
# Job model.


@dataclass(frozen=True)
class SimJob:
    """One simulation request: a machine configuration applied to a trace.

    Jobs normally reference a suite trace by ``(trace_name, scale,
    seed)`` provenance so workers can re-derive it locally (trace
    loading is memoized per process) and results are cacheable. A job
    may instead embed an explicit :class:`Trace` — such jobs still run
    (in parallel too; the trace is pickled to the worker) but bypass
    the on-disk cache because their content has no stable identity.
    """

    config: MachineConfig
    trace_name: str = ""
    scale: float = 1.0
    seed: int | None = None
    trace: Trace | None = None
    label: str = ""

    @classmethod
    def for_trace(
        cls, trace: Trace, config: MachineConfig, label: str = ""
    ) -> "SimJob":
        """Build a job from an in-memory trace, using provenance if any."""
        provenance = getattr(trace, "provenance", None)
        name = label or trace.name
        if provenance is not None:
            kernel, scale, seed = provenance
            return cls(
                config=config, trace_name=kernel, scale=scale, seed=seed,
                label=name,
            )
        return cls(config=config, trace_name=trace.name, trace=trace,
                   label=name)

    @property
    def cacheable(self) -> bool:
        """True when the job's result can live in the on-disk cache."""
        return self.trace is None and bool(self.trace_name)

    def describe(self) -> str:
        scheme = self.config.storage
        return f"{self.label or self.trace_name or '<trace>'}[{scheme}]"

    def resolve_trace(self) -> Trace:
        """The trace to simulate (loading by provenance if needed)."""
        if self.trace is not None:
            return self.trace
        return load_trace(self.trace_name, scale=self.scale, seed=self.seed)

    def cache_key(self) -> str:
        """Content-addressed identity of this job's result."""
        payload = json.dumps(
            {
                "cache_schema": CACHE_SCHEMA_VERSION,
                "stats_schema": STATS_SCHEMA_VERSION,
                "code": _code_fingerprint(),
                "config": self.config.config_key(),
                "trace": [self.trace_name, float(self.scale), self.seed],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class JobFailure:
    """Captured failure of one job (kept instead of a SimStats)."""

    job: SimJob
    error: str

    def __bool__(self) -> bool:  # failed jobs are falsy result slots
        return False


def _execute_job(job: SimJob) -> tuple[str, object, float, int]:
    """Run one job; never raises (worker-side error capture).

    Returns ``("ok", SimStats, wall_seconds, worker_pid)`` or
    ``("error", traceback_text, wall_seconds, worker_pid)``. Runs in
    worker processes, so it must stay module-level (picklable by
    reference).
    """
    start = time.perf_counter()
    pid = os.getpid()
    try:
        trace = job.resolve_trace()
        stats = Pipeline(trace, job.config).run()
        return ("ok", stats, time.perf_counter() - start, pid)
    except Exception:
        return (
            "error", traceback.format_exc(), time.perf_counter() - start, pid,
        )


# ----------------------------------------------------------------------
# Observability counters.


#: Snapshot keys that are distribution summaries rather than additive
#: counters; :meth:`EngineCounters.since` reports their current value.
_NON_ADDITIVE = ("max_job_seconds", "job_seconds_p50", "job_seconds_p95")


@dataclass
class EngineCounters:
    """Cumulative engine activity, cheap to snapshot and diff."""

    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: int = 0
    parallel_jobs: int = 0
    serial_fallbacks: int = 0
    job_seconds: float = 0.0
    max_job_seconds: float = 0.0
    engine_seconds: float = 0.0
    traces_generated: int = 0
    traces_loaded: int = 0
    trace_gen_seconds: float = 0.0
    trace_load_seconds: float = 0.0
    #: Distribution of executed-job wall-clock (capped sample set).
    job_wall: Histogram = field(default_factory=Histogram, repr=False)

    def record_job(self, wall: float) -> None:
        """Fold one executed job's wall-clock into the aggregates."""
        self.executed += 1
        self.job_seconds += wall
        if wall > self.max_job_seconds:
            self.max_job_seconds = wall
        self.job_wall.observe(wall)

    def snapshot(self) -> dict[str, float]:
        return {
            "jobs": self.jobs,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "errors": self.errors,
            "parallel_jobs": self.parallel_jobs,
            "serial_fallbacks": self.serial_fallbacks,
            "job_seconds": round(self.job_seconds, 6),
            "max_job_seconds": round(self.max_job_seconds, 6),
            "job_seconds_p50": round(self.job_wall.percentile(0.50), 6),
            "job_seconds_p95": round(self.job_wall.percentile(0.95), 6),
            "engine_seconds": round(self.engine_seconds, 6),
            "traces_generated": self.traces_generated,
            "traces_loaded": self.traces_loaded,
            "trace_gen_seconds": round(self.trace_gen_seconds, 6),
            "trace_load_seconds": round(self.trace_load_seconds, 6),
        }

    def since(self, before: dict[str, float]) -> dict[str, float]:
        """Delta of the additive counters since a snapshot.

        ``max_job_seconds`` and the wall-clock percentiles are
        distribution summaries, not additive, so the delta reports
        their current value.
        """
        now = self.snapshot()
        delta = {
            key: round(now[key] - before.get(key, 0), 6)
            for key in now
            if key not in _NON_ADDITIVE
        }
        for key in _NON_ADDITIVE:
            delta[key] = now[key]
        return delta


# ----------------------------------------------------------------------
# The engine.


class ExperimentEngine:
    """Executes :class:`SimJob` batches with fan-out and memoization.

    Args:
        workers: default worker count for :meth:`run`; ``None`` reads
            ``REPRO_JOBS`` (unset = 1, i.e. serial), ``0`` means one
            worker per CPU.
        cache_dir: on-disk result cache location; ``None`` reads
            ``REPRO_CACHE_DIR`` (default ``.repro-cache``).
        use_cache: disable to always re-simulate; ``None`` reads
            ``REPRO_CACHE`` (anything but ``0``/``false`` enables).
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool | None = None,
    ) -> None:
        if workers is None:
            workers = _parse_jobs(os.environ.get("REPRO_JOBS"))
        if workers <= 0:  # 0 / "auto" = one worker per CPU
            workers = os.cpu_count() or 1
        self.workers = workers
        if use_cache is None:
            use_cache = os.environ.get("REPRO_CACHE", "1").lower() not in (
                "0", "false", "off",
            )
        self.use_cache = use_cache
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
        self.cache_dir = Path(cache_dir)
        self.counters = EngineCounters()
        manifest_path = manifest_path_for(self.cache_dir)
        self.manifest: ManifestWriter | None = (
            None if manifest_path is None else ManifestWriter(manifest_path)
        )

    # ------------------------------------------------------------------
    # Public API.

    def run(
        self,
        jobs: Iterable[SimJob],
        *,
        workers: int | None = None,
        raise_on_error: bool = True,
    ) -> list[SimStats | JobFailure]:
        """Execute *jobs*, returning results in job order.

        Cached results are loaded without simulating; the remainder run
        serially or across a process pool. With ``raise_on_error`` (the
        default) the first captured failure re-raises as
        :class:`EngineError`; otherwise failed slots hold
        :class:`JobFailure` records.
        """
        start = time.perf_counter()
        jobs = list(jobs)
        counters = self.counters
        counters.jobs += len(jobs)
        results: list[SimStats | JobFailure | None] = [None] * len(jobs)
        run_id = uuid.uuid4().hex[:12]
        manifest_records: list[dict] = []

        pending: list[int] = []
        for index, job in enumerate(jobs):
            if self.use_cache and job.cacheable:
                cached = self._cache_load(job)
                if cached is not None:
                    counters.cache_hits += 1
                    results[index] = cached
                    if self.manifest is not None:
                        manifest_records.append(
                            self._manifest_record(
                                run_id, job, cached=True, status="ok",
                                wall=0.0, worker=None,
                            )
                        )
                    continue
                counters.cache_misses += 1
            pending.append(index)

        _log.info(
            "run %s: %d jobs (%d cached, %d to execute, %d workers)",
            run_id, len(jobs), len(jobs) - len(pending), len(pending),
            self._resolve_workers(workers, len(pending)) if pending else 0,
        )

        failures: list[JobFailure] = []
        run_wall = 0.0
        if pending:
            trace_before = trace_counters().snapshot()
            pending_jobs = [jobs[index] for index in pending]
            self._warm_traces(pending_jobs)
            workers = self._resolve_workers(workers, len(pending))
            hit_rate = (
                f"{counters.cache_hits}/{counters.jobs}"
                if counters.jobs else "0/0"
            )
            progress = ProgressReporter(
                total=len(pending), logger=_log,
                label=f"run {run_id}",
            )
            outcomes = self._execute_pending(pending_jobs, workers, progress)
            for index, outcome in zip(pending, outcomes):
                status, payload, wall, worker = outcome
                job = jobs[index]
                counters.record_job(wall)
                run_wall += wall
                if status == "ok":
                    if self.use_cache and job.cacheable:
                        self._cache_store(job, payload)
                    results[index] = payload
                    error = None
                else:
                    counters.errors += 1
                    failure = JobFailure(job=job, error=payload)
                    failures.append(failure)
                    results[index] = failure
                    error = payload
                    _log.warning(
                        "run %s: job %s failed on worker %s",
                        run_id, job.describe(), worker,
                    )
                if self.manifest is not None:
                    manifest_records.append(
                        self._manifest_record(
                            run_id, job, cached=False, status=status,
                            wall=wall, worker=worker, error=error,
                        )
                    )
            trace_delta = trace_counters().since(trace_before)
            counters.traces_generated += int(trace_delta["traces_generated"])
            counters.traces_loaded += int(trace_delta["traces_loaded"])
            counters.trace_gen_seconds += trace_delta["trace_gen_seconds"]
            counters.trace_load_seconds += trace_delta["trace_load_seconds"]
            _log.info(
                "run %s: done, cumulative cache hits %s, errors %d",
                run_id, hit_rate, len(failures),
            )

        engine_wall = time.perf_counter() - start
        counters.engine_seconds += engine_wall
        self._write_manifest(
            run_id, manifest_records, len(jobs), len(pending),
            len(failures), engine_wall,
        )
        self._publish_metrics(
            len(jobs), len(pending), len(failures), run_wall,
        )
        if failures and raise_on_error:
            first = failures[0]
            raise EngineError(
                f"{len(failures)} of {len(jobs)} jobs failed; first: "
                f"{first.job.describe()}\n{first.error}"
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Observability: manifests and metrics.

    def _manifest_record(
        self,
        run_id: str,
        job: SimJob,
        *,
        cached: bool,
        status: str,
        wall: float,
        worker: int | None,
        error: str | None = None,
    ) -> dict:
        record = {
            "kind": "job",
            "run": run_id,
            "ts": round(time.time(), 3),
            "job": job.describe(),
            "trace": [job.trace_name, float(job.scale), job.seed],
            "config_hash": job.config.config_hash(),
            "key": job.cache_key() if job.cacheable else None,
            "cached": cached,
            "status": status,
            "wall": round(wall, 6),
            "worker": worker,
        }
        if error is not None:
            record["error"] = error
        return record

    def _write_manifest(
        self,
        run_id: str,
        records: list[dict],
        jobs: int,
        executed: int,
        errors: int,
        engine_wall: float,
    ) -> None:
        """Append this run's job records plus a run-summary record."""
        if self.manifest is None or not jobs:
            return
        records = records + [{
            "kind": "run",
            "run": run_id,
            "ts": round(time.time(), 3),
            "jobs": jobs,
            "cached": jobs - executed,
            "executed": executed,
            "errors": errors,
            "workers": self.workers,
            "engine_seconds": round(engine_wall, 6),
        }]
        self.manifest.append_all(records)

    def _publish_metrics(
        self, jobs: int, executed: int, errors: int, run_wall: float,
    ) -> None:
        """Fold this run's activity into the process-wide registry."""
        registry = get_metrics()
        if not registry.enabled or not jobs:
            return
        registry.publish("engine", {
            "jobs": jobs,
            "executed": executed,
            "cache_hits": jobs - executed,
            "errors": errors,
            "job_seconds": round(run_wall, 6),
        })

    def run_grid(
        self,
        traces: dict[str, Trace],
        config: MachineConfig,
        *,
        workers: int | None = None,
    ) -> dict[str, SimStats]:
        """Simulate every named trace under *config* (cached, parallel)."""
        jobs = [
            SimJob.for_trace(trace, config, label=name)
            for name, trace in traces.items()
        ]
        stats = self.run(jobs, workers=workers)
        return dict(zip(traces.keys(), stats))

    # ------------------------------------------------------------------
    # Execution strategies.

    def _warm_traces(self, jobs: Sequence[SimJob]) -> None:
        """Ensure the on-disk trace cache covers *jobs* before fan-out.

        Generating each distinct trace once here (and packing it to
        disk) means cold worker processes deserialize instead of
        re-executing the VM. Warming is best-effort: a workload that
        cannot be cached simply regenerates in the worker, and any
        warming failure surfaces later as a per-job error with a full
        traceback.
        """
        seen: set[tuple[str, float, int | None]] = set()
        for job in jobs:
            if not job.cacheable:
                continue
            identity = (job.trace_name, float(job.scale), job.seed)
            if identity in seen:
                continue
            seen.add(identity)
            try:
                warm_trace_cache(job.trace_name, scale=job.scale,
                                 seed=job.seed)
            except Exception:
                pass

    def _resolve_workers(self, workers: int | None, pending: int) -> int:
        if workers is None:
            workers = self.workers
        if workers == 0:
            workers = os.cpu_count() or 1
        return max(1, min(workers, pending))

    def _execute_pending(
        self,
        jobs: Sequence[SimJob],
        workers: int,
        progress: ProgressReporter | None = None,
    ) -> list[tuple[str, object, float, int]]:
        if workers > 1 and len(jobs) > 1:
            try:
                return self._execute_parallel(jobs, workers, progress)
            except (OSError, RuntimeError, pickle.PicklingError, EOFError):
                # Pool creation or transport failed (sandboxed platform,
                # broken worker, unpicklable payload): fall back serial.
                self.counters.serial_fallbacks += 1
        outcomes = []
        for job in jobs:
            outcomes.append(_execute_job(job))
            if progress is not None:
                progress.update()
        return outcomes

    def _execute_parallel(
        self,
        jobs: Sequence[SimJob],
        workers: int,
        progress: ProgressReporter | None = None,
    ) -> list[tuple[str, object, float, int]]:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_job, job): index
                for index, job in enumerate(jobs)
            }
            outcomes: list = [None] * len(jobs)
            # Collect in completion order so progress (and its ETA) is
            # live; result ordering is restored through the index map.
            for future in as_completed(futures):
                outcomes[futures[future]] = future.result()
                if progress is not None:
                    progress.update()
        self.counters.parallel_jobs += len(jobs)
        return outcomes

    # ------------------------------------------------------------------
    # On-disk result cache.

    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key[2:]}.json"

    def _cache_load(self, job: SimJob) -> SimStats | None:
        """Load a cached result; any corruption or staleness is a miss."""
        key = job.cache_key()
        path = self._cache_path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("key") != key:
            return None
        try:
            return SimStats.from_dict(data["stats"])
        except (KeyError, TypeError, ValueError):
            return None

    def _cache_store(self, job: SimJob, stats: SimStats) -> None:
        key = job.cache_key()
        path = self._cache_path(key)
        payload = {
            "key": key,
            "job": {
                "trace": job.trace_name,
                "scale": float(job.scale),
                "seed": job.seed,
                "scheme": job.config.storage,
                "config_hash": job.config.config_hash(),
            },
            "stats": stats.to_dict(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # The tmp name must be unique per writer — pid separates
            # concurrent sweep processes, the counter separates threads
            # within one — so no two writers ever interleave into the
            # same tmp file; os.replace then publishes atomically and a
            # reader can never observe a torn entry.
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{next(_tmp_counter)}"
            )
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # A read-only or full filesystem never fails the experiment.
            pass


# ----------------------------------------------------------------------
# Shared engine instance.

_shared_engine: ExperimentEngine | None = None


def _parse_jobs(raw: str | None) -> int:
    if not raw:
        return 1
    if raw.strip().lower() == "auto":
        return 0
    try:
        return int(raw)
    except ValueError:
        return 1


def get_engine() -> ExperimentEngine:
    """The process-wide engine used by sweeps and experiments."""
    global _shared_engine
    if _shared_engine is None:
        _shared_engine = ExperimentEngine()
    return _shared_engine


def configure(
    workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool | None = None,
) -> ExperimentEngine:
    """Replace the shared engine (tests, benchmarks, notebooks).

    Arguments left as ``None`` fall back to the environment knobs, so
    ``configure()`` with no arguments resets to the default setup.
    """
    global _shared_engine
    _shared_engine = ExperimentEngine(
        workers=workers, cache_dir=cache_dir, use_cache=use_cache,
    )
    return _shared_engine
