"""Parallel experiment engine with content-addressed result caching.

Every figure and table of the reproduction reduces to simulating a grid
of ``(MachineConfig, trace)`` pairs. This module owns that execution:

* **Fan-out** — jobs run across a :class:`~concurrent.futures.
  ProcessPoolExecutor` when more than one worker is configured, with
  deterministic result ordering (results come back in job order no
  matter which worker finishes first) and graceful fallback to the
  serial in-process path when a pool cannot be created or breaks.
* **Memoization** — results are stored in a content-addressed on-disk
  cache keyed by a canonical hash of the machine configuration
  (:meth:`~repro.core.config.MachineConfig.config_key`), the trace
  provenance ``(kernel, scale, seed)``, the serialized-stats schema
  version, and a fingerprint of the simulator source itself. Figures
  that share baseline configs (fig7/fig8/fig11/table2 all re-run the
  ``preg``/``monolithic`` variants) hit the cache instead of
  re-simulating, and any edit to the simulator code automatically
  invalidates stale entries.
* **Fault tolerance** — each job can carry a wall-clock budget
  (``REPRO_JOB_TIMEOUT``): a worker-side ``SIGALRM`` unwinds a hung
  simulation and an engine-side watchdog terminates workers that
  cannot even do that. Any failed attempt — error, timeout, crashed
  worker, invalid result — is retried up to ``REPRO_JOB_RETRIES``
  times with exponential backoff, in a fresh pool if the old one was
  poisoned. A crashed worker therefore costs one retry round, not the
  sweep.
* **Validation before caching** — every freshly executed result must
  pass the differential oracle's conservation invariants
  (:func:`repro.testing.oracle.validate_stats`) and a serialization
  round-trip *before* it is returned or written to the result cache,
  so a half-unwound worker can never publish a corrupted result.
* **Checkpoint/resume** — runs append ``checkpoint`` records
  (``start`` / ``interrupted`` / ``complete``) to the manifest, and
  per-job records are written as jobs finish, so a sweep killed by
  SIGINT or a crash leaves a resumable trail: re-running the same
  sweep re-executes only the jobs whose results are not yet in the
  content-addressed cache. With ``REPRO_RESUME`` armed the engine also
  counts how many cache hits correspond to jobs completed by an
  earlier (interrupted) run — ``counters.resumed`` — so tests and
  operators can verify that only the missing jobs re-ran.
* **Graceful degradation** — with ``raise_on_error=False`` a sweep
  with failed jobs returns partial results whose failed slots hold
  falsy :class:`JobFailure` records (explicit holes), and every
  failure is also appended to :attr:`ExperimentEngine.failure_log` so
  reports can render what is missing instead of the run raising.
* **Error capture** — a worker failure is captured per job (with its
  traceback) rather than poisoning the whole sweep; by default the
  first captured failure re-raises as
  :class:`~repro.errors.EngineError`.
* **Observability** — the engine counts jobs, cache hits/misses,
  retries, timeouts, resumed jobs, and per-job wall-clock (including
  p50/p95); it logs live progress through :mod:`repro.obs.log`; and
  every run appends per-job records — job identity, config hash, trace
  provenance, cache hit/miss, wall-clock, worker pid, failure
  traceback — to a JSONL manifest under the cache directory
  (:mod:`repro.obs.manifest`), which the regression gate
  (``python -m repro.analysis.obs``) summarizes and diffs.

Environment knobs (read when the shared engine is created):

* ``REPRO_JOBS`` — worker count (``1``/unset = serial; ``0``/``auto``
  = one per CPU).
* ``REPRO_CACHE`` — set to ``0`` to disable the on-disk result cache.
* ``REPRO_CACHE_DIR`` — cache location (default ``.repro-cache``).
* ``REPRO_JOB_TIMEOUT`` — per-job wall-clock budget in seconds
  (``0``/unset = no budget).
* ``REPRO_JOB_RETRIES`` — how many times a failed attempt is retried
  (``0``/unset = fail fast, preserving historical behavior).
* ``REPRO_RETRY_BACKOFF`` — base delay in seconds between retry
  rounds; round *n* waits ``backoff * 2**(n-1)`` (default 0.05).
* ``REPRO_RESUME`` — arm resume accounting: cache hits whose job keys
  appear as completed in the manifest count as ``resumed``.
* ``REPRO_SWEEP_BATCH`` — ``0`` disables shared-frontend batching:
  jobs that differ only in register-storage configuration normally run
  as one group per worker, sharing a single trace decode,
  ``trace.analysis()`` pass, and precomputed branch-prediction plan.
* ``REPRO_FAULTS`` — arm the deterministic fault-injection plan (see
  :mod:`repro.testing.faults`); inert unless set.
* ``REPRO_MANIFEST`` — ``0`` disables run manifests; a path overrides
  the default ``<cache_dir>/manifest.jsonl``.
* ``REPRO_LOG_LEVEL`` — progress/diagnostic logging level (the engine
  logs at INFO).
* ``REPRO_TRACE_CACHE`` / ``REPRO_TRACE_CACHE_DIR`` — the trace
  factory's on-disk cache (see :mod:`repro.workloads.suite`), warmed
  by the engine before fan-out so cold workers never re-execute the VM.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import signal
import threading
import time
import traceback
import uuid
from collections.abc import Iterable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import MachineConfig
from repro.core.pipeline import Pipeline
from repro.frontend.fetch import branch_plan_for
from repro.core.stats import STATS_SCHEMA_VERSION, SimStats
from repro.errors import EngineError, JobTimeoutError
from repro.obs.log import ProgressReporter, get_logger
from repro.obs.manifest import (
    ManifestWriter,
    completed_job_keys,
    manifest_path_for,
    read_manifest,
)
from repro.obs.metrics import Histogram, get_metrics
from repro.testing import faults, oracle
from repro.vm.trace import Trace
from repro.workloads.suite import load_trace, trace_counters, warm_trace_cache

_log = get_logger("engine")

#: Monotonic discriminator so concurrent same-process cache writers
#: (threads) never collide on a tmp-file name.
_tmp_counter = itertools.count()

#: Bump to invalidate every cached result regardless of code changes
#: (e.g. when the cache file layout itself changes).
CACHE_SCHEMA_VERSION = 1

#: Ceiling on the exponential retry backoff, seconds.
MAX_RETRY_BACKOFF = 30.0

_code_fingerprint_memo: str | None = None


def _code_fingerprint() -> str:
    """Hash of every simulator source file that can affect a result.

    The analysis layer (this package) is excluded: it only reports on
    :class:`SimStats`, it never changes them. Everything else — pipeline,
    register files, policies, predictor, ISA, VM, kernels — feeds the
    cache key, so editing the simulator silently invalidates stale
    results instead of serving them.
    """
    global _code_fingerprint_memo
    if _code_fingerprint_memo is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel.startswith("analysis/"):
                continue
            digest.update(rel.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _code_fingerprint_memo = digest.hexdigest()
    return _code_fingerprint_memo


# ----------------------------------------------------------------------
# Job model.


@dataclass(frozen=True)
class SimJob:
    """One simulation request: a machine configuration applied to a trace.

    Jobs normally reference a suite trace by ``(trace_name, scale,
    seed)`` provenance so workers can re-derive it locally (trace
    loading is memoized per process) and results are cacheable. A job
    may instead embed an explicit :class:`Trace` — such jobs still run
    (in parallel too; the trace is pickled to the worker) but bypass
    the on-disk cache because their content has no stable identity.
    """

    config: MachineConfig
    trace_name: str = ""
    scale: float = 1.0
    seed: int | None = None
    trace: Trace | None = None
    label: str = ""

    @classmethod
    def for_trace(
        cls, trace: Trace, config: MachineConfig, label: str = ""
    ) -> "SimJob":
        """Build a job from an in-memory trace, using provenance if any."""
        provenance = getattr(trace, "provenance", None)
        name = label or trace.name
        if provenance is not None:
            kernel, scale, seed = provenance
            return cls(
                config=config, trace_name=kernel, scale=scale, seed=seed,
                label=name,
            )
        return cls(config=config, trace_name=trace.name, trace=trace,
                   label=name)

    @property
    def cacheable(self) -> bool:
        """True when the job's result can live in the on-disk cache."""
        return self.trace is None and bool(self.trace_name)

    def describe(self) -> str:
        scheme = self.config.storage
        return f"{self.label or self.trace_name or '<trace>'}[{scheme}]"

    def resolve_trace(self) -> Trace:
        """The trace to simulate (loading by provenance if needed)."""
        if self.trace is not None:
            return self.trace
        return load_trace(self.trace_name, scale=self.scale, seed=self.seed)

    def fault_identity(self) -> str:
        """Stable identity for fault-plan decisions (same in any process)."""
        return (
            f"{self.trace_name or self.label or 'trace'}"
            f":{float(self.scale)}:{self.seed}"
            f":{self.config.config_hash()}"
        )

    def cache_key(self) -> str:
        """Content-addressed identity of this job's result."""
        payload = json.dumps(
            {
                "cache_schema": CACHE_SCHEMA_VERSION,
                "stats_schema": STATS_SCHEMA_VERSION,
                "code": _code_fingerprint(),
                "config": self.config.config_key(),
                "trace": [self.trace_name, float(self.scale), self.seed],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class JobFailure:
    """Captured failure of one job (kept instead of a SimStats).

    ``kind`` distinguishes how the final attempt died: ``error``
    (exception in the simulator), ``timeout`` (wall-clock budget),
    ``crash`` (worker process died), ``invalid`` (result rejected by
    the oracle's conservation invariants).
    """

    job: SimJob
    error: str
    kind: str = "error"

    def __bool__(self) -> bool:  # failed jobs are falsy result slots
        return False


def _sweep_key(keys: Sequence[str | None]) -> str:
    """Stable identity of a sweep: the set of job cache keys it covers."""
    material = json.dumps(sorted(key for key in keys if key is not None))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Worker shim.


def _raise_job_timeout(signum, frame):  # pragma: no cover - signal path
    raise JobTimeoutError("job exceeded its wall-clock budget")


def _alarm_usable() -> bool:
    """SIGALRM timeouts need a main thread on a POSIX platform."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _execute_job(
    job: SimJob,
    attempt: int = 0,
    timeout: float = 0.0,
    allow_crash: bool = False,
    trace: Trace | None = None,
    branch_plan: list[int] | None = None,
) -> tuple[str, object, float, int | None]:
    """Run one job; never raises (worker-side error capture).

    Returns ``(status, payload, wall_seconds, worker_pid)`` where
    *status* is ``ok`` (payload = SimStats), ``timeout``, ``crash``
    (an injected fault on the in-process path), or ``error`` (payload
    = traceback text). Runs in worker processes, so it must stay
    module-level (picklable by reference). *attempt* is the engine's
    retry counter — it feeds the fault plan so injected faults are
    deterministic across processes and a retried attempt can
    deterministically succeed.

    With *timeout* > 0 a ``SIGALRM`` one-shot timer bounds the job's
    wall clock; *allow_crash* lets the ``crash`` fault site call
    ``os._exit`` (pool workers only — in-process execution raises
    instead, so the host survives). *trace* and *branch_plan* let a
    batch (:func:`_execute_batch`) hand every member the shared
    pre-resolved trace and branch-prediction plan; both are
    timing-neutral (the plan replays the predictors' own decisions).
    """
    start = time.perf_counter()
    pid = os.getpid()
    try:
        identity = job.fault_identity() if faults.enabled() else ""
        armed = False
        previous = None
        try:
            if timeout > 0 and _alarm_usable():
                previous = signal.signal(signal.SIGALRM, _raise_job_timeout)
                signal.setitimer(signal.ITIMER_REAL, timeout)
                armed = True
            faults.crash_point(identity, attempt, allow_exit=allow_crash)
            faults.hang_point(identity, attempt)
            if trace is None:
                trace = job.resolve_trace()
            if branch_plan is not None:
                stats = Pipeline(
                    trace, job.config, branch_plan=branch_plan,
                ).run()
            else:
                stats = Pipeline(trace, job.config).run()
            if faults.fire("bad_stats", identity, attempt):
                stats.retired = -stats.retired - 1
            return ("ok", stats, time.perf_counter() - start, pid)
        finally:
            if armed:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous)
    except JobTimeoutError:
        return (
            "timeout",
            f"exceeded {timeout:.3f}s wall-clock budget "
            f"(attempt {attempt})",
            time.perf_counter() - start, pid,
        )
    except faults.InjectedFault:
        return (
            "crash", traceback.format_exc(), time.perf_counter() - start, pid,
        )
    except Exception:
        return (
            "error", traceback.format_exc(), time.perf_counter() - start, pid,
        )


def _execute_batch(
    jobs: Sequence[SimJob],
    attempts: Sequence[int],
    timeout: float = 0.0,
    allow_crash: bool = False,
) -> list[tuple[str, object, float, int | None]]:
    """Run a shared-frontend batch of jobs in this process.

    All members reference the same trace and agree on every non-storage
    configuration field (:meth:`MachineConfig.frontend_key`), so the
    trace is resolved once and the branch-prediction plan
    (:func:`repro.frontend.fetch.branch_plan_for`) is computed once;
    each member then simulates with its own storage scheme. Failures
    are captured per member — a bad trace fails every member with the
    same traceback, a bad simulation fails only its own slot. Runs in
    worker processes; must stay module-level (picklable by reference).
    """
    trace = None
    plan = None
    setup_error: str | None = None
    try:
        trace = jobs[0].resolve_trace()
        plan = branch_plan_for(trace)
    except Exception:
        setup_error = traceback.format_exc()
    outcomes = []
    for job, attempt in zip(jobs, attempts):
        if setup_error is not None:
            outcomes.append(("error", setup_error, 0.0, os.getpid()))
            continue
        outcomes.append(_execute_job(
            job, attempt, timeout, allow_crash,
            trace=trace, branch_plan=plan,
        ))
    return outcomes


# ----------------------------------------------------------------------
# Observability counters.


#: Snapshot keys that are distribution summaries rather than additive
#: counters; :meth:`EngineCounters.since` reports their current value.
_NON_ADDITIVE = ("max_job_seconds", "job_seconds_p50", "job_seconds_p95")


@dataclass
class EngineCounters:
    """Cumulative engine activity, cheap to snapshot and diff."""

    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: int = 0
    retries: int = 0
    timeouts: int = 0
    resumed: int = 0
    parallel_jobs: int = 0
    serial_fallbacks: int = 0
    job_seconds: float = 0.0
    max_job_seconds: float = 0.0
    engine_seconds: float = 0.0
    traces_generated: int = 0
    traces_loaded: int = 0
    trace_gen_seconds: float = 0.0
    trace_load_seconds: float = 0.0
    #: Distribution of executed-job wall-clock (capped sample set).
    job_wall: Histogram = field(default_factory=Histogram, repr=False)

    def record_job(self, wall: float) -> None:
        """Fold one executed job's wall-clock into the aggregates."""
        self.executed += 1
        self.job_seconds += wall
        if wall > self.max_job_seconds:
            self.max_job_seconds = wall
        self.job_wall.observe(wall)

    def snapshot(self) -> dict[str, float]:
        return {
            "jobs": self.jobs,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "errors": self.errors,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "resumed": self.resumed,
            "parallel_jobs": self.parallel_jobs,
            "serial_fallbacks": self.serial_fallbacks,
            "job_seconds": round(self.job_seconds, 6),
            "max_job_seconds": round(self.max_job_seconds, 6),
            "job_seconds_p50": round(self.job_wall.percentile(0.50), 6),
            "job_seconds_p95": round(self.job_wall.percentile(0.95), 6),
            "engine_seconds": round(self.engine_seconds, 6),
            "traces_generated": self.traces_generated,
            "traces_loaded": self.traces_loaded,
            "trace_gen_seconds": round(self.trace_gen_seconds, 6),
            "trace_load_seconds": round(self.trace_load_seconds, 6),
        }

    def since(self, before: dict[str, float]) -> dict[str, float]:
        """Delta of the additive counters since a snapshot.

        ``max_job_seconds`` and the wall-clock percentiles are
        distribution summaries, not additive, so the delta reports
        their current value.
        """
        now = self.snapshot()
        delta = {
            key: round(now[key] - before.get(key, 0), 6)
            for key in now
            if key not in _NON_ADDITIVE
        }
        for key in _NON_ADDITIVE:
            delta[key] = now[key]
        return delta


# ----------------------------------------------------------------------
# The engine.


class ExperimentEngine:
    """Executes :class:`SimJob` batches with fan-out and memoization.

    Args:
        workers: default worker count for :meth:`run`; ``None`` reads
            ``REPRO_JOBS`` (unset = 1, i.e. serial), ``0`` means one
            worker per CPU.
        cache_dir: on-disk result cache location; ``None`` reads
            ``REPRO_CACHE_DIR`` (default ``.repro-cache``).
        use_cache: disable to always re-simulate; ``None`` reads
            ``REPRO_CACHE`` (anything but ``0``/``false`` enables).
        job_timeout: per-job wall-clock budget in seconds; ``None``
            reads ``REPRO_JOB_TIMEOUT`` (default 0 = unbounded).
        retries: bounded retry count for failed attempts; ``None``
            reads ``REPRO_JOB_RETRIES`` (default 0 = fail fast).
        retry_backoff: base delay between retry rounds; ``None`` reads
            ``REPRO_RETRY_BACKOFF`` (default 0.05s, doubling per round,
            capped at :data:`MAX_RETRY_BACKOFF`).
        resume: count cache hits recorded as completed in the manifest
            as resumed jobs; ``None`` reads ``REPRO_RESUME``.
        batching: share one trace decode, ``trace.analysis()`` pass,
            and branch-prediction plan across jobs that differ only in
            register-storage configuration (equal
            :meth:`MachineConfig.frontend_key` on the same trace) by
            running each such group on one worker; ``None`` reads
            ``REPRO_SWEEP_BATCH`` (default on). Automatically disabled
            while fault injection is armed so the fault plan's per-job
            crash/hang sites keep their one-job blast radius.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool | None = None,
        job_timeout: float | None = None,
        retries: int | None = None,
        retry_backoff: float | None = None,
        resume: bool | None = None,
        batching: bool | None = None,
    ) -> None:
        if workers is None:
            workers = _parse_jobs(os.environ.get("REPRO_JOBS"))
        if workers <= 0:  # 0 / "auto" = one worker per CPU
            workers = os.cpu_count() or 1
        self.workers = workers
        if use_cache is None:
            use_cache = os.environ.get("REPRO_CACHE", "1").lower() not in (
                "0", "false", "off",
            )
        self.use_cache = use_cache
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
        self.cache_dir = Path(cache_dir)
        if job_timeout is None:
            job_timeout = _parse_float(
                os.environ.get("REPRO_JOB_TIMEOUT"), 0.0,
            )
        self.job_timeout = max(0.0, job_timeout)
        if retries is None:
            retries = _parse_int(os.environ.get("REPRO_JOB_RETRIES"), 0)
        self.retries = max(0, retries)
        if retry_backoff is None:
            retry_backoff = _parse_float(
                os.environ.get("REPRO_RETRY_BACKOFF"), 0.05,
            )
        self.retry_backoff = max(0.0, retry_backoff)
        if resume is None:
            resume = os.environ.get("REPRO_RESUME", "").lower() in (
                "1", "true", "on", "yes",
            )
        self.resume = bool(resume)
        if batching is None:
            batching = os.environ.get(
                "REPRO_SWEEP_BATCH", "1",
            ).lower() not in ("0", "false", "off")
        self.batching = bool(batching)
        self.counters = EngineCounters()
        #: Every JobFailure this engine has returned (graceful-degradation
        #: consumers read the tail to report holes).
        self.failure_log: list[JobFailure] = []
        manifest_path = manifest_path_for(self.cache_dir)
        self.manifest: ManifestWriter | None = (
            None if manifest_path is None else ManifestWriter(manifest_path)
        )

    # ------------------------------------------------------------------
    # Public API.

    def run(
        self,
        jobs: Iterable[SimJob],
        *,
        workers: int | None = None,
        raise_on_error: bool = True,
    ) -> list[SimStats | JobFailure]:
        """Execute *jobs*, returning results in job order.

        Cached results are loaded without simulating; the remainder run
        serially or across a process pool, with per-job timeouts and
        bounded retries when configured. Results and manifest records
        are published incrementally as jobs finish, so an interrupted
        run leaves a resumable trail (re-running skips everything
        already cached). With ``raise_on_error`` (the default) the
        first captured failure re-raises as :class:`EngineError`;
        otherwise failed slots hold falsy :class:`JobFailure` records
        and the sweep degrades to partial results.
        """
        start = time.perf_counter()
        jobs = list(jobs)
        counters = self.counters
        counters.jobs += len(jobs)
        results: list[SimStats | JobFailure | None] = [None] * len(jobs)
        run_id = uuid.uuid4().hex[:12]
        keys = [job.cache_key() if job.cacheable else None for job in jobs]
        sweep = _sweep_key(keys)

        resumable: frozenset[str] = frozenset()
        if self.resume and self.manifest is not None:
            resumable = completed_job_keys(
                read_manifest(self.manifest.path),
            )

        prelude: list[dict] = []
        pending: list[int] = []
        for index, job in enumerate(jobs):
            key = keys[index]
            if self.use_cache and key is not None:
                cached = self._cache_load(job, key=key)
                if cached is not None:
                    counters.cache_hits += 1
                    if key in resumable:
                        counters.resumed += 1
                    results[index] = cached
                    if self.manifest is not None:
                        prelude.append(
                            self._manifest_record(
                                run_id, sweep, job, key, cached=True,
                                status="ok", wall=0.0, worker=None,
                            )
                        )
                    continue
                counters.cache_misses += 1
            pending.append(index)

        workers = self._resolve_workers(workers, len(pending)) if pending \
            else 0
        _log.info(
            "run %s: %d jobs (%d cached, %d resumed, %d to execute, "
            "%d workers)",
            run_id, len(jobs), len(jobs) - len(pending),
            counters.resumed, len(pending), workers,
        )
        if self.manifest is not None and jobs:
            prelude.append(self._checkpoint_record(
                run_id, sweep, "start", jobs=len(jobs),
                cached=len(jobs) - len(pending), pending=len(pending),
            ))
            self.manifest.append_all(prelude)

        failures: list[JobFailure] = []
        run_wall = 0.0
        if pending:
            trace_before = trace_counters().snapshot()
            pending_jobs = [jobs[index] for index in pending]
            self._warm_traces(pending_jobs)
            hit_rate = (
                f"{counters.cache_hits}/{counters.jobs}"
                if counters.jobs else "0/0"
            )
            progress = ProgressReporter(
                total=len(pending), logger=_log,
                label=f"run {run_id}",
            )
            try:
                recovery = self._execute_with_recovery(
                    pending_jobs, workers, progress,
                )
                for local_index, outcome in recovery:
                    index = pending[local_index]
                    job = jobs[index]
                    status, payload, wall, worker = outcome
                    counters.record_job(wall)
                    run_wall += wall
                    if status == "ok":
                        if self.use_cache and keys[index] is not None:
                            self._cache_store(job, payload, key=keys[index])
                        results[index] = payload
                        error = None
                    else:
                        counters.errors += 1
                        failure = JobFailure(
                            job=job, error=payload, kind=status,
                        )
                        failures.append(failure)
                        results[index] = failure
                        error = payload
                        _log.warning(
                            "run %s: job %s failed (%s) on worker %s",
                            run_id, job.describe(), status, worker,
                        )
                    if self.manifest is not None:
                        self.manifest.append(
                            self._manifest_record(
                                run_id, sweep, job, keys[index],
                                cached=False, status=status, wall=wall,
                                worker=worker, error=error,
                            )
                        )
            except BaseException:
                # SIGINT / crash mid-sweep: record where we got to so a
                # resumed run can prove it only re-ran the missing jobs.
                counters.engine_seconds += time.perf_counter() - start
                if self.manifest is not None:
                    self.manifest.append(self._checkpoint_record(
                        run_id, sweep, "interrupted", jobs=len(jobs),
                        done=sum(
                            1 for slot in results if slot is not None
                        ),
                    ))
                raise
            trace_delta = trace_counters().since(trace_before)
            counters.traces_generated += int(trace_delta["traces_generated"])
            counters.traces_loaded += int(trace_delta["traces_loaded"])
            counters.trace_gen_seconds += trace_delta["trace_gen_seconds"]
            counters.trace_load_seconds += trace_delta["trace_load_seconds"]
            _log.info(
                "run %s: done, cumulative cache hits %s, errors %d",
                run_id, hit_rate, len(failures),
            )

        engine_wall = time.perf_counter() - start
        counters.engine_seconds += engine_wall
        if self.manifest is not None and jobs:
            self.manifest.append_all([
                {
                    "kind": "run",
                    "run": run_id,
                    "ts": round(time.time(), 3),
                    "jobs": len(jobs),
                    "cached": len(jobs) - len(pending),
                    "executed": len(pending),
                    "errors": len(failures),
                    "workers": self.workers,
                    "engine_seconds": round(engine_wall, 6),
                },
                self._checkpoint_record(
                    run_id, sweep, "complete", jobs=len(jobs),
                    errors=len(failures),
                ),
            ])
        self._publish_metrics(
            len(jobs), len(pending), len(failures), run_wall,
        )
        self.failure_log.extend(failures)
        if failures and raise_on_error:
            first = failures[0]
            raise EngineError(
                f"{len(failures)} of {len(jobs)} jobs failed; first: "
                f"{first.job.describe()}\n{first.error}"
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Observability: manifests and metrics.

    def _manifest_record(
        self,
        run_id: str,
        sweep: str,
        job: SimJob,
        key: str | None,
        *,
        cached: bool,
        status: str,
        wall: float,
        worker: int | None,
        error: str | None = None,
    ) -> dict:
        record = {
            "kind": "job",
            "run": run_id,
            "sweep": sweep,
            "ts": round(time.time(), 3),
            "job": job.describe(),
            "trace": [job.trace_name, float(job.scale), job.seed],
            "config_hash": job.config.config_hash(),
            "key": key,
            "cached": cached,
            "status": status,
            "wall": round(wall, 6),
            "worker": worker,
        }
        if error is not None:
            record["error"] = error
        return record

    def _checkpoint_record(
        self, run_id: str, sweep: str, event: str, **extra,
    ) -> dict:
        record = {
            "kind": "checkpoint",
            "run": run_id,
            "sweep": sweep,
            "event": event,
            "ts": round(time.time(), 3),
            "workers": self.workers,
        }
        record.update(extra)
        return record

    def _publish_metrics(
        self, jobs: int, executed: int, errors: int, run_wall: float,
    ) -> None:
        """Fold this run's activity into the process-wide registry."""
        registry = get_metrics()
        if not registry.enabled or not jobs:
            return
        registry.publish("engine", {
            "jobs": jobs,
            "executed": executed,
            "cache_hits": jobs - executed,
            "errors": errors,
            "retries": self.counters.retries,
            "timeouts": self.counters.timeouts,
            "job_seconds": round(run_wall, 6),
        })

    def run_grid(
        self,
        traces: dict[str, Trace],
        config: MachineConfig,
        *,
        workers: int | None = None,
        raise_on_error: bool = True,
    ) -> dict[str, SimStats | JobFailure]:
        """Simulate every named trace under *config* (cached, parallel).

        With ``raise_on_error=False`` failed names map to falsy
        :class:`JobFailure` holes instead of the call raising.
        """
        jobs = [
            SimJob.for_trace(trace, config, label=name)
            for name, trace in traces.items()
        ]
        stats = self.run(jobs, workers=workers,
                         raise_on_error=raise_on_error)
        return dict(zip(traces.keys(), stats))

    # ------------------------------------------------------------------
    # Execution strategies.

    def _warm_traces(self, jobs: Sequence[SimJob]) -> None:
        """Ensure the on-disk trace cache covers *jobs* before fan-out.

        Generating each distinct trace once here (and packing it to
        disk) means cold worker processes deserialize instead of
        re-executing the VM. Warming is best-effort: a workload that
        cannot be cached simply regenerates in the worker, and any
        warming failure surfaces later as a per-job error with a full
        traceback.
        """
        seen: set[tuple[str, float, int | None]] = set()
        for job in jobs:
            if not job.cacheable:
                continue
            identity = (job.trace_name, float(job.scale), job.seed)
            if identity in seen:
                continue
            seen.add(identity)
            try:
                warm_trace_cache(job.trace_name, scale=job.scale,
                                 seed=job.seed)
            except Exception:
                pass

    def _resolve_workers(self, workers: int | None, pending: int) -> int:
        if workers is None:
            workers = self.workers
        if workers == 0:
            workers = os.cpu_count() or 1
        return max(1, min(workers, pending))

    def _execute_with_recovery(
        self,
        jobs: Sequence[SimJob],
        workers: int,
        progress: ProgressReporter | None = None,
    ) -> Iterator[tuple[int, tuple[str, object, float, int | None]]]:
        """Yield ``(index, final_outcome)`` per job, retrying failures.

        Jobs run in rounds: every job that did not reach a valid ``ok``
        outcome — error, timeout, crashed worker, or a result rejected
        by the oracle — is retried in the next round (fresh pool, so a
        poisoned pool costs one round), up to :attr:`retries` extra
        attempts with exponential backoff between rounds. Outcomes are
        yielded as soon as they are final, so the caller can cache and
        checkpoint incrementally.
        """
        counters = self.counters
        remaining = list(range(len(jobs)))
        attempts = [0] * len(jobs)
        round_no = 0
        while remaining:
            if round_no > 0:
                delay = min(
                    self.retry_backoff * (2 ** (round_no - 1)),
                    MAX_RETRY_BACKOFF,
                )
                if delay > 0:
                    time.sleep(delay)
            retry: list[int] = []
            round_outcomes = self._run_round(
                [jobs[i] for i in remaining],
                [attempts[i] for i in remaining],
                workers, progress,
            )
            for local_index, outcome in round_outcomes:
                index = remaining[local_index]
                attempts[index] += 1
                status, payload, wall, worker = outcome
                if status == "timeout":
                    counters.timeouts += 1
                if status == "ok":
                    problem = self._validate_result(payload)
                    if problem is not None:
                        status = "invalid"
                        outcome = ("invalid", problem, wall, worker)
                if status != "ok" and attempts[index] <= self.retries:
                    counters.retries += 1
                    _log.warning(
                        "job %s attempt %d ended in %s; retrying",
                        jobs[index].describe(), attempts[index], status,
                    )
                    retry.append(index)
                    continue
                yield index, outcome
            remaining = retry
            round_no += 1

    def _validate_result(self, stats: object) -> str | None:
        """Reject a result the oracle or the serializer cannot vouch for.

        Runs on every freshly executed result *before* it is cached or
        returned — the fix for results that used to be published even
        when post-processing later raised.
        """
        if not isinstance(stats, SimStats):
            return f"worker returned {type(stats).__name__}, not SimStats"
        violations = oracle.validate_stats(stats)
        if violations:
            return "result failed invariants: " + "; ".join(violations)
        try:
            SimStats.from_dict(stats.to_dict())
        except Exception:
            return (
                "result failed serialization round-trip:\n"
                + traceback.format_exc()
            )
        return None

    def _run_round(
        self,
        jobs: Sequence[SimJob],
        attempts: Sequence[int],
        workers: int,
        progress: ProgressReporter | None = None,
    ) -> Iterator[tuple[int, tuple[str, object, float, int | None]]]:
        """Yield ``(local_index, outcome)`` as this round's jobs finish.

        Streaming (rather than returning the round as a batch) is what
        makes a mid-round interrupt resumable: every finished job has
        already been folded into results, cache, and manifest by the
        consumer. If the parallel path dies after partially yielding,
        only the jobs it never reported are re-run serially.
        """
        done = [False] * len(jobs)
        if workers > 1 and len(jobs) > 1:
            try:
                for index, outcome in self._round_parallel(
                    jobs, attempts, workers, progress,
                ):
                    done[index] = True
                    yield index, outcome
                return
            except (OSError, RuntimeError, pickle.PicklingError, EOFError):
                # Pool creation or transport failed (sandboxed platform,
                # broken worker, unpicklable payload): fall back serial.
                self.counters.serial_fallbacks += 1
        pending = [i for i in range(len(jobs)) if not done[i]]
        for local, outcome in self._round_serial(
            [jobs[i] for i in pending],
            [attempts[i] for i in pending], progress,
        ):
            yield pending[local], outcome

    def _batching_active(self) -> bool:
        """Shared-frontend batching, unless fault injection is armed."""
        return self.batching and not faults.enabled()

    @staticmethod
    def _batch_groups(jobs: Sequence[SimJob]) -> list[list[int]]:
        """Partition job indices into shared-frontend groups.

        Jobs land in one group when they reference the same trace and
        their configurations agree on every non-storage field
        (:meth:`MachineConfig.frontend_key`) — the precondition for
        sharing a resolved trace and branch plan. Group order follows
        first appearance, members keep submission order, and a group of
        one degenerates to the plain per-job path.
        """
        groups: dict[object, list[int]] = {}
        for index, job in enumerate(jobs):
            if job.trace is not None:
                tkey: tuple = ("obj", id(job.trace))
            else:
                tkey = ("name", job.trace_name, float(job.scale), job.seed)
            key = (tkey, job.config.frontend_key())
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [index]
            else:
                bucket.append(index)
        return list(groups.values())

    def _round_serial(
        self,
        jobs: Sequence[SimJob],
        attempts: Sequence[int],
        progress: ProgressReporter | None = None,
    ) -> Iterator[tuple[int, tuple[str, object, float, int | None]]]:
        if self._batching_active():
            for group in self._batch_groups(jobs):
                if len(group) == 1:
                    index = group[0]
                    outcome = _execute_job(
                        jobs[index], attempts[index], self.job_timeout,
                        False,
                    )
                    if progress is not None:
                        progress.update()
                    yield index, outcome
                    continue
                outcomes = _execute_batch(
                    [jobs[i] for i in group],
                    [attempts[i] for i in group],
                    self.job_timeout, False,
                )
                for index, outcome in zip(group, outcomes):
                    if progress is not None:
                        progress.update()
                    yield index, outcome
            return
        for index, (job, attempt) in enumerate(zip(jobs, attempts)):
            if faults.enabled():
                faults.interrupt_point(job.fault_identity(), attempt)
            outcome = _execute_job(job, attempt, self.job_timeout, False)
            if progress is not None:
                progress.update()
            yield index, outcome

    def _round_parallel(
        self,
        jobs: Sequence[SimJob],
        attempts: Sequence[int],
        workers: int,
        progress: ProgressReporter | None = None,
    ) -> Iterator[tuple[int, tuple[str, object, float, int | None]]]:
        reported: set[int] = set()
        timeout = self.job_timeout
        if self._batching_active():
            groups = self._batch_groups(jobs)
        else:
            groups = [[i] for i in range(len(jobs))]
        # Engine-side watchdog backstop for workers so far gone that
        # their own SIGALRM cannot fire: enough wall clock for every
        # queued job to use its full budget, plus slack. A batched
        # submission unit holds up to max_group member jobs, each with
        # its own SIGALRM budget, so the bound scales accordingly.
        watchdog = None
        if timeout > 0:
            waves = -(-len(groups) // workers)
            max_group = max(len(group) for group in groups)
            watchdog = timeout * (waves * max_group + 1) + 5.0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for group in groups:
                if len(group) == 1:
                    index = group[0]
                    future = pool.submit(
                        _execute_job, jobs[index], attempts[index],
                        timeout, True,
                    )
                else:
                    future = pool.submit(
                        _execute_batch,
                        [jobs[i] for i in group],
                        [attempts[i] for i in group],
                        timeout, True,
                    )
                futures[future] = group
            try:
                # Yield in completion order so progress (and its ETA)
                # is live; the caller re-maps indices.
                for future in as_completed(futures, timeout=watchdog):
                    group = futures[future]
                    try:
                        result = future.result()
                        outcomes = (
                            [result] if len(group) == 1 else list(result)
                        )
                    except Exception:
                        # BrokenProcessPool and friends: the worker died
                        # (e.g. an injected os._exit). Captured per
                        # member; the retry round gets a fresh pool.
                        outcomes = [
                            ("crash", traceback.format_exc(), 0.0, None)
                        ] * len(group)
                    for index, outcome in zip(group, outcomes):
                        if progress is not None:
                            progress.update()
                        reported.add(index)
                        self.counters.parallel_jobs += 1
                        yield index, outcome
            except FuturesTimeout:
                self._terminate_pool(pool)
                for future, group in futures.items():
                    future.cancel()
                    for index in group:
                        if index not in reported:
                            reported.add(index)
                            self.counters.parallel_jobs += 1
                            yield index, (
                                "timeout",
                                f"no result within the {watchdog:.1f}s "
                                "watchdog; worker terminated",
                                0.0, None,
                            )

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill a pool's workers so ``shutdown`` cannot wait forever."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # On-disk result cache.

    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key[2:]}.json"

    def _cache_load(self, job: SimJob, key: str | None = None) -> \
            SimStats | None:
        """Load a cached result; any corruption or staleness is a miss."""
        if key is None:
            key = job.cache_key()
        path = self._cache_path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("key") != key:
            return None
        try:
            return SimStats.from_dict(data["stats"])
        except (KeyError, TypeError, ValueError):
            return None

    def _cache_store(
        self, job: SimJob, stats: SimStats, key: str | None = None,
    ) -> None:
        if key is None:
            key = job.cache_key()
        path = self._cache_path(key)
        payload = {
            "key": key,
            "job": {
                "trace": job.trace_name,
                "scale": float(job.scale),
                "seed": job.seed,
                "scheme": job.config.storage,
                "config_hash": job.config.config_hash(),
            },
            "stats": stats.to_dict(),
        }
        text = json.dumps(payload)
        if faults.enabled():
            text = faults.corrupt_text("corrupt_cache", key, text)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # The tmp name must be unique per writer — pid separates
            # concurrent sweep processes, the counter separates threads
            # within one — so no two writers ever interleave into the
            # same tmp file; os.replace then publishes atomically and a
            # reader can never observe a torn entry.
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{next(_tmp_counter)}"
            )
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # A read-only or full filesystem never fails the experiment.
            pass


# ----------------------------------------------------------------------
# Shared engine instance.

_shared_engine: ExperimentEngine | None = None


def _parse_jobs(raw: str | None) -> int:
    if not raw:
        return 1
    if raw.strip().lower() == "auto":
        return 0
    try:
        return int(raw)
    except ValueError:
        return 1


def _parse_float(raw: str | None, default: float) -> float:
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _parse_int(raw: str | None, default: int) -> int:
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def get_engine() -> ExperimentEngine:
    """The process-wide engine used by sweeps and experiments."""
    global _shared_engine
    if _shared_engine is None:
        _shared_engine = ExperimentEngine()
    return _shared_engine


def configure(
    workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool | None = None,
    job_timeout: float | None = None,
    retries: int | None = None,
    retry_backoff: float | None = None,
    resume: bool | None = None,
    batching: bool | None = None,
) -> ExperimentEngine:
    """Replace the shared engine (tests, benchmarks, notebooks).

    Arguments left as ``None`` fall back to the environment knobs, so
    ``configure()`` with no arguments resets to the default setup.
    """
    global _shared_engine
    _shared_engine = ExperimentEngine(
        workers=workers, cache_dir=cache_dir, use_cache=use_cache,
        job_timeout=job_timeout, retries=retries,
        retry_backoff=retry_backoff, resume=resume, batching=batching,
    )
    return _shared_engine
