"""repro — reproduction of "Use-Based Register Caching with Decoupled
Indexing" (Butts & Sohi, ISCA 2004).

Public API quick tour::

    from repro import MachineConfig, simulate_benchmark

    stats = simulate_benchmark("compress", MachineConfig())
    print(stats.ipc, stats.cache.miss_rate)

See README.md for the architecture overview and DESIGN.md for the
per-experiment index.
"""

from repro.core import (
    MachineConfig,
    Pipeline,
    SimStats,
    lru_config,
    mean_ipc,
    monolithic_config,
    non_bypass_config,
    simulate,
    simulate_benchmark,
    simulate_suite,
    two_level_config,
    use_based_config,
)
from repro.errors import ReproError
from repro.isa import Instruction, Opcode, Program, assemble
from repro.vm import Machine, Trace, run_program
from repro.workloads import DEFAULT_SUITE, SHORT_SUITE, load_suite, load_trace

__version__ = "0.1.0"

__all__ = [
    "DEFAULT_SUITE",
    "Instruction",
    "Machine",
    "MachineConfig",
    "Opcode",
    "Pipeline",
    "Program",
    "ReproError",
    "SHORT_SUITE",
    "SimStats",
    "Trace",
    "assemble",
    "load_suite",
    "load_trace",
    "lru_config",
    "mean_ipc",
    "monolithic_config",
    "non_bypass_config",
    "run_program",
    "simulate",
    "simulate_benchmark",
    "simulate_suite",
    "two_level_config",
    "use_based_config",
    "__version__",
]
