"""SPECint-like synthetic kernels.

The paper evaluates on the SPEC 2000 integer suite compiled for Alpha.
Those binaries (and an Alpha front end) are unavailable here, so each
kernel below is a hand-written assembly program chosen to reproduce the
behaviours SPECint exhibits and that register caching is sensitive to:

* mostly single-use register values with short live ranges,
* a minority of high-use values (base pointers, loop bounds, preloaded
  pattern words) that benefit from pinning,
* *many simultaneously live values*: kernels run 2-4 independent strands
  per loop iteration so that, with a 128-entry window, tens of register
  values are live at once (Figure 2 of the paper reports a 90th
  percentile of ~56 live values on an 8-wide machine),
* dependence chains through loads (pointer chasing),
* data-dependent and indirect branches (interpreter dispatch),
* stores that consume values straight off the bypass network.

Every builder takes a ``scale`` parameter (>= 0.1) that multiplies the
dynamic instruction count, and a ``seed`` so data sets are reproducible.
Builders return assembly text; :mod:`repro.workloads.suite` assembles and
executes them.
"""

from __future__ import annotations

import random

# Data-memory layout bases (word addresses). Spread across distinct
# regions so data-cache behaviour is not degenerate.
_BASE_A = 0x1000
_BASE_B = 0x9000
_BASE_C = 0x11000
_BASE_D = 0x19000


def _data_section(base: int, values: list[int], per_line: int = 16) -> str:
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start:start + per_line]
        lines.append(
            f".data {base + start}: " + " ".join(str(v) for v in chunk)
        )
    return "\n".join(lines)


def pointer_chase(scale: float = 1.0, seed: int = 7) -> str:
    """mcf-like linked-list traversal, three independent chains.

    Each chain is serialized through its load-use dependence; the three
    chains provide memory-level parallelism while keeping the live-value
    population in the range Figure 2 of the paper reports.
    """
    rng = random.Random(seed)
    num_nodes = max(256, int(6000 * scale))
    iterations = max(64, int(1800 * scale))
    order = list(range(num_nodes))
    rng.shuffle(order)
    next_ptr = [0] * num_nodes
    for position, node in enumerate(order):
        successor = order[(position + 1) % num_nodes]
        next_ptr[node] = _BASE_A + 2 * successor
    node_words: list[int] = []
    for i in range(num_nodes):
        node_words.append(next_ptr[i])
        node_words.append(rng.randrange(1, 1000))
    heads = [
        _BASE_A + 2 * order[(i * num_nodes) // 3] for i in range(3)
    ]
    return f"""
# pointer_chase: three parallel linked-list walks (mcf-like)
main:
    addi r16, r0, {heads[0]}
    addi r17, r0, {heads[1]}
    addi r18, r0, {heads[2]}
    addi r20, r0, 0
    addi r21, r0, 0
    addi r22, r0, 0
    addi r4, r0, {iterations}
loop:
    lw   r16, 0(r16)
    add  r20, r20, r16
    lw   r17, 0(r17)
    add  r21, r21, r17
    lw   r18, 0(r18)
    add  r22, r22, r18
    addi r4, r4, -1
    bne  r4, r0, loop
    add  r5, r20, r21
    add  r5, r5, r22
    out  r5
    halt
{_data_section(_BASE_A, node_words)}
"""


def compress(scale: float = 1.0, seed: int = 11) -> str:
    """bzip2-like byte-frequency counting, four positions per iteration,
    plus a run-length scan."""
    rng = random.Random(seed)
    length = max(128, int(2000 * scale))
    length -= length % 4
    data: list[int] = []
    while len(data) < length:
        byte = rng.randrange(16) if rng.random() < 0.7 else rng.randrange(256)
        data.extend([byte] * rng.randrange(1, 5))
    data = data[:length]
    # Eight lanes with disjoint register triples (r16..r39): wide ILP and
    # a long architectural-register reassignment distance, as compiled
    # SPEC code exhibits.
    body = []
    for lane in range(8):
        t1, t2, t3 = 16 + 3 * lane, 17 + 3 * lane, 18 + 3 * lane
        body.append(f"""
    addi r{t1}, r5, {lane}
    add  r{t1}, r2, r{t1}
    lw   r{t2}, 0(r{t1})
    andi r{t2}, r{t2}, 255
    add  r{t3}, r4, r{t2}
    lw   r{t2}, 0(r{t3})
    addi r{t2}, r{t2}, 1
    sw   r{t2}, 0(r{t3})""")
    freq_body = "".join(body)
    length -= length % 8
    return f"""
# compress: 8-lane frequency count + run detection (bzip2-like)
main:
    addi r2, r0, {_BASE_A}      # input buffer
    addi r3, r0, {length}
    addi r4, r0, {_BASE_B}      # frequency table
    addi r5, r0, 0              # index
freq:{freq_body}
    addi r5, r5, 8
    bne  r5, r3, freq
    # run-length scan
    addi r5, r0, 1
    lw   r10, 0(r2)             # previous byte
    addi r11, r0, 0             # run count
rle:
    add  r6, r2, r5
    lw   r7, 0(r6)
    beq  r7, r10, same
    addi r11, r11, 1
    mov  r10, r7
same:
    addi r5, r5, 1
    bne  r5, r3, rle
    out  r11
    halt
{_data_section(_BASE_A, data)}
"""


def hash_dict(scale: float = 1.0, seed: int = 13) -> str:
    """perlbmk-like hashing: four keys hashed in parallel, then four
    open-addressing probe loops the out-of-order core overlaps."""
    rng = random.Random(seed)
    num_keys = max(64, int(900 * scale))
    num_keys -= num_keys % 4
    table_bits = 13
    mask = (1 << table_bits) - 1
    pool = [rng.randrange(1, 1 << 30) for _ in range(max(8, num_keys // 3))]
    keys = [
        rng.choice(pool) if rng.random() < 0.4 else rng.randrange(1, 1 << 30)
        for _ in range(num_keys)
    ]
    lanes = []
    for lane in range(4):
        key_reg = 16 + lane          # key for this lane
        slot_reg = 20 + lane         # probe slot
        tmp = 24 + lane              # probe address / loaded key
        lanes.append(f"""
probe{lane}:
    add  r{tmp}, r4, r{slot_reg}
    lw   r{tmp}, 0(r{tmp})
    beq  r{tmp}, r0, insert{lane}
    beq  r{tmp}, r{key_reg}, found{lane}
    addi r{slot_reg}, r{slot_reg}, 1
    and  r{slot_reg}, r{slot_reg}, r13
    beq  r0, r0, probe{lane}
insert{lane}:
    add  r{tmp}, r4, r{slot_reg}
    sw   r{key_reg}, 0(r{tmp})
    beq  r0, r0, next{lane}
found{lane}:
    addi r14, r14, 1
next{lane}:""")
    probes = "".join(lanes)
    hash_body = []
    for lane in range(4):
        key_reg = 16 + lane
        slot_reg = 20 + lane
        hash_body.append(f"""
    addi r6, r5, {lane}
    add  r6, r2, r6
    lw   r{key_reg}, 0(r6)
    mul  r{slot_reg}, r{key_reg}, r12
    srli r{slot_reg}, r{slot_reg}, 11
    and  r{slot_reg}, r{slot_reg}, r13""")
    hashes = "".join(hash_body)
    return f"""
# hash_dict: 4-way multiplicative hash + linear probing (perlbmk-like)
main:
    addi r2, r0, {_BASE_A}      # key array
    addi r3, r0, {num_keys}
    addi r4, r0, {_BASE_C}      # hash table
    addi r5, r0, 0              # key index
    lui  r12, 0x9E37
    ori  r12, r12, 0x79B9       # hash multiplier
    addi r13, r0, {mask}
    addi r14, r0, 0             # hit counter
outer:{hashes}{probes}
    addi r5, r5, 4
    bne  r5, r3, outer
    out  r14
    halt
{_data_section(_BASE_A, keys)}
"""


def sort(scale: float = 1.0, seed: int = 17) -> str:
    """Insertion sort plus a 4-lane verification checksum."""
    rng = random.Random(seed)
    count = max(16, int(130 * (scale ** 0.5)))
    count -= count % 4
    values = [rng.randrange(0, 10_000) for _ in range(count)]
    return f"""
# sort: insertion sort + 4-lane ordered checksum
main:
    addi r2, r0, {_BASE_A}      # array
    addi r3, r0, {count}
    addi r5, r0, 1              # i
outer:
    add  r6, r2, r5
    lw   r7, 0(r6)              # key
    mov  r8, r5                 # j
inner:
    beq  r8, r0, place
    addi r9, r8, -1
    add  r10, r2, r9
    lw   r11, 0(r10)
    bge  r7, r11, place
    add  r12, r2, r8
    sw   r11, 0(r12)
    mov  r8, r9
    beq  r0, r0, inner
place:
    add  r12, r2, r8
    sw   r7, 0(r12)
    addi r5, r5, 1
    bne  r5, r3, outer
    # checksum: four independent lanes of element * index
    addi r5, r0, 0
    addi r16, r0, 0
    addi r17, r0, 0
    addi r18, r0, 0
    addi r19, r0, 0
check:
    add  r20, r2, r5
    lw   r21, 0(r20)
    mul  r22, r21, r5
    add  r16, r16, r22
    addi r24, r5, 1
    add  r25, r2, r24
    lw   r26, 0(r25)
    mul  r27, r26, r24
    add  r17, r17, r27
    addi r28, r5, 2
    add  r29, r2, r28
    lw   r30, 0(r29)
    mul  r31, r30, r28
    add  r18, r18, r31
    addi r32, r5, 3
    add  r33, r2, r32
    lw   r34, 0(r33)
    mul  r35, r34, r32
    add  r19, r19, r35
    addi r5, r5, 4
    bne  r5, r3, check
    add  r16, r16, r17
    add  r18, r18, r19
    add  r16, r16, r18
    out  r16
    halt
{_data_section(_BASE_A, values)}
"""


def graph_walk(scale: float = 1.0, seed: int = 19) -> str:
    """Sparse-graph neighbour accumulation in CSR form, two vertices per
    visit iteration (mcf/vpr-like)."""
    rng = random.Random(seed)
    num_vertices = max(128, int(2500 * scale))
    visits = max(64, int(700 * scale))
    visits -= visits % 2
    row_ptr = [0]
    col_idx: list[int] = []
    for _ in range(num_vertices):
        degree = rng.randrange(1, 7)
        col_idx.extend(rng.randrange(num_vertices) for _ in range(degree))
        row_ptr.append(len(col_idx))
    visit_order = [rng.randrange(num_vertices) for _ in range(visits)]
    return f"""
# graph_walk: CSR neighbour sweep, two vertices in flight
main:
    addi r2, r0, {_BASE_A}      # row_ptr
    addi r3, r0, {_BASE_B}      # col_idx
    addi r4, r0, {_BASE_C}      # visit order
    addi r5, r0, {visits}
    addi r6, r0, 0              # visit index
    addi r16, r0, 0             # accumulator A
    addi r26, r0, 0             # accumulator B
visit:
    add  r8, r4, r6
    lw   r9, 0(r8)              # vertex A
    lw   r19, 1(r8)             # vertex B
    add  r10, r2, r9
    lw   r11, 0(r10)            # A edge start
    lw   r12, 1(r10)            # A edge end
    add  r20, r2, r19
    lw   r21, 0(r20)            # B edge start
    lw   r22, 1(r20)            # B edge end
edgesA:
    bge  r11, r12, edgesB
    add  r13, r3, r11
    lw   r14, 0(r13)
    add  r16, r16, r14
    addi r11, r11, 1
    beq  r0, r0, edgesA
edgesB:
    bge  r21, r22, done_v
    add  r23, r3, r21
    lw   r24, 0(r23)
    add  r26, r26, r24
    addi r21, r21, 1
    beq  r0, r0, edgesB
done_v:
    addi r6, r6, 2
    bne  r6, r5, visit
    add  r16, r16, r26
    out  r16
    halt
{_data_section(_BASE_A, row_ptr)}
{_data_section(_BASE_B, col_idx)}
{_data_section(_BASE_C, visit_order)}
"""


def interp(scale: float = 1.0, seed: int = 23) -> str:
    """gcc/perl-like bytecode interpreter with indirect dispatch.

    A jump table of handler addresses is built at startup; each bytecode
    is dispatched through ``jalr``, exercising the indirect predictor.
    The interpreter's virtual registers (r20, r21, r24, r25) are
    high-degree-of-use values that live across many dispatches — prime
    pinning candidates.
    """
    rng = random.Random(seed)
    num_ops = max(64, int(1600 * scale))
    bytecode = [rng.randrange(8) for _ in range(num_ops)]
    scratch = [rng.randrange(1, 512) for _ in range(64)]
    return f"""
# interp: bytecode interpreter with jump-table dispatch
main:
    addi r16, r0, {_BASE_A}     # bytecode
    addi r17, r0, {num_ops}
    addi r18, r0, {_BASE_B}     # jump table
    addi r19, r0, 0             # instruction pointer
    addi r20, r0, 1             # virtual accumulator
    addi r21, r0, 3             # virtual register b
    addi r24, r0, 7             # virtual register c
    addi r25, r0, 11            # virtual register d
    addi r22, r0, {_BASE_C}     # scratch memory
    addi r23, r0, 63            # scratch mask
    # build the jump table
    addi r6, r0, h_add
    sw   r6, 0(r18)
    addi r6, r0, h_sub
    sw   r6, 1(r18)
    addi r6, r0, h_mul
    sw   r6, 2(r18)
    addi r6, r0, h_shift
    sw   r6, 3(r18)
    addi r6, r0, h_xor
    sw   r6, 4(r18)
    addi r6, r0, h_load
    sw   r6, 5(r18)
    addi r6, r0, h_store
    sw   r6, 6(r18)
    addi r6, r0, h_swap
    sw   r6, 7(r18)
dispatch:
    add  r6, r16, r19
    lw   r7, 0(r6)              # opcode
    add  r8, r18, r7
    lw   r9, 0(r8)              # handler address
    jalr r10, r9, 0             # indirect jump (link discarded)
h_add:
    add  r20, r20, r21
    add  r24, r24, r25
    beq  r0, r0, advance
h_sub:
    sub  r20, r20, r21
    sub  r25, r25, r24
    beq  r0, r0, advance
h_mul:
    mul  r20, r20, r21
    andi r20, r20, 0xffff
    add  r24, r24, r20
    beq  r0, r0, advance
h_shift:
    srli r20, r20, 1
    addi r20, r20, 17
    xor  r25, r25, r20
    beq  r0, r0, advance
h_xor:
    xor  r20, r20, r21
    xor  r24, r24, r25
    beq  r0, r0, advance
h_load:
    and  r11, r20, r23
    add  r12, r22, r11
    lw   r21, 0(r12)
    beq  r0, r0, advance
h_store:
    and  r11, r21, r23
    add  r12, r22, r11
    sw   r20, 0(r12)
    beq  r0, r0, advance
h_swap:
    mov  r11, r20
    mov  r20, r21
    mov  r21, r11
advance:
    addi r19, r19, 1
    bne  r19, r17, dispatch
    add  r20, r20, r24
    add  r20, r20, r25
    out  r20
    halt
{_data_section(_BASE_A, bytecode)}
{_data_section(_BASE_C, scratch)}
"""


def crc(scale: float = 1.0, seed: int = 29) -> str:
    """crafty-like bit manipulation: two branchless CRC streams.

    The inner loop is branch-free (mask trick), giving long shift/xor
    dependence chains interleaved across two independent streams.
    """
    rng = random.Random(seed)
    length = max(32, int(280 * scale))
    length -= length % 4
    words = [rng.randrange(0, 1 << 32) for _ in range(length)]
    quarter = length // 4
    # Four streams with disjoint register groups: crc in r6/r26/r36/r46,
    # temporaries in (r10-r12)/(r20-r22)/(r30-r32)/(r40-r42).
    streams = [(6, 10, 11, 12), (26, 20, 21, 22), (36, 30, 31, 32),
               (46, 40, 41, 42)]
    bit_step = "".join(f"""
    andi r{t0}, r{c}, 1
    sub  r{t1}, r0, r{t0}
    and  r{t2}, r5, r{t1}
    srli r{c}, r{c}, 1
    xor  r{c}, r{c}, r{t2}""" for c, t0, t1, t2 in streams)
    bits = bit_step * 4
    loads = "".join(f"""
    addi r{t0}, r4, {i * 10_000}
    add  r{t0}, r2, r{t0}
    lw   r{t1}, 0(r{t0})
    xor  r{c}, r{c}, r{t1}""" for i, (c, t0, t1, _t2) in enumerate(streams))
    inits = "".join(f"""
    addi r{c}, r0, -1""" for c, *_ in streams)
    data_sections = "\n".join(
        _data_section(_BASE_A + i * 10_000, words[i * quarter:(i + 1) * quarter])
        for i in range(4)
    )
    return f"""
# crc: four interleaved branchless CRC streams
main:
    addi r2, r0, {_BASE_A}
    addi r3, r0, {quarter}
    addi r4, r0, 0              # word index
    lui  r5, 0xEDB8
    ori  r5, r5, 0x8320         # polynomial{inits}
word:{loads}
    addi r9, r0, 2              # 2 x 4 unrolled bit steps
bit:{bits}
    addi r9, r9, -1
    bne  r9, r0, bit
    addi r4, r4, 1
    bne  r4, r3, word
    xor  r6, r6, r26
    xor  r36, r36, r46
    xor  r6, r6, r36
    out  r6
    halt
{data_sections}
"""


def strmatch(scale: float = 1.0, seed: int = 31) -> str:
    """vortex-like string matching: naive search, two positions per
    iteration, pattern preloaded into registers (high-use values)."""
    rng = random.Random(seed)
    text_len = max(128, int(1100 * scale))
    text_len -= text_len % 2
    pattern_len = 4
    alphabet = 6
    text = [rng.randrange(alphabet) for _ in range(text_len)]
    pattern = [rng.randrange(alphabet) for _ in range(pattern_len)]
    for _ in range(max(2, text_len // 50)):
        pos = rng.randrange(text_len - pattern_len - 2)
        text[pos:pos + pattern_len] = pattern
    limit = text_len - pattern_len
    limit -= limit % 4
    # Four search positions per iteration, each with a disjoint register
    # group, so many values are live and arch registers are reassigned
    # at SPEC-like distances.
    lanes = []
    for lane, base in enumerate((20, 26, 32, 38)):
        addr, t0, t1, t2, t3, off = (
            base, base + 1, base + 2, base + 3, base + 4, base + 5
        )
        lanes.append(f"""
    addi r{off}, r6, {lane}
    add  r{addr}, r2, r{off}
    lw   r{t0}, 0(r{addr})
    bne  r{t0}, r16, fail{lane}
    lw   r{t1}, 1(r{addr})
    bne  r{t1}, r17, fail{lane}
    lw   r{t2}, 2(r{addr})
    bne  r{t2}, r18, fail{lane}
    lw   r{t3}, 3(r{addr})
    bne  r{t3}, r19, fail{lane}
    addi r7, r7, 1
fail{lane}:""")
    body = "".join(lanes)
    return f"""
# strmatch: naive substring search, 4 positions per iteration
main:
    addi r2, r0, {_BASE_A}      # text
    addi r4, r0, {limit}
    addi r6, r0, 0              # i
    addi r7, r0, 0              # match count
    # preload pattern into registers (high-use values)
    addi r3, r0, {_BASE_B}
    lw   r16, 0(r3)
    lw   r17, 1(r3)
    lw   r18, 2(r3)
    lw   r19, 3(r3)
outer:{body}
    addi r6, r6, 4
    bne  r6, r4, outer
    out  r7
    halt
{_data_section(_BASE_A, text)}
{_data_section(_BASE_B, pattern)}
"""


def bitpack(scale: float = 1.0, seed: int = 37) -> str:
    """gzip-like variable-length bit packing.

    Encodes a stream of symbols into a bit buffer using per-symbol code
    lengths (shift/or sequences with a serial bit-position dependence,
    broken into two independent output streams for ILP).
    """
    rng = random.Random(seed)
    count = max(64, int(1100 * scale))
    count -= count % 2
    # Symbols and code lengths (3..9 bits), Huffman-ish skew.
    symbols = []
    lengths = []
    for _ in range(count):
        if rng.random() < 0.6:
            lengths.append(rng.randrange(3, 6))
        else:
            lengths.append(rng.randrange(6, 10))
        symbols.append(rng.randrange(1 << lengths[-1]))
    interleaved = []
    for symbol, length in zip(symbols, lengths):
        interleaved.append(symbol)
        interleaved.append(length)
    return f"""
# bitpack: variable-length bit packing (gzip-like), two output streams
main:
    addi r2, r0, {_BASE_A}      # (symbol, length) pairs
    addi r3, r0, {count}
    addi r5, r0, 0              # pair index
    addi r16, r0, 0             # stream A bit buffer
    addi r17, r0, 0             # stream A bit position
    addi r26, r0, 0             # stream B bit buffer
    addi r27, r0, 0             # stream B bit position
    addi r14, r0, 63            # position mask
pack:
    slli r6, r5, 1
    add  r7, r2, r6
    lw   r8, 0(r7)              # symbol A
    lw   r9, 1(r7)              # length A
    sll  r10, r8, r17
    xor  r16, r16, r10
    add  r17, r17, r9
    and  r17, r17, r14
    addi r20, r5, 1
    slli r21, r20, 1
    add  r22, r2, r21
    lw   r23, 0(r22)            # symbol B
    lw   r24, 1(r22)            # length B
    sll  r25, r23, r27
    xor  r26, r26, r25
    add  r27, r27, r24
    and  r27, r27, r14
    addi r5, r5, 2
    bne  r5, r3, pack
    xor  r16, r16, r26
    out  r16
    halt
{_data_section(_BASE_A, interleaved)}
"""


def tree_walk(scale: float = 1.0, seed: int = 41) -> str:
    """vortex-like binary search tree lookups.

    The tree is laid out as (key, left, right) triples; each lookup is a
    serial pointer chase with data-dependent branches, and two lookups
    proceed in parallel for memory-level parallelism.
    """
    rng = random.Random(seed)
    num_keys = max(64, int(1200 * scale))
    lookups = max(64, int(500 * scale))
    lookups -= lookups % 2
    keys = rng.sample(range(1, 1 << 20), num_keys)
    # Build a balanced BST over sorted keys; node i at base + 3i.
    nodes: list[tuple[int, int, int]] = []

    def build(sorted_keys):
        if not sorted_keys:
            return 0  # null pointer
        mid = len(sorted_keys) // 2
        index = len(nodes)
        nodes.append((sorted_keys[mid], 0, 0))
        left = build(sorted_keys[:mid])
        right = build(sorted_keys[mid + 1:])
        nodes[index] = (sorted_keys[mid], left, right)
        return _BASE_A + 3 * index

    root = build(sorted(keys))
    node_words: list[int] = []
    for key, left, right in nodes:
        node_words.extend((key, left, right))
    # Half the probes hit, half miss.
    probes = [
        rng.choice(keys) if rng.random() < 0.5
        else rng.randrange(1, 1 << 20)
        for _ in range(lookups)
    ]
    return f"""
# tree_walk: binary-search-tree lookups, two in flight
main:
    addi r2, r0, {_BASE_C}      # probe array
    addi r3, r0, {lookups}
    addi r4, r0, {root}
    addi r5, r0, 0              # probe index
    addi r14, r0, 0             # hits
lookup:
    add  r6, r2, r5
    lw   r7, 0(r6)              # probe key A
    lw   r17, 1(r6)             # probe key B
    mov  r8, r4                 # node pointer A
    mov  r18, r4                # node pointer B
downA:
    beq  r8, r0, missA
    lw   r9, 0(r8)              # node key
    beq  r9, r7, hitA
    blt  r7, r9, leftA
    lw   r8, 2(r8)              # right child
    beq  r0, r0, downA
leftA:
    lw   r8, 1(r8)              # left child
    beq  r0, r0, downA
hitA:
    addi r14, r14, 1
missA:
downB:
    beq  r18, r0, missB
    lw   r19, 0(r18)
    beq  r19, r17, hitB
    blt  r17, r19, leftB
    lw   r18, 2(r18)
    beq  r0, r0, downB
leftB:
    lw   r18, 1(r18)
    beq  r0, r0, downB
hitB:
    addi r14, r14, 1
missB:
    addi r5, r5, 2
    bne  r5, r3, lookup
    out  r14
    halt
{_data_section(_BASE_A, node_words)}
{_data_section(_BASE_C, probes)}
"""


#: All kernel builders, keyed by benchmark name. Order matches the
#: presentation order used in EXPERIMENTS.md. The first eight form
#: DEFAULT_SUITE (the experiment workloads); bitpack and tree_walk are
#: extra workloads available by name.
KERNELS = {
    "pointer_chase": pointer_chase,
    "compress": compress,
    "hash_dict": hash_dict,
    "sort": sort,
    "graph_walk": graph_walk,
    "interp": interp,
    "crc": crc,
    "strmatch": strmatch,
    "bitpack": bitpack,
    "tree_walk": tree_walk,
}
