"""Statistical trace synthesis.

Generates committed-instruction traces directly from target statistics —
degree-of-use distribution, dependence distance, branch and memory mix —
without executing a program. Used for controlled unit tests (e.g. "a
trace where every value has exactly one use") and for stress inputs whose
statistics can be dialled far outside what the kernels produce.

The generated stream is *dataflow-consistent*: every source register read
was written earlier in the stream (or is a preinitialized register), so it
can drive the rename stage and timing model exactly like a VM trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.instruction import NUM_ARCH_REGS, Instruction
from repro.isa.opcodes import Opcode
from repro.vm.trace import DynamicInst, Trace


@dataclass
class SyntheticSpec:
    """Target statistics for a synthesized trace.

    Attributes:
        length: number of dynamic instructions.
        degree_weights: relative probability of generating a value that
            will be consumed k times, for k = index. The paper reports
            most values are used exactly once; the default reflects that
            (roughly 15% dead, 60% single-use, tapering tail).
        high_use_fraction: fraction of producers whose value is reused
            continually (loop-invariant-like); these are read many times
            across the whole trace.
        load_fraction: fraction of instructions that are loads.
        store_fraction: fraction of instructions that are stores.
        branch_fraction: fraction of instructions that are conditional
            branches.
        branch_taken_rate: probability a generated branch is taken.
        mul_fraction: fraction of long-latency (multiply) instructions.
        reuse_distance_mean: mean number of instructions between a value's
            definition and each consumer (geometric distribution).
        num_static_pcs: size of the synthetic static code footprint; the
            degree-of-use predictor keys on pc, so smaller footprints are
            more predictable.
        memory_footprint: number of distinct words touched by loads and
            stores.
        seed: RNG seed.
    """

    length: int = 10_000
    degree_weights: tuple[float, ...] = (0.15, 0.60, 0.15, 0.06, 0.04)
    high_use_fraction: float = 0.02
    load_fraction: float = 0.22
    store_fraction: float = 0.10
    branch_fraction: float = 0.15
    branch_taken_rate: float = 0.55
    mul_fraction: float = 0.03
    reuse_distance_mean: float = 6.0
    num_static_pcs: int = 200
    memory_footprint: int = 4_096
    seed: int = 1234
    name: str = field(default="synthetic")


class _PendingUse:
    """A scheduled future consumption of an architectural register."""

    __slots__ = ("when", "reg")

    def __init__(self, when: int, reg: int) -> None:
        self.when = when
        self.reg = reg


def generate(spec: SyntheticSpec) -> Trace:
    """Generate a dataflow-consistent trace matching *spec*.

    The generator maintains a pool of "live" architectural registers with
    scheduled future uses. Each new producer picks a degree of use from
    ``degree_weights`` and schedules that many consumers at geometric
    reuse distances. Consumers draw from the scheduled pool when their
    time arrives; instructions missing a scheduled source read a random
    live register or a preinitialized one.
    """
    rng = random.Random(spec.seed)
    records: list[DynamicInst] = []
    # Registers 1..15 are treated as preinitialized environment values.
    initialized = list(range(1, 16))
    schedule: dict[int, list[int]] = {}  # seq -> regs to consume
    high_use_regs: list[int] = []
    next_reg = 16

    def alloc_reg() -> int:
        nonlocal next_reg
        reg = next_reg
        next_reg += 1
        if next_reg >= NUM_ARCH_REGS:
            next_reg = 16
        return reg

    def schedule_uses(reg: int, seq: int, count: int) -> None:
        for _ in range(count):
            distance = 1 + min(
                int(rng.expovariate(1.0 / spec.reuse_distance_mean)), 400
            )
            schedule.setdefault(seq + distance, []).append(reg)

    def pick_sources(seq: int, how_many: int) -> list[int]:
        due = schedule.pop(seq, [])
        sources = due[:how_many]
        for leftover in due[how_many:]:
            # Push overflow uses to the next instruction.
            schedule.setdefault(seq + 1, []).append(leftover)
        while len(sources) < how_many:
            if high_use_regs and rng.random() < 0.3:
                sources.append(rng.choice(high_use_regs))
            else:
                sources.append(rng.choice(initialized))
        return sources

    degrees = list(range(len(spec.degree_weights)))
    for seq in range(spec.length):
        pc = rng.randrange(spec.num_static_pcs)
        roll = rng.random()
        if roll < spec.branch_fraction:
            sources = pick_sources(seq, 2)
            taken = rng.random() < spec.branch_taken_rate
            inst = Instruction(
                Opcode.BNE, src1=sources[0], src2=sources[1],
                imm=rng.randrange(spec.num_static_pcs),
            )
            records.append(DynamicInst(
                seq, pc, inst, taken=taken,
                target=inst.imm if taken else pc + 1,
            ))
            continue
        roll -= spec.branch_fraction
        if roll < spec.store_fraction:
            sources = pick_sources(seq, 2)
            inst = Instruction(Opcode.SW, src1=sources[0], src2=sources[1])
            records.append(DynamicInst(
                seq, pc, inst,
                mem_addr=rng.randrange(spec.memory_footprint),
            ))
            continue
        roll -= spec.store_fraction
        # Producer instruction: pick a destination and schedule its uses.
        dest = alloc_reg()
        if rng.random() < spec.high_use_fraction:
            high_use_regs.append(dest)
            if len(high_use_regs) > 8:
                high_use_regs.pop(0)
        else:
            count = rng.choices(degrees, weights=spec.degree_weights)[0]
            schedule_uses(dest, seq, count)
        if roll < spec.load_fraction:
            sources = pick_sources(seq, 1)
            inst = Instruction(Opcode.LW, dest=dest, src1=sources[0])
            records.append(DynamicInst(
                seq, pc, inst,
                mem_addr=rng.randrange(spec.memory_footprint), value=0,
            ))
        elif roll < spec.load_fraction + spec.mul_fraction:
            sources = pick_sources(seq, 2)
            inst = Instruction(
                Opcode.MUL, dest=dest, src1=sources[0], src2=sources[1]
            )
            records.append(DynamicInst(seq, pc, inst, value=0))
        else:
            sources = pick_sources(seq, 2)
            inst = Instruction(
                Opcode.ADD, dest=dest, src1=sources[0], src2=sources[1]
            )
            records.append(DynamicInst(seq, pc, inst, value=0))

    # Terminate cleanly so downstream consumers see a halt.
    records.append(DynamicInst(
        spec.length, spec.num_static_pcs, Instruction(Opcode.HALT)
    ))
    return Trace(records, name=spec.name)


def single_use_trace(length: int = 2_000, seed: int = 5) -> Trace:
    """Trace in which every produced value has at most one consumer."""
    spec = SyntheticSpec(
        length=length, degree_weights=(0.0, 1.0), high_use_fraction=0.0,
        seed=seed, name="synthetic-single-use",
    )
    return generate(spec)


def high_use_trace(length: int = 2_000, seed: int = 5) -> Trace:
    """Trace dominated by values with many consumers (pinning stress)."""
    spec = SyntheticSpec(
        length=length,
        degree_weights=(0.0, 0.1, 0.1, 0.2, 0.2, 0.2, 0.1, 0.1),
        high_use_fraction=0.10, seed=seed, name="synthetic-high-use",
    )
    return generate(spec)
