"""Workload generation: SPECint-like kernels and statistical traces."""

from repro.workloads.kernels import KERNELS
from repro.workloads.suite import (
    DEFAULT_SUITE,
    SHORT_SUITE,
    benchmark_names,
    build_program,
    load_suite,
    load_trace,
)
from repro.workloads.synthetic import (
    SyntheticSpec,
    generate,
    high_use_trace,
    single_use_trace,
)

__all__ = [
    "DEFAULT_SUITE",
    "KERNELS",
    "SHORT_SUITE",
    "SyntheticSpec",
    "benchmark_names",
    "build_program",
    "generate",
    "high_use_trace",
    "load_suite",
    "load_trace",
    "single_use_trace",
]
