"""Benchmark suite registry and trace factory.

Provides named access to the SPECint-like kernels, assembling and
functionally executing each one to produce the committed trace consumed
by the timing model. Trace production is layered for reuse across the
experiment grid:

1. an in-process ``lru_cache`` memo per ``(name, scale, seed)`` — repeat
   loads in one process return the *same* ``Trace`` object;
2. an **on-disk trace cache** (``REPRO_TRACE_CACHE`` /
   ``REPRO_TRACE_CACHE_DIR``) holding the packed record stream plus its
   :class:`~repro.vm.trace.TraceAnalysis`, keyed by
   ``(kernel name, scale, seed)`` and a fingerprint of the kernel / ISA /
   VM sources — so cold worker processes *load* traces instead of
   re-executing the VM, and a source edit anywhere in the trace-producing
   code invalidates every entry;
3. VM execution as the fallback, storing the result back to disk.

The experiment engine warms this cache once before process fan-out (see
:meth:`repro.analysis.engine.ExperimentEngine.run`) and surfaces the
generated-vs-loaded split through :func:`trace_counters`.
"""

from __future__ import annotations

import functools
import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.obs.log import get_logger
from repro.obs.metrics import get_metrics
from repro.testing import faults
from repro.vm.machine import run_program
from repro.vm.trace import Trace, pack_trace, unpack_trace
from repro.workloads.kernels import KERNELS

_log = get_logger("suite")

#: Default suite used by the experiment harness (the eight primary
#: kernels; ``bitpack`` and ``tree_walk`` are extra workloads available
#: by name via :func:`load_trace`).
DEFAULT_SUITE = (
    "pointer_chase", "compress", "hash_dict", "sort",
    "graph_walk", "interp", "crc", "strmatch",
)

#: Short suite used by wide parameter sweeps to bound wall-clock time.
SHORT_SUITE = ("pointer_chase", "compress", "hash_dict", "interp")


def benchmark_names() -> tuple[str, ...]:
    """Names of all available benchmarks."""
    return tuple(KERNELS)


def build_program(name: str, scale: float = 1.0, seed: int | None = None) -> Program:
    """Assemble the named kernel at the given scale.

    Args:
        name: a key of :data:`repro.workloads.kernels.KERNELS`.
        scale: dynamic-instruction-count multiplier (see kernels module).
        seed: RNG seed for the kernel's data set; ``None`` uses the
            kernel's default.

    Raises:
        ReproError: if *name* is not a known benchmark.
    """
    builder = KERNELS.get(name)
    if builder is None:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {', '.join(KERNELS)}"
        )
    source = builder(scale) if seed is None else builder(scale, seed)
    return assemble(source, name=name)


# ----------------------------------------------------------------------
# Observability: how traces were obtained (generated vs. loaded).


@dataclass
class TraceCounters:
    """Counts of trace-factory activity in this process."""

    generated: int = 0
    loaded: int = 0
    repairs: int = 0
    gen_seconds: float = 0.0
    load_seconds: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "traces_generated": self.generated,
            "traces_loaded": self.loaded,
            "trace_cache_repairs": self.repairs,
            "trace_gen_seconds": self.gen_seconds,
            "trace_load_seconds": self.load_seconds,
        }

    def since(self, before: dict[str, float]) -> dict[str, float]:
        """Delta of :meth:`snapshot` values since *before*."""
        now = self.snapshot()
        return {key: now[key] - before.get(key, 0) for key in now}


_counters = TraceCounters()


def trace_counters() -> TraceCounters:
    """This process's trace-factory counters."""
    return _counters


# ----------------------------------------------------------------------
# On-disk trace cache.
#
# The key mirrors engine._code_fingerprint's discipline: cache identity
# is (kernel, scale, seed) + a hash of every source file that can change
# what the VM commits — the ISA, the VM itself, and the workload
# generators. Any edit to those trees invalidates all entries.

#: Bump when the cache addressing scheme changes.
TRACE_CACHE_SCHEMA_VERSION = 1

_FINGERPRINT_ROOTS = ("isa", "vm", "workloads")


def _hash_tree(root: Path, digest: "hashlib._Hash") -> None:
    """Fold every ``*.py`` under *root* (sorted) into *digest*."""
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())


@functools.lru_cache(maxsize=1)
def _trace_fingerprint() -> str:
    """Hash of the sources that determine a trace's contents."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    digest.update(f"trace-schema:{TRACE_CACHE_SCHEMA_VERSION}".encode())
    for name in _FINGERPRINT_ROOTS:
        root = package_root / name
        digest.update(name.encode())
        if root.is_dir():
            _hash_tree(root, digest)
    return digest.hexdigest()


def trace_cache_enabled() -> bool:
    """Whether the on-disk trace cache is active (default: yes)."""
    return os.environ.get("REPRO_TRACE_CACHE", "1").lower() not in (
        "0", "false", "off",
    )


def trace_cache_dir() -> Path:
    """Directory holding packed trace files."""
    override = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if override:
        return Path(override)
    base = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    return Path(base) / "traces"


def _trace_key(name: str, scale: float, seed: int | None) -> str:
    material = "\x1f".join(
        (_trace_fingerprint(), name, repr(float(scale)), repr(seed))
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _trace_path(key: str) -> Path:
    return trace_cache_dir() / key[:2] / f"{key[2:]}.trace"


def _load_cached(
    name: str, scale: float, seed: int | None, program: Program
) -> Trace | None:
    """Load a packed trace from disk, or ``None`` on miss/corruption."""
    path = _trace_path(_trace_key(name, scale, seed))
    try:
        data = path.read_bytes()
    except OSError:
        return None
    try:
        return unpack_trace(data, program)
    except Exception:
        # Corrupt or stale blob: repair by regenerating (the caller
        # stores the fresh trace over this entry). Unlike a plain miss
        # this means an entry existed and was unreadable, so it is
        # counted — a climbing repair rate flags a sick cache volume.
        _counters.repairs += 1
        get_metrics().counter("repro_trace_cache_repairs").inc()
        _log.warning(
            "repairing corrupt trace-cache entry for %s (scale=%s, "
            "seed=%s): %s", name, scale, seed, path,
        )
        return None


def _store_cached(name: str, scale: float, seed: int | None, trace: Trace) -> None:
    """Atomically write the packed trace (with analysis); best-effort."""
    key = _trace_key(name, scale, seed)
    path = _trace_path(key)
    try:
        data = pack_trace(trace, trace.analysis())
        if faults.enabled():
            data = faults.corrupt_bytes("truncate_trace", key, data)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except (OSError, ValueError):
        pass  # caching is an optimization; never fail the load


@functools.lru_cache(maxsize=128)
def load_trace(name: str, scale: float = 1.0, seed: int | None = None) -> Trace:
    """Return the committed trace of a benchmark, via the trace factory.

    Checks the in-process memo, then the on-disk trace cache, and only
    then assembles and executes the kernel on the VM (storing the result
    back to disk). Results are cached; callers must treat the returned
    trace as immutable.
    """
    program = build_program(name, scale=scale, seed=seed)
    if trace_cache_enabled():
        started = time.perf_counter()
        trace = _load_cached(name, scale, seed, program)
        if trace is not None:
            _counters.loaded += 1
            _counters.load_seconds += time.perf_counter() - started
            trace.provenance = (name, float(scale), seed)
            return trace
    started = time.perf_counter()
    trace = run_program(program)
    _counters.generated += 1
    _counters.gen_seconds += time.perf_counter() - started
    trace.provenance = (name, float(scale), seed)
    if trace_cache_enabled():
        _store_cached(name, scale, seed, trace)
    return trace


def warm_trace_cache(name: str, scale: float = 1.0, seed: int | None = None) -> bool:
    """Ensure the on-disk cache holds the packed trace for one workload.

    Called by the experiment engine before process fan-out so cold
    workers load traces instead of re-executing the VM. Returns ``True``
    when a disk entry exists afterwards.
    """
    if not trace_cache_enabled():
        return False
    path = _trace_path(_trace_key(name, scale, seed))
    if path.is_file():
        return True
    # load_trace may be memoized from before the disk entry existed (or
    # was deleted), so store explicitly rather than relying on its
    # generate-then-store path.
    trace = load_trace(name, scale=scale, seed=seed)
    _store_cached(name, scale, seed, trace)
    return path.is_file()


def clear_trace_memo() -> None:
    """Drop the in-process trace memo (tests and cache experiments)."""
    load_trace.cache_clear()


def load_suite(
    names: tuple[str, ...] = DEFAULT_SUITE, scale: float = 1.0
) -> dict[str, Trace]:
    """Load traces for a set of benchmarks.

    Args:
        names: benchmark names (defaults to the full suite).
        scale: instruction-count multiplier applied to each kernel.

    Returns:
        Mapping of benchmark name to committed trace, in *names* order.
    """
    return {name: load_trace(name, scale=scale) for name in names}
