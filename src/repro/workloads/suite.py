"""Benchmark suite registry.

Provides named access to the SPECint-like kernels, assembling and
functionally executing each one to produce the committed trace consumed
by the timing model. Traces are memoized per ``(name, scale, seed)`` so
parameter sweeps do not re-execute the VM for every machine
configuration.
"""

from __future__ import annotations

import functools

from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.vm.machine import run_program
from repro.vm.trace import Trace
from repro.workloads.kernels import KERNELS

#: Default suite used by the experiment harness (the eight primary
#: kernels; ``bitpack`` and ``tree_walk`` are extra workloads available
#: by name via :func:`load_trace`).
DEFAULT_SUITE = (
    "pointer_chase", "compress", "hash_dict", "sort",
    "graph_walk", "interp", "crc", "strmatch",
)

#: Short suite used by wide parameter sweeps to bound wall-clock time.
SHORT_SUITE = ("pointer_chase", "compress", "hash_dict", "interp")


def benchmark_names() -> tuple[str, ...]:
    """Names of all available benchmarks."""
    return tuple(KERNELS)


def build_program(name: str, scale: float = 1.0, seed: int | None = None) -> Program:
    """Assemble the named kernel at the given scale.

    Args:
        name: a key of :data:`repro.workloads.kernels.KERNELS`.
        scale: dynamic-instruction-count multiplier (see kernels module).
        seed: RNG seed for the kernel's data set; ``None`` uses the
            kernel's default.

    Raises:
        ReproError: if *name* is not a known benchmark.
    """
    builder = KERNELS.get(name)
    if builder is None:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {', '.join(KERNELS)}"
        )
    source = builder(scale) if seed is None else builder(scale, seed)
    return assemble(source, name=name)


@functools.lru_cache(maxsize=128)
def load_trace(name: str, scale: float = 1.0, seed: int | None = None) -> Trace:
    """Assemble, execute, and return the committed trace of a benchmark.

    Results are cached; callers must treat the returned trace as
    immutable.
    """
    program = build_program(name, scale=scale, seed=seed)
    trace = run_program(program)
    trace.provenance = (name, float(scale), seed)
    return trace


def load_suite(
    names: tuple[str, ...] = DEFAULT_SUITE, scale: float = 1.0
) -> dict[str, Trace]:
    """Load traces for a set of benchmarks.

    Args:
        names: benchmark names (defaults to the full suite).
        scale: instruction-count multiplier applied to each kernel.

    Returns:
        Mapping of benchmark name to committed trace, in *names* order.
    """
    return {name: load_trace(name, scale=scale) for name in names}
