"""Value-degree-of-use prediction."""

from repro.predict.degree_of_use import FCF_BITS, DegreeOfUsePredictor, compute_fcf

__all__ = ["DegreeOfUsePredictor", "FCF_BITS", "compute_fcf"]
