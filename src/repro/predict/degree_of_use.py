"""Degree-of-use prediction (Butts & Sohi, MICRO 2002; paper §3.3).

The predictor associates the number of consumers of an instruction's
result with the instruction's address plus a hash of *future control
flow* (the directions of the next few branches), because the same static
instruction can have different use counts on different paths.

Table 1 budget: 9KB = 4K entries, 4-way set-associative, 2-bit
confidence, 6-bit future-control-flow hash, 6-bit tag, 4-bit prediction.

A prediction is supplied only when the entry's confidence counter is
saturated; otherwise the caller applies the *unknown default* (paper
§3.3). Training happens when a physical register is freed and the true
consumer count is known. A misprediction resets confidence, so a few
instances are needed before an instruction predicts again — this is the
"training period" the paper mentions.

In this trace-driven reproduction the future-control-flow bits come from
the committed trace (:func:`compute_fcf`) rather than from front-end
predictions; with ~95 % branch accuracy these agree almost always, and
optional noise injection (``wrongpath_noise``) models the residual
wrong-path use counting the paper describes in §3.4.
"""

from __future__ import annotations

import random

from repro.vm.trace import DEFAULT_FCF_BITS, Trace
from repro.vm.trace import compute_fcf as _compute_fcf

#: Number of future conditional-branch directions hashed into the index.
#: The paper's predictor stores a 6-bit future-control-flow field; we
#: fold fewer bits by default because our kernels' static footprints are
#: tiny and data-dependent inner-loop trip counts otherwise fragment
#: training across many patterns, depressing coverage far below the
#: paper's (see DESIGN.md fidelity notes). The canonical value lives in
#: :data:`repro.vm.trace.DEFAULT_FCF_BITS` so the trace factory can
#: precompute (and cache) the hash alongside each trace.
FCF_BITS = DEFAULT_FCF_BITS


def compute_fcf(trace: Trace) -> list[int]:
    """Future-control-flow hash for every trace position.

    ``fcf[i]`` encodes the directions of the first :data:`FCF_BITS`
    conditional branches strictly after position ``i`` (most imminent
    branch in the least-significant bit). Delegates to the trace-factory
    implementation (:func:`repro.vm.trace.compute_fcf`); prefer
    ``trace.analysis().fcf`` which computes it once and caches it.
    """
    return _compute_fcf(trace, FCF_BITS)


class _Entry:
    """One predictor entry."""

    __slots__ = ("tag", "prediction", "confidence", "lru")

    def __init__(self, tag: int, prediction: int, lru: int) -> None:
        self.tag = tag
        self.prediction = prediction
        self.confidence = 0
        self.lru = lru


class DegreeOfUsePredictor:
    """Set-associative tagged degree-of-use predictor.

    Args:
        entries: total entry count (default 4K per Table 1).
        assoc: set associativity (default 4).
        tag_bits: tag width (default 6).
        prediction_bits: width of the stored use count (default 4; the
            stored value saturates at ``2**prediction_bits - 1``).
        confidence_max: confidence saturation value (2-bit counter -> 3).
        confidence_threshold: minimum confidence to supply a prediction.
        wrongpath_noise: probability that a training sample is perturbed
            by +/-1, modelling wrong-path use counting (paper §3.4).
        seed: RNG seed for noise injection.
    """

    def __init__(
        self,
        entries: int = 4_096,
        assoc: int = 4,
        tag_bits: int = 6,
        prediction_bits: int = 4,
        confidence_max: int = 3,
        confidence_threshold: int = 1,
        wrongpath_noise: float = 0.0,
        seed: int = 99,
    ) -> None:
        if entries % assoc:
            raise ValueError("entries must be a multiple of assoc")
        self.num_sets = entries // assoc
        self.assoc = assoc
        self.tag_mask = (1 << tag_bits) - 1
        self.max_prediction = (1 << prediction_bits) - 1
        self.confidence_max = confidence_max
        self.confidence_threshold = confidence_threshold
        self.wrongpath_noise = wrongpath_noise
        self._rng = random.Random(seed)
        self._sets: list[list[_Entry]] = [[] for _ in range(self.num_sets)]
        self._clock = 0
        # Accounting (exposed for the S33 experiment).
        self.queries = 0
        self.supplied = 0
        self.correct = 0
        self._outstanding: dict[int, int] = {}

    # ------------------------------------------------------------------

    def _locate(self, pc: int, fcf: int) -> tuple[list[_Entry], int]:
        index = (pc ^ (fcf << 5)) % self.num_sets
        tag = ((pc >> 2) ^ fcf) & self.tag_mask
        return self._sets[index], tag

    def predict(self, pc: int, fcf: int) -> int | None:
        """Predicted degree of use, or ``None`` when not confident.

        A confident prediction equal to :attr:`max_prediction` means "this
        many uses *or more*" — callers treat it as a saturated count.
        """
        self.queries += 1
        entries, tag = self._locate(pc, fcf)
        for entry in entries:
            if entry.tag == tag:
                self._clock += 1
                entry.lru = self._clock
                if entry.confidence >= self.confidence_threshold:
                    self.supplied += 1
                    return entry.prediction
                return None
        return None

    def train(self, pc: int, fcf: int, actual_uses: int) -> None:
        """Train with the observed *actual_uses* of the value at *pc*."""
        if self.wrongpath_noise and self._rng.random() < self.wrongpath_noise:
            actual_uses = max(0, actual_uses + self._rng.choice((-1, 1)))
        actual = min(actual_uses, self.max_prediction)
        entries, tag = self._locate(pc, fcf)
        self._clock += 1
        for entry in entries:
            if entry.tag == tag:
                if entry.prediction == actual:
                    if entry.confidence < self.confidence_max:
                        entry.confidence += 1
                else:
                    entry.prediction = actual
                    entry.confidence = 0
                entry.lru = self._clock
                return
        new_entry = _Entry(tag, actual, self._clock)
        if len(entries) < self.assoc:
            entries.append(new_entry)
        else:
            victim = min(range(len(entries)), key=lambda i: entries[i].lru)
            entries[victim] = new_entry

    # ------------------------------------------------------------------
    # Accuracy accounting: callers record each supplied prediction and
    # later resolve it against the actual count.

    def record_outcome(self, predicted: int | None, actual_uses: int) -> None:
        """Score one resolved prediction for accuracy statistics."""
        if predicted is None:
            return
        actual = min(actual_uses, self.max_prediction)
        if predicted == actual:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        """Fraction of supplied predictions that matched the actual count."""
        return self.correct / self.supplied if self.supplied else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of queries for which a prediction was supplied."""
        return self.supplied / self.queries if self.queries else 0.0

    # ------------------------------------------------------------------
    # Observability.

    def publish_metrics(self, registry, **labels: object) -> None:
        """Publish predictor counters into a metrics registry.

        One bulk fold at the end of a run; *registry* is a
        :class:`repro.obs.metrics.MetricsRegistry` and a disabled one
        returns immediately.
        """
        if not registry.enabled:
            return
        registry.publish(
            "dou",
            {
                "queries": self.queries,
                "supplied": self.supplied,
                "correct": self.correct,
            },
            **labels,
        )
        registry.gauge("dou.accuracy", **labels).set(self.accuracy)
        registry.gauge("dou.coverage", **labels).set(self.coverage)
