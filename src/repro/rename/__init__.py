"""Register renaming: freelist, map table, and the rename stage."""

from repro.rename.freelist import FreeList
from repro.rename.map_table import Mapping, MapTable
from repro.rename.renamer import RenamedOp, Renamer

__all__ = ["FreeList", "MapTable", "Mapping", "RenamedOp", "Renamer"]
