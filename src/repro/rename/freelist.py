"""Physical register freelist."""

from __future__ import annotations

from collections import deque

from repro.errors import RenameError


class FreeList:
    """Freelist of physical register identifiers.

    Two allocation orders are provided:

    * ``lifo`` (default) — most-recently-freed register first, as a
      bitmap/stack allocator behaves. Recently freed ids are reused
      immediately, so physical register numbers cluster temporally and
      carry no spatial locality — the property that makes *standard*
      (preg-derived) register-cache indexing conflict-prone and motivates
      decoupled indexing (paper §4.1).
    * ``fifo`` — round-robin through the id space, which accidentally
      approximates decoupled round-robin indexing; useful in tests and
      for ablations.
    """

    def __init__(
        self, num_registers: int, reserved: int = 0, policy: str = "lifo"
    ) -> None:
        """Create a freelist of ``num_registers`` physical registers.

        Args:
            num_registers: total physical registers in the machine.
            reserved: low register ids excluded from allocation (used by
                callers that preassign architectural state).
            policy: ``"lifo"`` or ``"fifo"`` allocation order.
        """
        if num_registers <= reserved:
            raise ValueError("num_registers must exceed reserved")
        if policy not in ("lifo", "fifo"):
            raise ValueError(f"unknown freelist policy {policy!r}")
        self.num_registers = num_registers
        self.policy = policy
        self._lifo = policy == "lifo"
        self._free: deque[int] = deque(range(reserved, num_registers))
        self._allocated: set[int] = set()

    def __len__(self) -> int:
        return len(self._free)

    @property
    def free_count(self) -> int:
        """Number of registers currently available."""
        return len(self._free)

    @property
    def allocated_count(self) -> int:
        """Number of registers currently allocated."""
        return len(self._allocated)

    def allocate(self) -> int:
        """Pop one free register.

        Raises:
            RenameError: when the freelist is empty (the caller should
                have stalled rename instead).
        """
        free = self._free
        if not free:
            raise RenameError("physical register freelist exhausted")
        preg = free.pop() if self._lifo else free.popleft()
        self._allocated.add(preg)
        return preg

    def release(self, preg: int) -> None:
        """Return *preg* to the freelist.

        Raises:
            RenameError: on double-free or freeing an unallocated id.
        """
        if preg not in self._allocated:
            raise RenameError(f"freeing unallocated physical register {preg}")
        self._allocated.remove(preg)
        self._free.append(preg)

    def is_allocated(self, preg: int) -> bool:
        """True while *preg* is checked out."""
        return preg in self._allocated
