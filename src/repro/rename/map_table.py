"""Rename map table with decoupled register-cache indices.

Per the paper (§4.1), decoupled indexing widens the map table: each
architectural register maps to a physical register *and* the register
cache set assigned to the value. Consumers obtain both through the
normal rename process, so the set index needs no extra indirection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RenameError
from repro.isa.instruction import NUM_ARCH_REGS


@dataclass(frozen=True, slots=True)
class Mapping:
    """Current mapping of one architectural register.

    Attributes:
        preg: physical register holding (or about to hold) the value.
        cache_set: register-cache set assigned at rename, or -1 when the
            storage scheme does not use decoupled indexing.
    """

    preg: int
    cache_set: int = -1


class MapTable:
    """Architectural-to-physical register map with checkpointing."""

    def __init__(self, num_arch_regs: int = NUM_ARCH_REGS) -> None:
        self.num_arch_regs = num_arch_regs
        self._map: list[Mapping | None] = [None] * num_arch_regs

    def lookup(self, arch_reg: int) -> Mapping | None:
        """Current mapping of *arch_reg*, or ``None`` if never written."""
        if not 0 <= arch_reg < self.num_arch_regs:
            raise RenameError(f"architectural register {arch_reg} out of range")
        return self._map[arch_reg]

    def define(self, arch_reg: int, preg: int, cache_set: int = -1) -> Mapping | None:
        """Install a new mapping; returns the mapping it displaces.

        The displaced mapping's physical register becomes eligible for
        freeing when the defining instruction retires.
        """
        if not 0 <= arch_reg < self.num_arch_regs:
            raise RenameError(f"architectural register {arch_reg} out of range")
        previous = self._map[arch_reg]
        self._map[arch_reg] = Mapping(preg, cache_set)
        return previous

    def checkpoint(self) -> tuple[Mapping | None, ...]:
        """Snapshot the full map (for mis-speculation recovery)."""
        return tuple(self._map)

    def restore(self, snapshot: tuple[Mapping | None, ...]) -> None:
        """Restore a snapshot taken by :meth:`checkpoint`."""
        if len(snapshot) != self.num_arch_regs:
            raise RenameError("snapshot size mismatch")
        self._map = list(snapshot)

    def live_mappings(self) -> list[Mapping]:
        """All currently mapped (architecturally visible) values."""
        return [m for m in self._map if m is not None]
