"""The rename stage: allocation, mapping, and set assignment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rename.freelist import FreeList
from repro.rename.map_table import MapTable
from repro.vm.trace import DynamicInst


@dataclass(slots=True)
class RenamedOp:
    """Rename-stage output for one dynamic instruction.

    Attributes:
        dyn: the dynamic instruction.
        sources: per-source ``(preg, cache_set)`` pairs; sources whose
            producing mapping was never defined (reads of preinitialized
            environment registers) have ``preg == -1`` and are always
            ready.
        dest_preg: allocated destination physical register, or -1.
        dest_set: register-cache set assigned by decoupled indexing, or
            -1 under standard indexing / non-cache schemes.
        prev_preg: physical register displaced from the map (freed when
            this instruction retires), or -1.
        pred_uses: predicted degree of use, or ``None`` when the
            predictor had no confident prediction (the *unknown default*
            applies downstream).
    """

    dyn: DynamicInst
    sources: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    dest_preg: int = -1
    dest_set: int = -1
    prev_preg: int = -1
    pred_uses: int | None = None


class Renamer:
    """Performs register renaming over the committed trace.

    Args:
        freelist: physical register freelist.
        map_table: architectural map table.
        assign_set: optional callable ``(pred_uses) -> int`` implementing
            a decoupled-indexing set-assignment policy; ``None`` leaves
            set assignment to the register cache (standard indexing).
    """

    def __init__(
        self,
        freelist: FreeList,
        map_table: MapTable,
        assign_set=None,
    ) -> None:
        self.freelist = freelist
        self.map_table = map_table
        self.assign_set = assign_set

    def can_rename(self, dyn: DynamicInst) -> bool:
        """True when resources exist to rename *dyn* this cycle."""
        return not dyn.writes_register or self.freelist.free_count > 0

    def rename(self, dyn: DynamicInst, pred_uses: int | None) -> RenamedOp:
        """Rename *dyn*, allocating a destination register if needed.

        The caller must have checked :meth:`can_rename`; the underlying
        freelist raises :class:`~repro.errors.RenameError` otherwise.
        """
        map_table = self.map_table
        lookup = map_table.lookup
        sources = []
        append = sources.append
        for arch_src in dyn.sources:
            mapping = lookup(arch_src)
            if mapping is None:
                append((-1, -1))
            else:
                append((mapping.preg, mapping.cache_set))

        dest_preg = -1
        dest_set = -1
        prev_preg = -1
        if dyn.writes_register:
            dest_preg = self.freelist.allocate()
            if self.assign_set is not None:
                dest_set = self.assign_set(pred_uses)
            displaced = map_table.define(dyn.dest, dest_preg, dest_set)
            if displaced is not None:
                prev_preg = displaced.preg

        return RenamedOp(
            dyn=dyn,
            sources=tuple(sources),
            dest_preg=dest_preg,
            dest_set=dest_set,
            prev_preg=prev_preg,
            pred_uses=pred_uses,
        )
