"""Trace-driven front end: fetch timing plus branch prediction.

The front end walks the committed trace in order and computes, for each
instruction, the cycle at which it becomes available to the dispatch
stage. It models:

* 8-wide fetch with at most one taken branch per fetch block (Table 1),
* instruction-cache misses stalling fetch,
* branch prediction (YAGS direction, perfect BTB for direct targets, RAS
  for returns, cascading indirect predictor) — a misprediction stops
  fetch until the pipeline reports the branch resolved, modelling the
  full misprediction loop,
* the front-end pipeline depth (fetch + decode + rename + dispatch
  stages) between fetch and dispatch availability.

Wrong-path instructions are not injected; their cost is the fetch gap
plus the refill depth, matching the paper's minimum 15-cycle
misprediction loop when the register read takes one cycle.
"""

from __future__ import annotations

from collections import deque

from repro.frontend.branch import YagsPredictor
from repro.frontend.btb import IndirectPredictor, ReturnAddressStack
from repro.isa.instruction import LINK_REG
from repro.vm.trace import DynamicInst, Trace


#: Branch-plan codes, one per trace record: bit 0 = counts toward
#: ``branches_seen`` (a conditional branch), bit 1 = mispredicted.
_PLAN_COND = 1
_PLAN_MISS = 2


def branch_plan_for(trace: Trace) -> list[int]:
    """Per-record branch outcomes for *trace*, memoized on the trace.

    The front end's predictors (YAGS direction, RAS, cascading
    indirect) are trained in trace order with no timing feedback, so
    their hit/miss decisions depend only on the record sequence — not
    on the machine configuration being simulated. Replaying them once
    yields a plan that any number of configurations sharing the trace
    can consume (:class:`FrontEnd` with ``branch_plan=``), skipping the
    per-run prediction work while producing bit-identical fetch timing
    and ``branches_seen`` / ``mispredicts`` counts.

    The plan is cached on the trace object itself (in-process only; it
    is derived data and deliberately kept out of the on-disk trace
    cache, whose format stays prediction-agnostic).
    """
    plan = getattr(trace, "_branch_plan", None)
    if plan is not None:
        return plan
    probe = FrontEnd.__new__(FrontEnd)
    probe.direction = YagsPredictor()
    probe.indirect = IndirectPredictor()
    probe.ras = ReturnAddressStack()
    probe.branches_seen = 0
    probe.mispredicts = 0
    plan = []
    append = plan.append
    predict = probe._predict
    for dyn in trace.records:
        if not dyn.is_branch:
            append(0)
            continue
        seen = probe.branches_seen
        correct = predict(dyn)
        code = 0 if correct else _PLAN_MISS
        if probe.branches_seen != seen:
            code |= _PLAN_COND
        append(code)
    try:
        trace._branch_plan = plan
    except AttributeError:  # slotted/frozen trace: recompute per call
        pass
    return plan


class FetchedInst:
    """A fetched instruction waiting for dispatch.

    Attributes:
        dyn: the dynamic instruction.
        ready_at: earliest cycle the dispatch stage may consume it.
        mispredicted: True when this is a branch the front end predicted
            incorrectly; fetch stops after it until ``resume`` is called.
    """

    __slots__ = ("dyn", "ready_at", "mispredicted")

    def __init__(self, dyn: DynamicInst, ready_at: int, mispredicted: bool):
        self.dyn = dyn
        self.ready_at = ready_at
        self.mispredicted = mispredicted


class FrontEnd:
    """Computes dispatch-availability times for a committed trace.

    Args:
        trace: the committed instruction stream.
        fetch_width: instructions fetched per cycle.
        front_depth: pipeline stages between fetch and dispatch
            availability (fetch 4 + decode 2 + rename 3 + dispatch 2 = 11
            per Table 1; the extra issue stage is modelled in the core).
        queue_capacity: fetch-queue depth providing elasticity between
            fetch and dispatch.
        icache: optional object with ``access(line:int) -> int`` returning
            additional stall cycles for fetching the given line.
        line_insts: instructions per I-cache line (64-byte lines of
            4-byte instructions).
        branch_plan: optional precomputed per-record branch outcomes
            (:func:`branch_plan_for`); when given, the live predictors
            are bypassed in favor of the plan's (identical) decisions,
            so batched runs over one trace pay the prediction cost
            once.
    """

    def __init__(
        self,
        trace: Trace,
        *,
        fetch_width: int = 8,
        front_depth: int = 11,
        queue_capacity: int = 48,
        icache=None,
        line_insts: int = 16,
        branch_plan: list[int] | None = None,
    ) -> None:
        self.records = trace.records
        self.fetch_width = fetch_width
        self.front_depth = front_depth
        self.queue_capacity = queue_capacity
        self.icache = icache
        self.line_insts = line_insts

        self.branch_plan = branch_plan
        self.direction = YagsPredictor()
        self.indirect = IndirectPredictor()
        self.ras = ReturnAddressStack()

        self._queue: deque[FetchedInst] = deque()
        self._next_index = 0
        self._fetch_cycle = 0
        self._slots_left = fetch_width
        self._stalled_for_branch = False
        self._last_line = -1

        self.branches_seen = 0
        self.mispredicts = 0

    # ------------------------------------------------------------------

    def exhausted(self) -> bool:
        """True when the whole trace has been fetched and dispatched."""
        return self._next_index >= len(self.records) and not self._queue

    def resume(self, cycle: int) -> None:
        """Restart fetch after a mispredicted branch resolves at *cycle*.

        The next fetch block begins the cycle after resolution (redirect
        takes effect at the start of ``cycle + 1``).
        """
        self._stalled_for_branch = False
        self._fetch_cycle = max(self._fetch_cycle, cycle + 1)
        self._slots_left = self.fetch_width
        self._last_line = -1

    def pull(self, now: int, max_count: int) -> list[FetchedInst]:
        """Return up to *max_count* instructions dispatchable at *now*.

        The caller is responsible for further admission control (window,
        ROB, and physical-register availability); instructions not
        consumed remain queued.
        """
        self._fill_queue(now)
        queue = self._queue
        out: list[FetchedInst] = []
        while queue and len(out) < max_count and queue[0].ready_at <= now:
            out.append(queue.popleft())
        return out

    def next_ready(self, now: int) -> FetchedInst | None:
        """Head of the queue if dispatchable at *now*, without consuming.

        This is the dispatch stage's fast path: one fetch-ahead fill and
        one queue probe per call. Consume the returned instruction with
        :meth:`pop_next`.
        """
        self._fill_queue(now)
        queue = self._queue
        if queue:
            head = queue[0]
            if head.ready_at <= now:
                return head
        return None

    def pop_next(self) -> FetchedInst:
        """Consume the head instruction (after :meth:`next_ready`)."""
        return self._queue.popleft()

    def peek_ready(self, now: int) -> bool:
        """True if at least one instruction is dispatchable at *now*."""
        return self.next_ready(now) is not None

    def next_fetch_time(self, now: int) -> int:
        """Earliest cycle > *now* at which fetch could make progress.

        Used by the event-driven core to wake at exactly the cycles the
        per-cycle loop would have advanced fetch in (so shared-hierarchy
        i-cache accesses happen in the same order relative to data
        accesses). Returns ``-1`` when fetch cannot progress until some
        pipeline event intervenes: stalled on a mispredicted branch
        (resume() restarts it), trace exhausted, or queue full (dispatch
        must drain it first).
        """
        if (
            self._stalled_for_branch
            or self._next_index >= len(self.records)
            or len(self._queue) >= self.queue_capacity
        ):
            return -1
        fetch_cycle = self._fetch_cycle
        return fetch_cycle if fetch_cycle > now else now + 1

    def next_head_ready(self, now: int) -> int:
        """Cycle the queue head becomes dispatchable; ``-1`` if empty.

        The event-driven core's wake-up bound for an idle dispatch
        stage: before this cycle the reference loop's dispatch would
        also have found nothing consumable.
        """
        queue = self._queue
        if not queue:
            return -1
        ready_at = queue[0].ready_at
        return ready_at if ready_at > now else now + 1

    def peek(self, now: int) -> FetchedInst | None:
        """Next dispatchable instruction without consuming it."""
        return self.next_ready(now)

    # ------------------------------------------------------------------

    def _fill_queue(self, now: int) -> None:
        """Fetch ahead until the queue is full or fetch passes *now*.

        Runs once per dispatch-stage probe, so the whole fetch loop
        works on locals and writes the front-end state back once.
        """
        if self._stalled_for_branch:
            return
        records = self.records
        total = len(records)
        next_index = self._next_index
        if next_index >= total:
            return
        queue = self._queue
        capacity = self.queue_capacity
        fetch_cycle = self._fetch_cycle
        queue_len = len(queue)
        if fetch_cycle > now or queue_len >= capacity:
            return
        fetch_width = self.fetch_width
        front_depth = self.front_depth
        line_insts = self.line_insts
        icache = self.icache
        slots_left = self._slots_left
        last_line = self._last_line
        append = queue.append
        predict = self._predict
        plan = self.branch_plan
        while next_index < total and queue_len < capacity \
                and fetch_cycle <= now:
            dyn = records[next_index]
            next_index += 1

            line = dyn.pc // line_insts
            if line != last_line:
                last_line = line
                if icache is not None:
                    stall = icache.access(line)
                    if stall:
                        fetch_cycle += stall
                        slots_left = fetch_width

            ends_block = False
            mispredicted = False
            if dyn.is_branch:
                if plan is not None:
                    code = plan[next_index - 1]
                    if code & _PLAN_COND:
                        self.branches_seen += 1
                    if code & _PLAN_MISS:
                        mispredicted = True
                        self.mispredicts += 1
                else:
                    mispredicted = not predict(dyn)
                if dyn.taken or mispredicted:
                    ends_block = True

            append(FetchedInst(dyn, fetch_cycle + front_depth, mispredicted))
            queue_len += 1

            slots_left -= 1
            if mispredicted:
                # Fetch stops; the pipeline calls resume() at resolution.
                self._stalled_for_branch = True
                break
            if ends_block or slots_left == 0:
                fetch_cycle += 1
                slots_left = fetch_width
                if ends_block:
                    last_line = -1
        self._next_index = next_index
        self._fetch_cycle = fetch_cycle
        self._slots_left = slots_left
        self._last_line = last_line

    def _predict(self, dyn: DynamicInst) -> bool:
        """Predict *dyn* and train; returns True when fully correct."""
        inst = dyn.inst
        correct = True
        if dyn.is_conditional:
            self.branches_seen += 1
            predicted = self.direction.predict(dyn.pc)
            self.direction.update(dyn.pc, dyn.taken)
            correct = predicted == dyn.taken
        elif dyn.is_indirect:
            if inst.src1 == LINK_REG and inst.dest is None:
                # Return: predict through the RAS.
                predicted_target = self.ras.pop()
            else:
                predicted_target = self.indirect.predict(dyn.pc)
                self.indirect.update(dyn.pc, dyn.target)
            correct = predicted_target == dyn.target
        # Direct jumps/branches have perfect targets (perfect BTB).
        if dyn.is_branch and inst.dest == LINK_REG:
            self.ras.push(dyn.pc + 1)
        if not correct:
            self.mispredicts += 1
        return correct
