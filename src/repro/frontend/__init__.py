"""Front-end models: branch prediction and fetch timing."""

from repro.frontend.branch import BimodalPredictor, SaturatingCounter, YagsPredictor
from repro.frontend.btb import IndirectPredictor, ReturnAddressStack
from repro.frontend.fetch import FetchedInst, FrontEnd

__all__ = [
    "BimodalPredictor",
    "FetchedInst",
    "FrontEnd",
    "IndirectPredictor",
    "ReturnAddressStack",
    "SaturatingCounter",
    "YagsPredictor",
]
