"""Branch-target structures: return address stack and indirect predictor.

Table 1 specifies a perfect BTB (direct branch targets are always known),
a 64-entry return address stack, and a 32KB cascading indirect branch
predictor. With a trace-driven front end the only question for each
control transfer is whether its *target* was predicted correctly; a wrong
target costs the same as a wrong direction.
"""

from __future__ import annotations


class ReturnAddressStack:
    """Bounded return-address stack with overwrite-on-overflow.

    Calls push their return address; returns pop and predict. A deep call
    chain wraps and loses the oldest entries, as in real hardware.
    """

    def __init__(self, depth: int = 64) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: list[int] = []

    def push(self, return_pc: int) -> None:
        """Record the return address of a call."""
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            del self._stack[0]

    def pop(self) -> int | None:
        """Predicted target of a return, or ``None`` if empty."""
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)


class IndirectPredictor:
    """Two-stage (cascading) tagged target predictor for indirect jumps.

    The first stage is a per-pc last-target table; the second stage is a
    path-history-indexed tagged table that captures targets correlated
    with recent control flow (interpreter dispatch loops need this).
    """

    def __init__(
        self, first_entries: int = 1_024, second_entries: int = 4_096,
        history_bits: int = 12,
    ) -> None:
        self.first = [-1] * first_entries
        self.first_entries = first_entries
        self.second_targets = [-1] * second_entries
        self.second_tags = [-1] * second_entries
        self.second_entries = second_entries
        self.history_mask = (1 << history_bits) - 1
        self.history = 0
        self.lookups = 0
        self.correct = 0

    def _second_index(self, pc: int) -> tuple[int, int]:
        index = (pc * 31 ^ self.history) % self.second_entries
        return index, pc & 0x3FF

    def predict(self, pc: int) -> int | None:
        """Predicted target for the indirect branch at *pc*."""
        index, tag = self._second_index(pc)
        if self.second_tags[index] == tag and self.second_targets[index] >= 0:
            return self.second_targets[index]
        target = self.first[pc % self.first_entries]
        return target if target >= 0 else None

    def update(self, pc: int, target: int) -> None:
        """Train both stages and update path history."""
        prediction = self.predict(pc)
        self.lookups += 1
        if prediction == target:
            self.correct += 1
        self.first[pc % self.first_entries] = target
        index, tag = self._second_index(pc)
        self.second_tags[index] = tag
        self.second_targets[index] = target
        self.history = ((self.history << 3) ^ (target & 0x7)) & self.history_mask

    @property
    def accuracy(self) -> float:
        """Observed target-prediction accuracy so far."""
        return self.correct / self.lookups if self.lookups else 0.0
