"""Branch direction prediction: bimodal and YAGS predictors.

Table 1 of the paper specifies a 12KB YAGS conditional branch predictor.
YAGS (Yet Another Global Scheme, Eden & Mudge 1998) keeps a bimodal
*choice* table plus two small tagged direction caches recording only the
cases that disagree with the bimodal bias (the "T cache" holds
taken-biased exceptions of a not-taken choice and vice versa).

The timing model only needs a predicted direction per dynamic branch; the
misprediction penalty is applied by the pipeline when the prediction
disagrees with the trace outcome.

Counter state is stored in flat integer lists (not objects): a predictor
is instantiated for every simulation run, so construction cost matters.
"""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating counter (kept for tests and small uses)."""

    __slots__ = ("value", "maximum")

    def __init__(self, bits: int = 2, initial: int | None = None) -> None:
        self.maximum = (1 << bits) - 1
        self.value = (self.maximum + 1) // 2 if initial is None else initial

    def taken(self) -> bool:
        """Predicted direction encoded by this counter."""
        return self.value > self.maximum // 2

    def update(self, outcome: bool) -> None:
        """Strengthen or weaken toward *outcome*."""
        if outcome:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


class BimodalPredictor:
    """Classic per-pc 2-bit counter table."""

    def __init__(self, entries: int = 4096) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.table = [2] * entries  # weakly taken

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc*."""
        return self.table[pc % self.entries] >= 2

    def update(self, pc: int, outcome: bool) -> None:
        """Train on the resolved *outcome*."""
        index = pc % self.entries
        value = self.table[index]
        if outcome:
            if value < 3:
                self.table[index] = value + 1
        elif value > 0:
            self.table[index] = value - 1


class _DirectionCache:
    """Tagged exception cache used by YAGS (direct-mapped)."""

    __slots__ = ("entries", "tags", "counters")

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self.tags = [-1] * entries
        self.counters = [0] * entries

    def probe(self, index: int, tag: int) -> bool | None:
        """Return the cached direction, or ``None`` on a tag miss."""
        if self.tags[index] == tag:
            return self.counters[index] >= 2
        return None

    def insert(self, index: int, tag: int, outcome: bool) -> None:
        self.tags[index] = tag
        self.counters[index] = 3 if outcome else 0

    def update(self, index: int, tag: int, outcome: bool) -> bool:
        """Train an existing entry; returns False on tag mismatch."""
        if self.tags[index] != tag:
            return False
        value = self.counters[index]
        if outcome:
            if value < 3:
                self.counters[index] = value + 1
        elif value > 0:
            self.counters[index] = value - 1
        return True


class YagsPredictor:
    """YAGS: bimodal choice + tagged taken/not-taken exception caches.

    Args:
        choice_entries: size of the bimodal choice table.
        cache_entries: size of each exception cache. The Table 1 budget
            (12KB) roughly corresponds to 16K choice counters and 4K
            entries per exception cache.
        history_bits: global-history length folded into the exception
            cache index.
    """

    def __init__(
        self,
        choice_entries: int = 16_384,
        cache_entries: int = 4_096,
        history_bits: int = 12,
    ) -> None:
        self.choice = BimodalPredictor(choice_entries)
        self.taken_cache = _DirectionCache(cache_entries)
        self.not_taken_cache = _DirectionCache(cache_entries)
        self.cache_entries = cache_entries
        self.history_mask = (1 << history_bits) - 1
        self.history = 0
        self.lookups = 0
        self.correct = 0

    def _cache_index(self, pc: int) -> tuple[int, int]:
        index = (pc ^ self.history) % self.cache_entries
        tag = pc & 0xFF
        return index, tag

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at *pc*."""
        choice = self.choice.predict(pc)
        index, tag = self._cache_index(pc)
        # The exception cache consulted is the one holding cases that
        # contradict the bimodal choice.
        cache = self.not_taken_cache if choice else self.taken_cache
        exception = cache.probe(index, tag)
        return exception if exception is not None else choice

    def update(self, pc: int, outcome: bool) -> None:
        """Train all component tables and shift the global history."""
        prediction = self.predict(pc)
        self.lookups += 1
        if prediction == outcome:
            self.correct += 1
        choice = self.choice.predict(pc)
        index, tag = self._cache_index(pc)
        cache = self.not_taken_cache if choice else self.taken_cache
        if outcome != choice:
            # Record the exception (insert if absent).
            if not cache.update(index, tag, outcome):
                cache.insert(index, tag, outcome)
        else:
            # Only weaken an existing exception entry; never insert on
            # agreement (keeps the caches for true exceptions only).
            cache.update(index, tag, outcome)
        self.choice.update(pc, outcome)
        self.history = ((self.history << 1) | int(outcome)) & self.history_mask

    @property
    def accuracy(self) -> float:
        """Observed prediction accuracy so far (0 when untrained)."""
        return self.correct / self.lookups if self.lookups else 0.0
