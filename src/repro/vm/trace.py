"""Dynamic-trace representation produced by the functional VM.

The timing model is trace-driven: it consumes a sequence of
:class:`DynamicInst` records describing the committed instruction stream,
including resolved branch outcomes and memory addresses. This mirrors the
paper's methodology of timing-simulating a known instruction stream while
modelling the machine's speculation penalties explicitly.

This module is also the home of the *trace factory* primitives shared by
the VM, the workload suite, and the experiment engine:

* :func:`static_meta` — per-static-instruction predecode (operand and
  flag metadata chased out of ``inst.spec`` exactly once), used both by
  the VM's fast dispatch path and by trace deserialization.
* :class:`TraceAnalysis` — trace-invariant facts (actual degree of use
  per write, future-control-flow hashes, per-register use counts,
  instruction mixes) computed once per trace and shared by every machine
  configuration that simulates it.
* :func:`pack_trace` / :func:`unpack_trace` — a compact packed
  serialization of the committed record stream (plus its analysis) for
  the on-disk trace cache in :mod:`repro.workloads.suite`.
"""

from __future__ import annotations

import pickle
import sys
from array import array
from collections.abc import Iterable, Iterator

from repro.isa.instruction import NUM_ARCH_REGS, Instruction
from repro.isa.opcodes import OpClass
from repro.isa.program import Program

#: Default number of future conditional-branch directions folded into
#: the future-control-flow hash (see :mod:`repro.predict.degree_of_use`
#: for why this is smaller than the paper's 6 bits).
DEFAULT_FCF_BITS = 3

#: Bump when the packed trace layout changes (invalidates disk caches).
TRACE_PACK_VERSION = 1

_PACK_MAGIC = "repro-trace"


def static_meta(pc: int, inst: Instruction) -> tuple:
    """Predecode one static instruction into the metadata tuple every
    dynamic instance of it shares.

    Layout (consumed positionally by :meth:`DynamicInst.from_decoded`):
    ``(pc, inst, op_class, latency, dest, sources, is_branch,
    is_conditional, is_indirect, is_load, is_store)`` where ``dest`` is
    ``None`` for non-writing instructions and zero-register writes, and
    ``sources`` has zero-register reads removed.
    """
    spec = inst.spec
    return (
        pc,
        inst,
        spec.op_class,
        spec.latency,
        inst.dest if inst.writes_register() else None,
        tuple(s for s in inst.sources() if s != 0),
        spec.is_branch,
        spec.is_conditional,
        spec.is_indirect,
        spec.is_load,
        spec.is_store,
    )


class DynamicInst:
    """One committed dynamic instruction.

    Attributes:
        seq: position in the committed stream (0-based).
        pc: static instruction index.
        inst: the static :class:`Instruction`.
        op_class: functional-unit class (cached from the spec for speed).
        latency: execute latency in cycles (before memory effects).
        dest: destination architectural register or ``None`` (writes to
            the zero register are represented as ``None``).
        sources: architectural source registers actually read, with reads
            of the zero register removed.
        is_branch / is_conditional / is_load / is_store: opcode flags.
        taken: branch outcome (meaningful only for branches).
        target: next pc actually followed.
        mem_addr: word address touched by loads/stores, else ``None``.
        value: result value written (for validation/debug), else ``None``.
    """

    __slots__ = (
        "seq", "pc", "inst", "op_class", "latency", "dest", "sources",
        "is_branch", "is_conditional", "is_indirect", "is_load", "is_store",
        "taken", "target", "mem_addr", "value",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        inst: Instruction,
        *,
        taken: bool = False,
        target: int = -1,
        mem_addr: int | None = None,
        value: int | None = None,
    ) -> None:
        spec = inst.spec
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.op_class = spec.op_class
        self.latency = spec.latency
        self.dest = inst.dest if inst.writes_register() else None
        self.sources = tuple(s for s in inst.sources() if s != 0)
        self.is_branch = spec.is_branch
        self.is_conditional = spec.is_conditional
        self.is_indirect = spec.is_indirect
        self.is_load = spec.is_load
        self.is_store = spec.is_store
        self.taken = taken
        self.target = target
        self.mem_addr = mem_addr
        self.value = value

    @classmethod
    def from_decoded(
        cls,
        decoded: tuple,
        seq: int,
        taken: bool,
        target: int,
        mem_addr: int | None,
        value: int | None,
    ) -> "DynamicInst":
        """Fast constructor from a :func:`static_meta` tuple.

        Skips the per-instance spec chasing of ``__init__``; this is the
        constructor the VM's predecoded dispatch path and the trace
        deserializer use for every dynamic record.
        """
        self = object.__new__(cls)
        (self.pc, self.inst, self.op_class, self.latency, self.dest,
         self.sources, self.is_branch, self.is_conditional,
         self.is_indirect, self.is_load, self.is_store) = decoded
        self.seq = seq
        self.taken = taken
        self.target = target
        self.mem_addr = mem_addr
        self.value = value
        return self

    @property
    def writes_register(self) -> bool:
        """True when this instruction produces a register value."""
        return self.dest is not None

    def signature(self) -> tuple:
        """All observable fields, for bit-identity comparisons in tests."""
        return (
            self.seq, self.pc, self.inst, self.op_class, self.latency,
            self.dest, self.sources, self.is_branch, self.is_conditional,
            self.is_indirect, self.is_load, self.is_store, self.taken,
            self.target, self.mem_addr, self.value,
        )

    def __repr__(self) -> str:
        return f"DynamicInst(seq={self.seq}, pc={self.pc}, {self.inst})"


def compute_fcf(trace: "Trace", bits: int = DEFAULT_FCF_BITS) -> list[int]:
    """Future-control-flow hash for every trace position.

    ``fcf[i]`` encodes the directions of the first *bits* conditional
    branches strictly after position ``i`` (most imminent branch in the
    least-significant bit). Prefer :meth:`Trace.analysis` for the cached
    default-width variant.
    """
    records = trace.records
    mask = (1 << bits) - 1
    fcf = [0] * len(records)
    rolling = 0
    for index in range(len(records) - 1, -1, -1):
        fcf[index] = rolling
        record = records[index]
        if record.is_conditional:
            rolling = ((rolling << 1) | int(record.taken)) & mask
    return fcf


class TraceAnalysis:
    """Trace-invariant precomputation shared across machine configs.

    Every quantity here depends only on the committed instruction stream,
    never on the machine configuration, so it is computed once per trace
    (and serialized alongside it in the on-disk trace cache) instead of
    being rebuilt for every ``(config, trace)`` simulation pair.

    Attributes:
        fcf: future-control-flow hash per trace position (the predictor
            index component, paper §3.3), at :data:`DEFAULT_FCF_BITS`.
        use_counts: per-record *actual degree of use* — for each record
            that writes a register, the number of dynamic reads of that
            value before the architectural register is overwritten (or
            the trace ends); ``-1`` for non-writing records.
        histogram: degree-of-use histogram over all writes.
        reg_reads / reg_writes: dynamic read/write counts per
            architectural register.
        branch_count / load_count / store_count: summary counts
            (conditional branches, loads, stores).
        mix: instruction count by functional-unit class.
    """

    __slots__ = (
        "fcf", "use_counts", "histogram", "reg_reads", "reg_writes",
        "branch_count", "load_count", "store_count", "mix",
    )

    def __init__(
        self,
        fcf: list[int],
        use_counts: list[int],
        histogram: dict[int, int],
        reg_reads: list[int],
        reg_writes: list[int],
        branch_count: int,
        load_count: int,
        store_count: int,
        mix: dict[OpClass, int],
    ) -> None:
        self.fcf = fcf
        self.use_counts = use_counts
        self.histogram = histogram
        self.reg_reads = reg_reads
        self.reg_writes = reg_writes
        self.branch_count = branch_count
        self.load_count = load_count
        self.store_count = store_count
        self.mix = mix

    @classmethod
    def compute(
        cls, trace: "Trace", fcf_bits: int = DEFAULT_FCF_BITS
    ) -> "TraceAnalysis":
        """Analyze *trace* in one forward and one backward pass."""
        records = trace.records
        fcf = compute_fcf(trace, fcf_bits)
        use_counts = [-1] * len(records)
        writer = [-1] * NUM_ARCH_REGS
        pending = [0] * NUM_ARCH_REGS
        reg_reads = [0] * NUM_ARCH_REGS
        reg_writes = [0] * NUM_ARCH_REGS
        histogram: dict[int, int] = {}
        mix: dict[OpClass, int] = {}
        branches = loads = stores = 0
        for index, record in enumerate(records):
            op_class = record.op_class
            mix[op_class] = mix.get(op_class, 0) + 1
            if record.is_conditional:
                branches += 1
            if record.is_load:
                loads += 1
            elif record.is_store:
                stores += 1
            for src in record.sources:
                reg_reads[src] += 1
                if writer[src] >= 0:
                    pending[src] += 1
            dest = record.dest
            if dest is not None:
                reg_writes[dest] += 1
                previous = writer[dest]
                if previous >= 0:
                    uses = pending[dest]
                    use_counts[previous] = uses
                    histogram[uses] = histogram.get(uses, 0) + 1
                writer[dest] = index
                pending[dest] = 0
        for reg in range(NUM_ARCH_REGS):
            previous = writer[reg]
            if previous >= 0:
                uses = pending[reg]
                use_counts[previous] = uses
                histogram[uses] = histogram.get(uses, 0) + 1
        return cls(
            fcf, use_counts, histogram, reg_reads, reg_writes,
            branches, loads, stores, mix,
        )


class Trace:
    """A materialized committed-instruction trace.

    Thin wrapper over a list of :class:`DynamicInst` that records the
    program it came from plus lazily cached summary statistics. Traces
    are immutable after construction; the cached :meth:`analysis` never
    needs invalidation.
    """

    def __init__(self, records: Iterable[DynamicInst], name: str = "") -> None:
        self.records: list[DynamicInst] = list(records)
        self.name = name
        #: ``(kernel_name, scale, seed)`` when the trace came from the
        #: benchmark-suite registry, else ``None``. Provenance lets the
        #: experiment engine re-derive the trace inside worker processes
        #: and key its on-disk result cache without shipping or hashing
        #: the record list itself.
        self.provenance: tuple[str, float, int | None] | None = None
        self._analysis: TraceAnalysis | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DynamicInst]:
        return iter(self.records)

    def __getitem__(self, index: int) -> DynamicInst:
        return self.records[index]

    def analysis(self) -> TraceAnalysis:
        """The trace's :class:`TraceAnalysis`, computed once and cached."""
        result = self._analysis
        if result is None:
            result = self._analysis = TraceAnalysis.compute(self)
        return result

    def branch_count(self) -> int:
        """Number of conditional branches in the trace."""
        return self.analysis().branch_count

    def load_count(self) -> int:
        """Number of loads in the trace."""
        return self.analysis().load_count

    def store_count(self) -> int:
        """Number of stores in the trace."""
        return self.analysis().store_count

    def mix(self) -> dict[OpClass, int]:
        """Instruction count by functional-unit class."""
        return dict(self.analysis().mix)

    def degree_of_use_histogram(self) -> dict[int, int]:
        """Histogram of the *actual* degree of use of produced values.

        The degree of use of a value is the number of dynamic reads of the
        defining write before the architectural register is overwritten
        (or the trace ends). This is the quantity the paper's degree-of-use
        predictor learns (paper §3.3).
        """
        return dict(self.analysis().histogram)


# ----------------------------------------------------------------------
# Packed serialization (the on-disk trace cache format).
#
# Only the dynamic outcomes are stored — per-record pc, branch outcome,
# branch target (branch records), memory address (memory records), and
# result value (writing records) — as raw little/big-native int64
# sections. Static metadata is reconstructed from the (deterministically
# re-assembled) program at load time via :func:`static_meta`, so the
# format stays compact and loading never re-executes the VM.


def pack_trace(trace: Trace, analysis: TraceAnalysis | None = None) -> bytes:
    """Serialize *trace* (and optionally its analysis) to bytes.

    Raises:
        ValueError: if the trace cannot be packed (e.g. synthetic records
            whose values fall outside the VM's canonical signed-64 range).
    """
    records = trace.records
    try:
        pcs = array("q", (r.pc for r in records))
        taken = bytes(bytearray(1 if r.taken else 0 for r in records))
        targets = array("q", (r.target for r in records if r.is_branch))
        mem_addrs = array(
            "q",
            (r.mem_addr for r in records if r.is_load or r.is_store),
        )
        values = array(
            "q", (r.value for r in records if r.dest is not None)
        )
    except (TypeError, OverflowError) as exc:
        raise ValueError(f"trace is not packable: {exc}") from exc
    payload: dict[str, object] = {
        "magic": _PACK_MAGIC,
        "version": TRACE_PACK_VERSION,
        "byteorder": sys.byteorder,
        "name": trace.name,
        "provenance": list(trace.provenance) if trace.provenance else None,
        "n": len(records),
        "pcs": pcs.tobytes(),
        "taken": taken,
        "targets": targets.tobytes(),
        "mem_addrs": mem_addrs.tobytes(),
        "values": values.tobytes(),
    }
    if analysis is not None:
        payload["analysis"] = {
            "fcf_bits": DEFAULT_FCF_BITS,
            "fcf": bytes(analysis.fcf),
            "use_counts": array("q", analysis.use_counts).tobytes(),
            "reg_reads": array("q", analysis.reg_reads).tobytes(),
            "reg_writes": array("q", analysis.reg_writes).tobytes(),
            "histogram": dict(analysis.histogram),
            "branch_count": analysis.branch_count,
            "load_count": analysis.load_count,
            "store_count": analysis.store_count,
            "mix": {oc.value: c for oc, c in analysis.mix.items()},
        }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _int64s(blob: object, expected: int | None = None) -> array:
    values = array("q")
    if not isinstance(blob, bytes) or len(blob) % values.itemsize:
        raise ValueError("corrupt int64 section")
    values.frombytes(blob)
    if expected is not None and len(values) != expected:
        raise ValueError("int64 section length mismatch")
    return values


def _restore_analysis(blob: dict, n: int) -> TraceAnalysis:
    if blob["fcf_bits"] != DEFAULT_FCF_BITS:
        raise ValueError("analysis cached at a different fcf width")
    fcf = list(blob["fcf"])
    if len(fcf) != n:
        raise ValueError("fcf length mismatch")
    return TraceAnalysis(
        fcf,
        _int64s(blob["use_counts"], n).tolist(),
        {int(k): int(v) for k, v in blob["histogram"].items()},
        _int64s(blob["reg_reads"], NUM_ARCH_REGS).tolist(),
        _int64s(blob["reg_writes"], NUM_ARCH_REGS).tolist(),
        int(blob["branch_count"]),
        int(blob["load_count"]),
        int(blob["store_count"]),
        {OpClass(k): int(v) for k, v in blob["mix"].items()},
    )


def unpack_trace(data: bytes, program: Program) -> Trace:
    """Reconstruct a trace serialized by :func:`pack_trace`.

    *program* must be the same program that produced the trace (the
    caller guarantees this by keying cache entries on a fingerprint of
    the kernel/ISA/VM sources). Any structural inconsistency raises
    ``ValueError`` so callers treat the blob as corrupt and regenerate.
    """
    try:
        payload = pickle.loads(data)
    except Exception as exc:
        raise ValueError(f"corrupt trace blob: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("magic") != _PACK_MAGIC
        or payload.get("version") != TRACE_PACK_VERSION
        or payload.get("byteorder") != sys.byteorder
    ):
        raise ValueError("unrecognized trace blob header")
    n = payload["n"]
    taken = payload["taken"]
    if not isinstance(n, int) or not isinstance(taken, bytes) or len(taken) != n:
        raise ValueError("taken section length mismatch")
    pcs = _int64s(payload["pcs"], n)
    targets = _int64s(payload["targets"])
    mem_addrs = _int64s(payload["mem_addrs"])
    values = _int64s(payload["values"])

    metas = [
        static_meta(pc, inst) for pc, inst in enumerate(program.instructions)
    ]
    num_static = len(metas)
    records: list[DynamicInst] = []
    append = records.append
    from_decoded = DynamicInst.from_decoded
    ti = mi = vi = 0
    try:
        for seq in range(n):
            pc = pcs[seq]
            if not 0 <= pc < num_static:
                raise ValueError(f"record {seq}: pc {pc} out of range")
            decoded = metas[pc]
            if decoded[6]:  # is_branch
                target = targets[ti]
                ti += 1
            else:
                target = -1
            if decoded[9] or decoded[10]:  # is_load / is_store
                mem_addr = mem_addrs[mi]
                mi += 1
            else:
                mem_addr = None
            if decoded[4] is not None:  # dest
                value = values[vi]
                vi += 1
            else:
                value = None
            append(
                from_decoded(decoded, seq, taken[seq] == 1, target,
                             mem_addr, value)
            )
    except IndexError as exc:
        raise ValueError("truncated trace section") from exc
    if ti != len(targets) or mi != len(mem_addrs) or vi != len(values):
        raise ValueError("trace section length mismatch")

    trace = Trace(records, name=payload.get("name") or program.name)
    provenance = payload.get("provenance")
    if provenance:
        trace.provenance = (
            provenance[0], float(provenance[1]), provenance[2]
        )
    analysis = payload.get("analysis")
    if isinstance(analysis, dict):
        try:
            trace._analysis = _restore_analysis(analysis, n)
        except (KeyError, TypeError, ValueError):
            trace._analysis = None  # recomputed lazily on demand
    return trace
