"""Dynamic-trace representation produced by the functional VM.

The timing model is trace-driven: it consumes a sequence of
:class:`DynamicInst` records describing the committed instruction stream,
including resolved branch outcomes and memory addresses. This mirrors the
paper's methodology of timing-simulating a known instruction stream while
modelling the machine's speculation penalties explicitly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass


class DynamicInst:
    """One committed dynamic instruction.

    Attributes:
        seq: position in the committed stream (0-based).
        pc: static instruction index.
        inst: the static :class:`Instruction`.
        op_class: functional-unit class (cached from the spec for speed).
        latency: execute latency in cycles (before memory effects).
        dest: destination architectural register or ``None`` (writes to
            the zero register are represented as ``None``).
        sources: architectural source registers actually read, with reads
            of the zero register removed.
        is_branch / is_conditional / is_load / is_store: opcode flags.
        taken: branch outcome (meaningful only for branches).
        target: next pc actually followed.
        mem_addr: word address touched by loads/stores, else ``None``.
        value: result value written (for validation/debug), else ``None``.
    """

    __slots__ = (
        "seq", "pc", "inst", "op_class", "latency", "dest", "sources",
        "is_branch", "is_conditional", "is_indirect", "is_load", "is_store",
        "taken", "target", "mem_addr", "value",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        inst: Instruction,
        *,
        taken: bool = False,
        target: int = -1,
        mem_addr: int | None = None,
        value: int | None = None,
    ) -> None:
        spec = inst.spec
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.op_class = spec.op_class
        self.latency = spec.latency
        self.dest = inst.dest if inst.writes_register() else None
        self.sources = tuple(s for s in inst.sources() if s != 0)
        self.is_branch = spec.is_branch
        self.is_conditional = spec.is_conditional
        self.is_indirect = spec.is_indirect
        self.is_load = spec.is_load
        self.is_store = spec.is_store
        self.taken = taken
        self.target = target
        self.mem_addr = mem_addr
        self.value = value

    @property
    def writes_register(self) -> bool:
        """True when this instruction produces a register value."""
        return self.dest is not None

    def __repr__(self) -> str:
        return f"DynamicInst(seq={self.seq}, pc={self.pc}, {self.inst})"


class Trace:
    """A materialized committed-instruction trace.

    Thin wrapper over a list of :class:`DynamicInst` that records the
    program it came from and basic summary statistics.
    """

    def __init__(self, records: Iterable[DynamicInst], name: str = "") -> None:
        self.records: list[DynamicInst] = list(records)
        self.name = name
        #: ``(kernel_name, scale, seed)`` when the trace came from the
        #: benchmark-suite registry, else ``None``. Provenance lets the
        #: experiment engine re-derive the trace inside worker processes
        #: and key its on-disk result cache without shipping or hashing
        #: the record list itself.
        self.provenance: tuple[str, float, int | None] | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DynamicInst]:
        return iter(self.records)

    def __getitem__(self, index: int) -> DynamicInst:
        return self.records[index]

    def branch_count(self) -> int:
        """Number of conditional branches in the trace."""
        return sum(1 for r in self.records if r.is_conditional)

    def load_count(self) -> int:
        """Number of loads in the trace."""
        return sum(1 for r in self.records if r.is_load)

    def store_count(self) -> int:
        """Number of stores in the trace."""
        return sum(1 for r in self.records if r.is_store)

    def mix(self) -> dict[OpClass, int]:
        """Instruction count by functional-unit class."""
        counts: dict[OpClass, int] = {}
        for record in self.records:
            counts[record.op_class] = counts.get(record.op_class, 0) + 1
        return counts

    def degree_of_use_histogram(self) -> dict[int, int]:
        """Histogram of the *actual* degree of use of produced values.

        The degree of use of a value is the number of dynamic reads of the
        defining write before the architectural register is overwritten
        (or the trace ends). This is the quantity the paper's degree-of-use
        predictor learns (paper §3.3).
        """
        histogram: dict[int, int] = {}
        live_uses: dict[int, int] = {}
        for record in self.records:
            for src in record.sources:
                if src in live_uses:
                    live_uses[src] += 1
            if record.dest is not None:
                previous = live_uses.pop(record.dest, None)
                if previous is not None:
                    histogram[previous] = histogram.get(previous, 0) + 1
                live_uses[record.dest] = 0
        for count in live_uses.values():
            histogram[count] = histogram.get(count, 0) + 1
        return histogram
