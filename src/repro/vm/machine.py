"""Functional virtual machine for the synthetic ISA.

The VM executes a :class:`~repro.isa.program.Program` at architectural
level and emits the committed dynamic instruction trace consumed by the
timing model. It plays the role SimpleScalar's functional core plays in
the paper's infrastructure.

All arithmetic is 64-bit two's complement. Memory is word-addressed
(a flat ``dict`` of word address -> value) which is sufficient because the
timing model only needs addresses, not byte-level layout.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.instruction import NUM_ARCH_REGS, ZERO_REG
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.vm.trace import DynamicInst, Trace

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def _to_signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


class Machine:
    """Functional interpreter producing a committed dynamic trace.

    Args:
        program: the program to execute.
        max_instructions: dynamic instruction budget; exceeding it raises
            :class:`ExecutionLimitExceeded` (guards against runaway loops
            in workload generators).
    """

    def __init__(self, program: Program, max_instructions: int = 5_000_000):
        program.validate()
        self.program = program
        self.max_instructions = max_instructions
        self.regs = [0] * NUM_ARCH_REGS
        self.memory: dict[int, int] = dict(program.data)
        self.pc = program.entry_point()
        self.halted = False
        self.output: list[int] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> Trace:
        """Execute until HALT and return the full committed trace."""
        return Trace(list(self.step_all()), name=self.program.name)

    def step_all(self) -> Iterator[DynamicInst]:
        """Yield committed dynamic instructions until the program halts."""
        while not self.halted:
            yield self.step()

    def step(self) -> DynamicInst:
        """Execute one instruction and return its dynamic record.

        Raises:
            ExecutionError: on an out-of-range pc or illegal operation.
            ExecutionLimitExceeded: when the instruction budget runs out.
        """
        if self.halted:
            raise ExecutionError("machine is halted")
        if self._seq >= self.max_instructions:
            raise ExecutionLimitExceeded(
                f"{self.program.name}: exceeded budget of "
                f"{self.max_instructions} instructions"
            )
        if not 0 <= self.pc < len(self.program):
            raise ExecutionError(
                f"{self.program.name}: pc {self.pc} out of range"
            )
        pc = self.pc
        inst = self.program[pc]
        op = inst.opcode
        regs = self.regs
        src1 = regs[inst.src1] if inst.src1 is not None else 0
        src2 = regs[inst.src2] if inst.src2 is not None else 0

        next_pc = pc + 1
        taken = False
        target = -1
        mem_addr: int | None = None
        result: int | None = None

        if op is Opcode.ADD:
            result = _to_signed(src1 + src2)
        elif op is Opcode.SUB:
            result = _to_signed(src1 - src2)
        elif op is Opcode.AND:
            result = src1 & src2
        elif op is Opcode.OR:
            result = src1 | src2
        elif op is Opcode.XOR:
            result = src1 ^ src2
        elif op is Opcode.SLL:
            result = _to_signed(src1 << (src2 & 63))
        elif op is Opcode.SRL:
            result = (src1 & _MASK) >> (src2 & 63)
        elif op is Opcode.SRA:
            result = src1 >> (src2 & 63)
        elif op is Opcode.SLT:
            result = int(src1 < src2)
        elif op is Opcode.SLTU:
            result = int((src1 & _MASK) < (src2 & _MASK))
        elif op is Opcode.ADDI:
            result = _to_signed(src1 + inst.imm)
        elif op is Opcode.ANDI:
            result = src1 & inst.imm
        elif op is Opcode.ORI:
            result = src1 | inst.imm
        elif op is Opcode.XORI:
            result = src1 ^ inst.imm
        elif op is Opcode.SLLI:
            result = _to_signed(src1 << (inst.imm & 63))
        elif op is Opcode.SRLI:
            result = (src1 & _MASK) >> (inst.imm & 63)
        elif op is Opcode.SLTI:
            result = int(src1 < inst.imm)
        elif op is Opcode.LUI:
            result = _to_signed(inst.imm << 16)
        elif op is Opcode.MOV:
            result = src1
        elif op is Opcode.MUL:
            result = _to_signed(src1 * src2)
        elif op is Opcode.MULH:
            result = _to_signed((src1 * src2) >> 64)
        elif op is Opcode.DIV:
            result = _to_signed(int(src1 / src2)) if src2 else -1
        elif op is Opcode.REM:
            result = _to_signed(src1 - src2 * int(src1 / src2)) if src2 else src1
        elif op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
            # FP ops are modelled on integer state; only latency matters
            # to the timing model. Division by zero saturates.
            if op is Opcode.FADD:
                result = _to_signed(src1 + src2)
            elif op is Opcode.FSUB:
                result = _to_signed(src1 - src2)
            elif op is Opcode.FMUL:
                result = _to_signed(src1 * src2)
            else:
                result = _to_signed(int(src1 / src2)) if src2 else 0
        elif op in (Opcode.LW, Opcode.LB):
            mem_addr = _to_signed(src1 + inst.imm)
            result = self.memory.get(mem_addr, 0)
            if op is Opcode.LB:
                result &= 0xFF
        elif op in (Opcode.SW, Opcode.SB):
            mem_addr = _to_signed(src1 + inst.imm)
            value = src2 & 0xFF if op is Opcode.SB else src2
            self.memory[mem_addr] = value
        elif op is Opcode.BEQ:
            taken = src1 == src2
        elif op is Opcode.BNE:
            taken = src1 != src2
        elif op is Opcode.BLT:
            taken = src1 < src2
        elif op is Opcode.BGE:
            taken = src1 >= src2
        elif op is Opcode.JAL:
            result = pc + 1
            taken = True
            next_pc = inst.imm
        elif op is Opcode.JALR:
            result = pc + 1
            taken = True
            next_pc = _to_signed(src1 + inst.imm)
        elif op is Opcode.RET:
            taken = True
            next_pc = src1
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
        elif op is Opcode.OUT:
            self.output.append(src1)
        else:  # pragma: no cover - exhaustive over Opcode
            raise ExecutionError(f"unimplemented opcode {op}")

        if inst.spec.is_conditional and taken:
            next_pc = inst.imm
        if inst.spec.is_branch:
            target = next_pc

        if inst.dest is not None and inst.dest != ZERO_REG:
            if result is None:  # pragma: no cover - defensive
                raise ExecutionError(f"{op} produced no result")
            regs[inst.dest] = result

        record = DynamicInst(
            self._seq, pc, inst,
            taken=taken, target=target, mem_addr=mem_addr,
            value=result if inst.dest not in (None, ZERO_REG) else None,
        )
        self._seq += 1
        self.pc = next_pc
        return record


def run_program(program: Program, max_instructions: int = 5_000_000) -> Trace:
    """Convenience wrapper: execute *program* and return its trace."""
    return Machine(program, max_instructions=max_instructions).run()
