"""Functional virtual machine for the synthetic ISA.

The VM executes a :class:`~repro.isa.program.Program` at architectural
level and emits the committed dynamic instruction trace consumed by the
timing model. It plays the role SimpleScalar's functional core plays in
the paper's infrastructure.

Two execution paths produce bit-identical traces:

* the **predecoded fast path** (default): each static instruction is
  decoded once into a specialized step closure — operand indices, the
  immediate, the opcode's value function, and the shared
  :func:`~repro.vm.trace.static_meta` tuple are all bound at decode
  time — so the per-step work is one dispatch-table index, the
  arithmetic itself, and a fast :meth:`DynamicInst.from_decoded`
  record build;
* the **reference interpreter** (``predecode=False``): the original
  if/elif opcode chain, kept as the semantic reference for equivalence
  tests and the trace-factory benchmark.

All arithmetic is 64-bit two's complement. Memory is word-addressed
(a flat ``dict`` of word address -> value) which is sufficient because the
timing model only needs addresses, not byte-level layout.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.instruction import NUM_ARCH_REGS, ZERO_REG
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.vm.trace import DynamicInst, Trace, static_meta

_MASK = (1 << 64) - 1
_SIGN = 1 << 63
_TWO64 = 1 << 64


def _to_signed(value: int) -> int:
    value &= _MASK
    return value - _TWO64 if value & _SIGN else value


def _div_trunc(a: int, b: int) -> int:
    """Sign-correct truncating 64-bit division; division by zero -> -1.

    Exact for the full 64-bit range (Python's float-division shortcut
    loses precision beyond 2^53). The lone overflow case,
    ``-2^63 / -1``, wraps to ``-2^63`` as two's-complement hardware does.
    """
    if b == 0:
        return -1
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return _to_signed(quotient)


def _rem_trunc(a: int, b: int) -> int:
    """Truncating remainder (sign follows the dividend); ``b == 0 -> a``."""
    if b == 0:
        return a
    remainder = abs(a) % abs(b)
    return -remainder if a < 0 else remainder


# ----------------------------------------------------------------------
# Per-opcode value functions for the predecoded path. Each implements
# exactly the arithmetic of the reference interpreter below.

_ts = _to_signed

_ALU2: dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: lambda a, b: _ts(a + b),
    Opcode.SUB: lambda a, b: _ts(a - b),
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: _ts(a << (b & 63)),
    Opcode.SRL: lambda a, b: (a & _MASK) >> (b & 63),
    Opcode.SRA: lambda a, b: a >> (b & 63),
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SLTU: lambda a, b: 1 if (a & _MASK) < (b & _MASK) else 0,
    Opcode.MUL: lambda a, b: _ts(a * b),
    Opcode.MULH: lambda a, b: _ts((a * b) >> 64),
    Opcode.DIV: _div_trunc,
    Opcode.REM: _rem_trunc,
    # FP ops are modelled on integer state; only latency matters to the
    # timing model. Division by zero saturates.
    Opcode.FADD: lambda a, b: _ts(a + b),
    Opcode.FSUB: lambda a, b: _ts(a - b),
    Opcode.FMUL: lambda a, b: _ts(a * b),
    Opcode.FDIV: lambda a, b: _ts(int(a / b)) if b else 0,
}

_ALU1: dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADDI: lambda a, imm: _ts(a + imm),
    Opcode.ANDI: lambda a, imm: a & imm,
    Opcode.ORI: lambda a, imm: a | imm,
    Opcode.XORI: lambda a, imm: a ^ imm,
    Opcode.SLLI: lambda a, imm: _ts(a << (imm & 63)),
    Opcode.SRLI: lambda a, imm: (a & _MASK) >> (imm & 63),
    Opcode.SLTI: lambda a, imm: 1 if a < imm else 0,
    Opcode.MOV: lambda a, imm: a,
}

_COND: dict[Opcode, Callable[[int, int], bool]] = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
}


class Machine:
    """Functional interpreter producing a committed dynamic trace.

    Args:
        program: the program to execute.
        max_instructions: dynamic instruction budget; exceeding it raises
            :class:`ExecutionLimitExceeded` (guards against runaway loops
            in workload generators).
        predecode: use the predecoded fast dispatch path (default); pass
            ``False`` for the reference if/elif interpreter.
    """

    def __init__(
        self,
        program: Program,
        max_instructions: int = 5_000_000,
        predecode: bool = True,
    ):
        program.validate()
        self.program = program
        self.max_instructions = max_instructions
        self.regs = [0] * NUM_ARCH_REGS
        self.memory: dict[int, int] = dict(program.data)
        self.pc = program.entry_point()
        self.halted = False
        self.output: list[int] = []
        self._seq = 0
        self._handlers: list[Callable] | None = None
        if predecode:
            self._handlers = [
                self._compile_handler(pc, inst)
                for pc, inst in enumerate(program.instructions)
            ]

    # ------------------------------------------------------------------
    # Execution

    def run(self) -> Trace:
        """Execute until HALT and return the full committed trace."""
        if self._handlers is not None:
            return Trace(self._run_predecoded(), name=self.program.name)
        return Trace(list(self.step_all()), name=self.program.name)

    def step_all(self) -> Iterator[DynamicInst]:
        """Yield committed dynamic instructions until the program halts."""
        while not self.halted:
            yield self.step()

    def step(self) -> DynamicInst:
        """Execute one instruction and return its dynamic record.

        Raises:
            ExecutionError: on an out-of-range pc or illegal operation.
            ExecutionLimitExceeded: when the instruction budget runs out.
        """
        if self.halted:
            raise ExecutionError("machine is halted")
        if self._seq >= self.max_instructions:
            raise ExecutionLimitExceeded(
                f"{self.program.name}: exceeded budget of "
                f"{self.max_instructions} instructions"
            )
        if not 0 <= self.pc < len(self.program):
            raise ExecutionError(
                f"{self.program.name}: pc {self.pc} out of range"
            )
        if self._handlers is not None:
            record, next_pc = self._handlers[self.pc](self._seq)
            self._seq += 1
            if next_pc is None:
                self.halted = True
                self.pc += 1
            else:
                self.pc = next_pc
            return record
        return self._step_interpret()

    def _run_predecoded(self) -> list[DynamicInst]:
        """Hot loop of the predecoded path: dispatch, append, advance."""
        if self.halted:
            raise ExecutionError("machine is halted")
        handlers = self._handlers
        num_static = len(handlers)
        limit = self.max_instructions
        records: list[DynamicInst] = []
        append = records.append
        seq = self._seq
        pc = self.pc
        while True:
            if seq >= limit or not 0 <= pc < num_static:
                self._seq = seq
                self.pc = pc
                if seq >= limit:
                    raise ExecutionLimitExceeded(
                        f"{self.program.name}: exceeded budget of "
                        f"{limit} instructions"
                    )
                raise ExecutionError(
                    f"{self.program.name}: pc {pc} out of range"
                )
            record, next_pc = handlers[pc](seq)
            append(record)
            seq += 1
            if next_pc is None:
                self.halted = True
                self._seq = seq
                self.pc = pc + 1
                return records
            pc = next_pc

    # ------------------------------------------------------------------
    # Predecode: one specialized closure per static instruction.

    def _compile_handler(self, pc: int, inst) -> Callable:
        """Compile one static instruction into its step closure.

        Each closure takes the dynamic sequence number and returns
        ``(record, next_pc)``; ``next_pc`` of ``None`` means HALT. All
        operand state is bound through default arguments (locals, not
        cells) so the hot path touches no ``self`` attributes.
        """
        op = inst.opcode
        regs = self.regs
        memory = self.memory
        decoded = static_meta(pc, inst)
        new = DynamicInst.from_decoded
        dest = inst.dest if inst.dest not in (None, ZERO_REG) else None
        s1 = inst.src1
        s2 = inst.src2
        imm = inst.imm
        nxt = pc + 1

        val2 = _ALU2.get(op)
        if val2 is not None:
            if dest is None:  # result discarded (zero-register write)
                def handler(seq, dec=decoded, new=new, nxt=nxt):
                    return new(dec, seq, False, -1, None, None), nxt
            else:
                def handler(seq, regs=regs, s1=s1, s2=s2, d=dest,
                            val=val2, dec=decoded, new=new, nxt=nxt):
                    result = val(regs[s1], regs[s2])
                    regs[d] = result
                    return new(dec, seq, False, -1, None, result), nxt
            return handler

        val1 = _ALU1.get(op)
        if val1 is not None:
            if dest is None:
                def handler(seq, dec=decoded, new=new, nxt=nxt):
                    return new(dec, seq, False, -1, None, None), nxt
            else:
                def handler(seq, regs=regs, s1=s1, imm=imm, d=dest,
                            val=val1, dec=decoded, new=new, nxt=nxt):
                    result = val(regs[s1], imm)
                    regs[d] = result
                    return new(dec, seq, False, -1, None, result), nxt
            return handler

        cond = _COND.get(op)
        if cond is not None:
            def handler(seq, regs=regs, s1=s1, s2=s2, imm=imm,
                        cond=cond, dec=decoded, new=new, nxt=nxt):
                if cond(regs[s1], regs[s2]):
                    return new(dec, seq, True, imm, None, None), imm
                return new(dec, seq, False, nxt, None, None), nxt
            return handler

        if op is Opcode.LUI:
            constant = _to_signed(imm << 16)
            if dest is None:
                def handler(seq, dec=decoded, new=new, nxt=nxt):
                    return new(dec, seq, False, -1, None, None), nxt
            else:
                def handler(seq, regs=regs, d=dest, c=constant,
                            dec=decoded, new=new, nxt=nxt):
                    regs[d] = c
                    return new(dec, seq, False, -1, None, c), nxt
            return handler

        if op in (Opcode.LW, Opcode.LB):
            low_byte = op is Opcode.LB
            def handler(seq, regs=regs, memory=memory, s1=s1, imm=imm,
                        d=dest, lb=low_byte, dec=decoded, new=new, nxt=nxt):
                addr = (regs[s1] + imm) & _MASK
                if addr & _SIGN:
                    addr -= _TWO64
                result = memory.get(addr, 0)
                if lb:
                    result &= 0xFF
                if d is None:
                    return new(dec, seq, False, -1, addr, None), nxt
                regs[d] = result
                return new(dec, seq, False, -1, addr, result), nxt
            return handler

        if op in (Opcode.SW, Opcode.SB):
            low_byte = op is Opcode.SB
            def handler(seq, regs=regs, memory=memory, s1=s1, s2=s2,
                        imm=imm, lb=low_byte, dec=decoded, new=new, nxt=nxt):
                addr = (regs[s1] + imm) & _MASK
                if addr & _SIGN:
                    addr -= _TWO64
                memory[addr] = regs[s2] & 0xFF if lb else regs[s2]
                return new(dec, seq, False, -1, addr, None), nxt
            return handler

        if op is Opcode.JAL:
            link = pc + 1
            def handler(seq, regs=regs, d=dest, link=link, imm=imm,
                        dec=decoded, new=new):
                if d is None:
                    return new(dec, seq, True, imm, None, None), imm
                regs[d] = link
                return new(dec, seq, True, imm, None, link), imm
            return handler

        if op is Opcode.JALR:
            link = pc + 1
            def handler(seq, regs=regs, s1=s1, imm=imm, d=dest, link=link,
                        dec=decoded, new=new):
                target = (regs[s1] + imm) & _MASK
                if target & _SIGN:
                    target -= _TWO64
                if d is not None:
                    regs[d] = link
                return new(
                    dec, seq, True, target, None,
                    link if d is not None else None,
                ), target
            return handler

        if op is Opcode.RET:
            def handler(seq, regs=regs, s1=s1, dec=decoded, new=new):
                target = regs[s1]
                return new(dec, seq, True, target, None, None), target
            return handler

        if op is Opcode.NOP:
            def handler(seq, dec=decoded, new=new, nxt=nxt):
                return new(dec, seq, False, -1, None, None), nxt
            return handler

        if op is Opcode.HALT:
            def handler(seq, dec=decoded, new=new):
                return new(dec, seq, False, -1, None, None), None
            return handler

        if op is Opcode.OUT:
            output = self.output
            def handler(seq, regs=regs, s1=s1, out=output,
                        dec=decoded, new=new, nxt=nxt):
                out.append(regs[s1])
                return new(dec, seq, False, -1, None, None), nxt
            return handler

        raise ExecutionError(f"unimplemented opcode {op}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Reference interpreter (semantic ground truth).

    def _step_interpret(self) -> DynamicInst:
        """One step of the original if/elif interpreter."""
        pc = self.pc
        inst = self.program[pc]
        op = inst.opcode
        regs = self.regs
        src1 = regs[inst.src1] if inst.src1 is not None else 0
        src2 = regs[inst.src2] if inst.src2 is not None else 0

        next_pc = pc + 1
        taken = False
        target = -1
        mem_addr: int | None = None
        result: int | None = None

        if op is Opcode.ADD:
            result = _to_signed(src1 + src2)
        elif op is Opcode.SUB:
            result = _to_signed(src1 - src2)
        elif op is Opcode.AND:
            result = src1 & src2
        elif op is Opcode.OR:
            result = src1 | src2
        elif op is Opcode.XOR:
            result = src1 ^ src2
        elif op is Opcode.SLL:
            result = _to_signed(src1 << (src2 & 63))
        elif op is Opcode.SRL:
            result = (src1 & _MASK) >> (src2 & 63)
        elif op is Opcode.SRA:
            result = src1 >> (src2 & 63)
        elif op is Opcode.SLT:
            result = int(src1 < src2)
        elif op is Opcode.SLTU:
            result = int((src1 & _MASK) < (src2 & _MASK))
        elif op is Opcode.ADDI:
            result = _to_signed(src1 + inst.imm)
        elif op is Opcode.ANDI:
            result = src1 & inst.imm
        elif op is Opcode.ORI:
            result = src1 | inst.imm
        elif op is Opcode.XORI:
            result = src1 ^ inst.imm
        elif op is Opcode.SLLI:
            result = _to_signed(src1 << (inst.imm & 63))
        elif op is Opcode.SRLI:
            result = (src1 & _MASK) >> (inst.imm & 63)
        elif op is Opcode.SLTI:
            result = int(src1 < inst.imm)
        elif op is Opcode.LUI:
            result = _to_signed(inst.imm << 16)
        elif op is Opcode.MOV:
            result = src1
        elif op is Opcode.MUL:
            result = _to_signed(src1 * src2)
        elif op is Opcode.MULH:
            result = _to_signed((src1 * src2) >> 64)
        elif op is Opcode.DIV:
            result = _div_trunc(src1, src2)
        elif op is Opcode.REM:
            result = _rem_trunc(src1, src2)
        elif op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
            # FP ops are modelled on integer state; only latency matters
            # to the timing model. Division by zero saturates.
            if op is Opcode.FADD:
                result = _to_signed(src1 + src2)
            elif op is Opcode.FSUB:
                result = _to_signed(src1 - src2)
            elif op is Opcode.FMUL:
                result = _to_signed(src1 * src2)
            else:
                result = _to_signed(int(src1 / src2)) if src2 else 0
        elif op in (Opcode.LW, Opcode.LB):
            mem_addr = _to_signed(src1 + inst.imm)
            result = self.memory.get(mem_addr, 0)
            if op is Opcode.LB:
                result &= 0xFF
        elif op in (Opcode.SW, Opcode.SB):
            mem_addr = _to_signed(src1 + inst.imm)
            value = src2 & 0xFF if op is Opcode.SB else src2
            self.memory[mem_addr] = value
        elif op is Opcode.BEQ:
            taken = src1 == src2
        elif op is Opcode.BNE:
            taken = src1 != src2
        elif op is Opcode.BLT:
            taken = src1 < src2
        elif op is Opcode.BGE:
            taken = src1 >= src2
        elif op is Opcode.JAL:
            result = pc + 1
            taken = True
            next_pc = inst.imm
        elif op is Opcode.JALR:
            result = pc + 1
            taken = True
            next_pc = _to_signed(src1 + inst.imm)
        elif op is Opcode.RET:
            taken = True
            next_pc = src1
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
        elif op is Opcode.OUT:
            self.output.append(src1)
        else:  # pragma: no cover - exhaustive over Opcode
            raise ExecutionError(f"unimplemented opcode {op}")

        if inst.spec.is_conditional and taken:
            next_pc = inst.imm
        if inst.spec.is_branch:
            target = next_pc

        if inst.dest is not None and inst.dest != ZERO_REG:
            if result is None:  # pragma: no cover - defensive
                raise ExecutionError(f"{op} produced no result")
            regs[inst.dest] = result

        record = DynamicInst(
            self._seq, pc, inst,
            taken=taken, target=target, mem_addr=mem_addr,
            value=result if inst.dest not in (None, ZERO_REG) else None,
        )
        self._seq += 1
        self.pc = next_pc
        return record


def run_program(
    program: Program,
    max_instructions: int = 5_000_000,
    predecode: bool = True,
) -> Trace:
    """Convenience wrapper: execute *program* and return its trace."""
    machine = Machine(
        program, max_instructions=max_instructions, predecode=predecode
    )
    return machine.run()
