"""Functional execution: VM, dynamic-trace representation, trace factory."""

from repro.vm.machine import Machine, run_program
from repro.vm.trace import (
    DynamicInst,
    Trace,
    TraceAnalysis,
    compute_fcf,
    pack_trace,
    static_meta,
    unpack_trace,
)

__all__ = [
    "DynamicInst",
    "Machine",
    "Trace",
    "TraceAnalysis",
    "compute_fcf",
    "pack_trace",
    "run_program",
    "static_meta",
    "unpack_trace",
]
