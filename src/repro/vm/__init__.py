"""Functional execution: VM and dynamic-trace representation."""

from repro.vm.machine import Machine, run_program
from repro.vm.trace import DynamicInst, Trace

__all__ = ["DynamicInst", "Machine", "Trace", "run_program"]
