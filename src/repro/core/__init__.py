"""Core timing model: configuration, pipeline, statistics, lifetimes."""

from repro.core.config import (
    NAMED_CONFIGS,
    MachineConfig,
    lru_config,
    monolithic_config,
    non_bypass_config,
    two_level_config,
    use_based_config,
)
from repro.core.lifetimes import (
    OccupancyCdf,
    PhaseSummary,
    allocated_cdf,
    concatenate_records,
    live_cdf,
    mean_phase_summary,
    occupancy_cdf,
    phase_summary,
)
from repro.core.debug import dependence_report, render_timeline
from repro.core.pipeline import Pipeline
from repro.core.simulator import (
    mean_ipc,
    simulate,
    simulate_benchmark,
    simulate_suite,
)
from repro.core.stats import LifetimeRecord, SimStats
from repro.core.validate import (
    TimingViolation,
    check_dataflow_timing,
    check_issue_bandwidth,
)

__all__ = [
    "LifetimeRecord",
    "MachineConfig",
    "NAMED_CONFIGS",
    "OccupancyCdf",
    "PhaseSummary",
    "Pipeline",
    "SimStats",
    "TimingViolation",
    "check_dataflow_timing",
    "check_issue_bandwidth",
    "dependence_report",
    "render_timeline",
    "allocated_cdf",
    "concatenate_records",
    "live_cdf",
    "lru_config",
    "mean_ipc",
    "mean_phase_summary",
    "monolithic_config",
    "non_bypass_config",
    "occupancy_cdf",
    "phase_summary",
    "simulate",
    "simulate_benchmark",
    "simulate_suite",
    "two_level_config",
    "use_based_config",
]
