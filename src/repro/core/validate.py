"""Dataflow-timing validation of completed pipeline runs.

The fundamental correctness invariant of any cycle-level timing model is
that no instruction begins executing before its operands exist: for
every consumer, ``consumer.exec_start >= producer.exec_end + 1``. A
violation means the model let a dependent run on a value that had not
been produced — exactly the class of bug that inflates IPC silently
(e.g. a dependent scheduled against a stale hit-assumed load latency).

Run a pipeline with ``record_timing=True`` and call
:func:`check_dataflow_timing`; it returns the list of violations (empty
on a clean run). The property-test suite runs this over random programs
and every storage scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import Pipeline


@dataclass(frozen=True)
class TimingViolation:
    """One dataflow-timing violation found in a run.

    Attributes:
        consumer_seq / producer_seq: dynamic instruction ids.
        consumer_exec_start: cycle the consumer began executing.
        producer_exec_end: last execute cycle of the producer.
    """

    consumer_seq: int
    producer_seq: int
    consumer_exec_start: int
    producer_exec_end: int

    def __str__(self) -> str:
        return (
            f"seq {self.consumer_seq} executes at "
            f"{self.consumer_exec_start} but its producer seq "
            f"{self.producer_seq} finishes at {self.producer_exec_end}"
        )


def check_dataflow_timing(pipeline: Pipeline) -> list[TimingViolation]:
    """Verify operand-before-execute ordering over a completed run.

    Args:
        pipeline: a pipeline that ran with ``config.record_timing=True``.

    Returns:
        All violations found (empty list = clean).

    Raises:
        ValueError: if the run did not record timing.
    """
    log = pipeline.issue_log
    if not log:
        raise ValueError(
            "check_dataflow_timing needs config.record_timing=True"
        )
    violations = []
    for op in log.values():
        for producer_seq in op.src_producer_seqs:
            if producer_seq < 0:
                continue
            producer = log.get(producer_seq)
            if producer is None:
                continue  # producer never issued (impossible if retired)
            if op.exec_start <= producer.exec_end:
                violations.append(TimingViolation(
                    consumer_seq=op.seq,
                    producer_seq=producer_seq,
                    consumer_exec_start=op.exec_start,
                    producer_exec_end=producer.exec_end,
                ))
    return violations


def check_issue_bandwidth(pipeline: Pipeline) -> list[str]:
    """Verify per-cycle issue-width and FU-pool limits were respected.

    Returns:
        Human-readable violation descriptions (empty list = clean).
    """
    log = pipeline.issue_log
    if not log:
        raise ValueError(
            "check_issue_bandwidth needs config.record_timing=True"
        )
    config = pipeline.config
    per_cycle: dict[int, int] = {}
    per_cycle_class: dict[tuple[int, object], int] = {}
    for op in log.values():
        per_cycle[op.issue_time] = per_cycle.get(op.issue_time, 0) + 1
        key = (op.issue_time, op.dyn.op_class)
        per_cycle_class[key] = per_cycle_class.get(key, 0) + 1
    problems = []
    for cycle, count in per_cycle.items():
        if count > config.issue_width:
            problems.append(
                f"cycle {cycle}: issued {count} > width "
                f"{config.issue_width}"
            )
    for (cycle, op_class), count in per_cycle_class.items():
        pool = config.fu_counts.get(op_class, 1)
        if count > pool:
            problems.append(
                f"cycle {cycle}: {count} x {op_class.value} > pool {pool}"
            )
    return problems
