"""Simulation statistics containers.

:class:`SimStats` is the unit of exchange between the simulator and the
analysis layer, so it must travel well: across process boundaries (the
parallel experiment engine pickles results back from its workers) and
onto disk (the content-addressed result cache stores JSON). Both paths
use the compact :meth:`SimStats.to_dict` form, which flattens the
potentially huge lifetime log into a single integer array instead of a
list of objects; :meth:`SimStats.from_dict` reverses it exactly.

``to_dict()`` is also the repo's *equality surface*: the per-cycle and
event-driven timing cores (``REPRO_SIM_CORE``, DESIGN.md §10) and the
engine's batched/unbatched sweep paths are required to produce
``to_dict()``-equal payloads for the same (trace, config) — every field
here, including the packed lifetime log, participates in that
bit-identity contract, so adding a field means accounting for it in
both cores.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.regfile.register_cache import CacheStats

#: Bump when the serialized form of :class:`SimStats` changes shape, so
#: the engine's on-disk result cache invalidates stale entries.
STATS_SCHEMA_VERSION = 1


@dataclass(slots=True)
class LifetimeRecord:
    """Lifecycle timestamps of one physical-register allocation.

    The three phases of Figure 1 derive from these: empty = write -
    alloc; live = last_read - write; dead = free - last_read.
    """

    alloc: int
    write: int
    last_read: int
    free: int

    @property
    def empty_time(self) -> int:
        return max(0, self.write - self.alloc)

    @property
    def live_time(self) -> int:
        return max(0, self.last_read - self.write)

    @property
    def dead_time(self) -> int:
        return max(0, self.free - self.last_read)

    def to_tuple(self) -> tuple[int, int, int, int]:
        """Compact 4-tuple form used by the flat serialization."""
        return (self.alloc, self.write, self.last_read, self.free)

    @classmethod
    def from_tuple(cls, values) -> "LifetimeRecord":
        """Inverse of :meth:`to_tuple`."""
        return cls(*values)


def pack_lifetimes(records: list[LifetimeRecord]) -> list[int]:
    """Flatten lifetime records into one int array (4 ints per record)."""
    flat: list[int] = []
    extend = flat.extend
    for record in records:
        extend((record.alloc, record.write, record.last_read, record.free))
    return flat


def unpack_lifetimes(flat: list[int]) -> list[LifetimeRecord]:
    """Inverse of :func:`pack_lifetimes`."""
    return [
        LifetimeRecord(flat[i], flat[i + 1], flat[i + 2], flat[i + 3])
        for i in range(0, len(flat), 4)
    ]


@dataclass
class SimStats:
    """Everything measured during one timing-simulation run.

    Rate properties (:attr:`ipc`, :attr:`bypass_fraction`,
    :attr:`predictor_accuracy`, and every ``*_bandwidth``) are defined
    to return ``0.0`` — never raise — when their denominator is zero
    (an empty or zero-cycle run), so report code can format any
    :class:`SimStats` without guarding against fresh instances.
    """

    benchmark: str = ""
    scheme: str = ""
    cycles: int = 0
    retired: int = 0

    # Operand sourcing at issue.
    operands_bypass: int = 0
    operands_bypass_first: int = 0
    operands_storage: int = 0

    # Register cache (None for non-cache schemes).
    cache: CacheStats | None = None

    # Register file / backing file traffic.
    rf_reads: int = 0
    rf_writes: int = 0

    # Speculation events.
    branch_mispredicts: int = 0
    rc_miss_events: int = 0
    load_miss_replays: int = 0
    issue_blocked_cycles: int = 0

    # Front-end and rename stalls.
    dispatch_stall_cycles: int = 0
    rename_stall_cycles: int = 0  # two-level only

    # Two-level move engine.
    tl_moves: int = 0
    tl_restores: int = 0
    tl_recovery_stalls: int = 0

    # Degree-of-use predictor.
    predictor_queries: int = 0
    predictor_supplied: int = 0
    predictor_correct: int = 0

    # Per-value lifetime log (Figure 1 / Figure 2 inputs).
    lifetimes: list[LifetimeRecord] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def bypass_fraction(self) -> float:
        """Fraction of operands supplied by the bypass network."""
        total = self.operands_bypass + self.operands_storage
        return self.operands_bypass / total if total else 0.0

    @property
    def predictor_accuracy(self) -> float:
        """Degree-of-use predictor accuracy on supplied predictions."""
        if not self.predictor_supplied:
            return 0.0
        return self.predictor_correct / self.predictor_supplied

    # Bandwidth figures (Figure 9): accesses per cycle.

    @property
    def cache_read_bandwidth(self) -> float:
        if not self.cycles or self.cache is None:
            return 0.0
        return self.cache.reads / self.cycles

    @property
    def cache_write_bandwidth(self) -> float:
        if not self.cycles or self.cache is None:
            return 0.0
        writes = self.cache.writes_initial + self.cache.writes_fill
        return writes / self.cycles

    @property
    def rf_read_bandwidth(self) -> float:
        return self.rf_reads / self.cycles if self.cycles else 0.0

    @property
    def rf_write_bandwidth(self) -> float:
        return self.rf_writes / self.cycles if self.cycles else 0.0

    def summary(self) -> dict[str, float]:
        """Flat dict of headline numbers (for reports and tests)."""
        out = {
            "ipc": self.ipc,
            "cycles": float(self.cycles),
            "retired": float(self.retired),
            "bypass_fraction": self.bypass_fraction,
            "branch_mispredicts": float(self.branch_mispredicts),
            "predictor_accuracy": self.predictor_accuracy,
        }
        if self.cache is not None:
            out.update({
                "miss_rate": self.cache.miss_rate,
                "reads_per_cached_value": self.cache.reads_per_cached_value,
                "cache_count": self.cache.cache_count,
                "avg_occupancy": self.cache.average_occupancy(self.cycles),
                "avg_entry_lifetime": self.cache.average_lifetime,
            })
        return out

    # ------------------------------------------------------------------
    # Aggregation (the observability summary path).

    @classmethod
    def merge(cls, runs: "Iterable[SimStats]") -> "SimStats":
        """Pool several runs into one aggregate :class:`SimStats`.

        Integer counters add; the cache sub-records merge via
        :meth:`CacheStats.merge` (present when any run had one); the
        lifetime logs concatenate. ``benchmark`` joins the distinct
        input names with ``+`` and ``scheme`` is kept when unanimous
        (``mixed`` otherwise), so derived rates (:attr:`ipc`,
        :attr:`bypass_fraction`, ...) read as suite-level aggregates.
        Merging zero runs returns an empty instance (all rates 0.0).
        """
        runs = list(runs)
        merged = cls()
        benchmarks: list[str] = []
        schemes: list[str] = []
        caches = []
        for stats in runs:
            if stats.benchmark and stats.benchmark not in benchmarks:
                benchmarks.append(stats.benchmark)
            if stats.scheme and stats.scheme not in schemes:
                schemes.append(stats.scheme)
            if stats.cache is not None:
                caches.append(stats.cache)
            for spec in dataclasses.fields(cls):
                if spec.name in ("benchmark", "scheme", "cache", "lifetimes"):
                    continue
                setattr(
                    merged, spec.name,
                    getattr(merged, spec.name) + getattr(stats, spec.name),
                )
            merged.lifetimes.extend(stats.lifetimes)
        merged.benchmark = "+".join(benchmarks)
        merged.scheme = (
            schemes[0] if len(schemes) == 1 else ("mixed" if schemes else "")
        )
        if caches:
            merged.cache = CacheStats.merge(caches)
        return merged

    # ------------------------------------------------------------------
    # Serialization (process boundaries and the on-disk result cache).

    def to_dict(self, include_lifetimes: bool = True) -> dict:
        """Compact plain-data form, exactly invertible by :meth:`from_dict`.

        Scalar counters are copied as-is; the cache sub-record becomes a
        plain dict; the lifetime log is packed into one flat integer
        array (4 ints per record) so serializing a long run does not drag
        millions of Python objects through pickle or JSON. Pass
        ``include_lifetimes=False`` to drop the log entirely when the
        consumer only needs the counters.
        """
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in ("cache", "lifetimes")
        }
        out["cache"] = None if self.cache is None else self.cache.to_dict()
        out["lifetimes"] = (
            pack_lifetimes(self.lifetimes) if include_lifetimes else []
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        cache = data.get("cache")
        data["cache"] = None if cache is None else CacheStats.from_dict(cache)
        data["lifetimes"] = unpack_lifetimes(data.get("lifetimes") or [])
        return cls(**data)

    def __reduce__(self):
        # Pickle via the compact dict form: the lifetime log crosses
        # process boundaries as one flat int list instead of N objects.
        return (_simstats_from_dict, (self.to_dict(),))


def _simstats_from_dict(data: dict) -> SimStats:
    """Module-level unpickling hook for :meth:`SimStats.__reduce__`."""
    return SimStats.from_dict(data)
