"""Machine configuration (Table 1 of the paper) and presets.

:class:`MachineConfig` collects every knob of the timing model. The
defaults reproduce the paper's simulated machine: 8-wide, deeply
pipelined, 128-entry issue window, 512-entry ROB, 512 physical
registers, two-stage bypass network, 3-cycle monolithic register file or
a single-cycle register cache backed by a 2-cycle backing file.

Factory helpers build the named configurations used throughout the
evaluation: ``use_based``, ``lru``, ``non_bypass`` register caches, the
``monolithic`` baseline, and the optimistic ``two_level`` register file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.isa.opcodes import OpClass


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of the simulated machine.

    Attributes are grouped to mirror Table 1; register-storage options
    select among the storage schemes the paper compares.
    """

    # --- widths and structure sizes (Table 1: Issue) ---
    fetch_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    retire_width: int = 8
    max_store_retire: int = 2
    window_size: int = 128
    rob_size: int = 512
    num_pregs: int = 512

    # --- pipeline depths (Table 1: Pipeline) ---
    front_depth: int = 11  # fetch 4 + decode 2 + rename 3 + dispatch 2
    bypass_stages: int = 2
    retire_delay: int = 3  # execute to earliest retirement

    # --- functional-unit pools (Table 1: Execution) ---
    fu_counts: dict[OpClass, int] = field(default_factory=lambda: {
        OpClass.INT_ALU: 6,
        OpClass.BRANCH: 2,
        OpClass.INT_MUL: 2,
        OpClass.FP_ALU: 4,
        OpClass.FP_MUL: 2,
        OpClass.FP_DIV: 2,
        OpClass.LOAD: 4,
        OpClass.STORE: 2,
        OpClass.SYSTEM: 8,
    })

    # --- register storage scheme ---
    storage: str = "register_cache"  # register_cache | monolithic | two_level

    # monolithic register file
    rf_read_latency: int = 3
    rf_write_latency: int | None = None  # defaults to read latency

    # register cache organization and policies
    cache_entries: int = 64
    cache_assoc: int = 2  # 0 = fully associative
    insertion: str = "use_based"  # always | non_bypass | use_based
    replacement: str = "use_based"  # lru | use_based
    indexing: str = "filtered_rr"  # preg | round_robin | minimum | filtered_rr
    backing_read_latency: int = 2
    backing_write_latency: int | None = None
    backing_read_ports: int = 1

    # use-count handling (paper §3.3 / §5.3)
    max_use: int = 7
    unknown_default: int = 1
    fill_default: int = 0
    pin_at_max: bool = True

    # degree-of-use predictor (Table 1: Use predictor)
    predictor_entries: int = 4_096
    predictor_assoc: int = 4
    predictor_enabled: bool = True
    wrongpath_use_noise: float = 0.0

    # two-level register file (paper §5.5)
    two_level_l1_extra: int = 32  # L1 size = cache_entries + this
    two_level_l2_latency: int = 2
    two_level_bandwidth: int = 4
    two_level_free_threshold: int = 12

    # Wrong-path register pressure: a mispredicted branch holds this many
    # speculatively allocated destination registers from dispatch until
    # resolution (the trace-driven front end does not inject wrong-path
    # instructions, so their rename-stage register demand is modelled as
    # a reservation; see DESIGN.md fidelity notes). The 512-register
    # machines rarely feel this; a 96-entry two-level L1 feels it hard,
    # which is the paper's point.
    wrongpath_alloc: int = 24

    # memory hierarchy toggles and latencies (Table 1: Memory). The
    # latencies feed HierarchyConfig; raising memory_latency moves a
    # memory-resident workload deeper into the stall-dominated regime
    # (the paper's mcf-like points, and the regime the event-driven
    # core's dead-cycle skipping targets).
    model_memory: bool = True
    model_icache: bool = True
    l2_latency: int = 12
    memory_latency: int = 180

    # Diagnostics: keep per-instruction issue/execute timestamps on the
    # pipeline (``Pipeline.issue_log``) for tests and debugging.
    record_timing: bool = False

    # safety valve for the simulation loop
    max_cycles: int = 30_000_000

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency.

        Raises:
            ConfigError: when fields are mutually inconsistent.
        """
        if self.storage not in ("register_cache", "monolithic", "two_level"):
            raise ConfigError(f"unknown storage scheme {self.storage!r}")
        if self.cache_entries <= 0:
            raise ConfigError("cache_entries must be positive")
        if self.cache_assoc < 0:
            raise ConfigError("cache_assoc must be >= 0")
        if self.cache_assoc and self.cache_entries % self.cache_assoc:
            raise ConfigError(
                "cache_entries must be a multiple of cache_assoc"
            )
        if self.rf_read_latency < 1:
            raise ConfigError("rf_read_latency must be >= 1")
        if self.max_use < 1:
            raise ConfigError("max_use must be >= 1")
        if self.unknown_default < 0 or self.fill_default < 0:
            raise ConfigError("defaults must be non-negative")
        if self.bypass_stages < 1:
            raise ConfigError("bypass_stages must be >= 1")
        if self.num_pregs <= 64:
            raise ConfigError("num_pregs must exceed the architectural count")
        if self.l2_latency < 1:
            raise ConfigError("l2_latency must be >= 1")
        if self.memory_latency < self.l2_latency:
            raise ConfigError("memory_latency must be >= l2_latency")

    @property
    def read_latency(self) -> int:
        """Operand-storage read latency seen by the issue pipeline."""
        if self.storage == "monolithic":
            return self.rf_read_latency
        return 1  # register cache or two-level L1

    @property
    def effective_rf_write_latency(self) -> int:
        """Monolithic write latency (defaults to the read latency)."""
        return (
            self.rf_read_latency
            if self.rf_write_latency is None
            else self.rf_write_latency
        )

    @property
    def effective_backing_write_latency(self) -> int:
        """Backing-file write latency (defaults to its read latency)."""
        return (
            self.backing_read_latency
            if self.backing_write_latency is None
            else self.backing_write_latency
        )

    @property
    def two_level_l1_size(self) -> int:
        """L1 register count for the two-level scheme."""
        return self.cache_entries + self.two_level_l1_extra

    def replace(self, **changes) -> "MachineConfig":
        """Return a copy with *changes* applied (validated)."""
        config = dataclasses.replace(self, **changes)
        config.validate()
        return config

    def config_key(self) -> tuple[tuple[str, object], ...]:
        """Canonical, order- and type-stable identity of this config.

        Two configs that compare equal produce identical keys no matter
        how they were constructed: fields are sorted by name, numeric
        values are normalized (``64`` and ``64.0`` collapse, bools stay
        distinct from ints), and enum-keyed dicts such as ``fu_counts``
        become name-sorted tuples. The key is JSON-serializable, so it
        doubles as the configuration part of the experiment engine's
        content-addressed cache key and as a stable sweep label.
        """
        items = []
        for f in sorted(dataclasses.fields(self), key=lambda f: f.name):
            items.append((f.name, _normalize(getattr(self, f.name))))
        return tuple(items)

    def config_hash(self) -> str:
        """SHA-256 hex digest of :meth:`config_key`."""
        payload = json.dumps(self.config_key(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def frontend_key(self) -> tuple[tuple[str, object], ...]:
        """Identity of everything *except* the register-storage scheme.

        Two configs with equal frontend keys drive the front end, the
        memory hierarchy, and the trace identically — they differ only
        in how register values are stored and read. The experiment
        engine batches such configs onto one worker so they share one
        trace decode, one ``trace.analysis()`` pass, and one
        precomputed branch-prediction plan (the predictors are
        trace-order-driven, so their decisions are storage-independent;
        see :func:`repro.frontend.fetch.branch_plan_for`).
        """
        return tuple(
            item for item in self.config_key()
            if item[0] not in _STORAGE_FIELDS
        )


#: MachineConfig fields that only affect register-value storage (the
#: schemes the paper compares) — excluded from ``frontend_key``.
_STORAGE_FIELDS = frozenset({
    "storage",
    "rf_read_latency",
    "rf_write_latency",
    "cache_entries",
    "cache_assoc",
    "insertion",
    "replacement",
    "indexing",
    "backing_read_latency",
    "backing_write_latency",
    "backing_read_ports",
    "max_use",
    "unknown_default",
    "fill_default",
    "pin_at_max",
    "two_level_l1_extra",
    "two_level_l2_latency",
    "two_level_bandwidth",
    "two_level_free_threshold",
})


def _normalize(value: object) -> object:
    """Normalize one config value for :meth:`MachineConfig.config_key`."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):
        # 64 and 64.0 are equal configs; keep the key equal too. Floats
        # with fractional parts stay floats (repr round-trips exactly).
        as_float = float(value)
        return int(as_float) if as_float.is_integer() else as_float
    if isinstance(value, dict):
        return tuple(sorted(
            (getattr(key, "name", str(key)), _normalize(val))
            for key, val in value.items()
        ))
    if isinstance(value, (tuple, list)):
        return tuple(_normalize(item) for item in value)
    raise ConfigError(
        f"cannot canonicalize config value of type {type(value).__name__}"
    )


# ----------------------------------------------------------------------
# Named configurations used by the evaluation.


def use_based_config(**overrides) -> MachineConfig:
    """The paper's proposal: use-based policies, filtered round-robin."""
    return MachineConfig(**overrides)


def lru_config(**overrides) -> MachineConfig:
    """Yung & Wilhelm-style cache: write everything, evict LRU."""
    defaults = dict(
        insertion="always", replacement="lru", indexing="round_robin",
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


def non_bypass_config(**overrides) -> MachineConfig:
    """Cruz et al.-style cache: skip bypassed values, evict LRU."""
    defaults = dict(
        insertion="non_bypass", replacement="lru", indexing="round_robin",
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


def monolithic_config(read_latency: int = 3, **overrides) -> MachineConfig:
    """No register cache: a multi-cycle monolithic register file."""
    defaults = dict(storage="monolithic", rf_read_latency=read_latency)
    defaults.update(overrides)
    return MachineConfig(**defaults)


def two_level_config(**overrides) -> MachineConfig:
    """Optimistic two-level register file (paper §5.5 reference)."""
    defaults = dict(storage="two_level")
    defaults.update(overrides)
    return MachineConfig(**defaults)


#: Scheme name -> factory, used by sweeps and the CLI-style examples.
NAMED_CONFIGS = {
    "use_based": use_based_config,
    "lru": lru_config,
    "non_bypass": non_bypass_config,
    "monolithic": monolithic_config,
    "two_level": two_level_config,
}
