"""Register-lifetime analysis (Figures 1 and 2 of the paper).

Works over the per-allocation :class:`~repro.core.stats.LifetimeRecord`
log collected by the pipeline, computing the median empty/live/dead
phase lengths and the cumulative distributions of simultaneously
allocated and live registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import LifetimeRecord


def _median(values: list[int]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class PhaseSummary:
    """Median lengths of the three lifetime phases (Figure 1)."""

    empty: float
    live: float
    dead: float

    @property
    def total(self) -> float:
        return self.empty + self.live + self.dead


def phase_summary(records: list[LifetimeRecord]) -> PhaseSummary:
    """Median empty/live/dead times over one benchmark's allocations."""
    return PhaseSummary(
        empty=_median([r.empty_time for r in records]),
        live=_median([r.live_time for r in records]),
        dead=_median([r.dead_time for r in records]),
    )


def mean_phase_summary(per_benchmark: list[PhaseSummary]) -> PhaseSummary:
    """Average of per-benchmark medians, as Figure 1 reports."""
    if not per_benchmark:
        return PhaseSummary(0.0, 0.0, 0.0)
    count = len(per_benchmark)
    return PhaseSummary(
        empty=sum(p.empty for p in per_benchmark) / count,
        live=sum(p.live for p in per_benchmark) / count,
        dead=sum(p.dead for p in per_benchmark) / count,
    )


def _counts_over_time(
    intervals: list[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Time-weighted histogram of concurrent intervals.

    Args:
        intervals: (start, end) pairs, end exclusive.

    Returns:
        List of (concurrency_level, total_cycles_at_level) pairs.
    """
    events: dict[int, int] = {}
    for start, end in intervals:
        if end <= start:
            continue
        events[start] = events.get(start, 0) + 1
        events[end] = events.get(end, 0) - 1
    level = 0
    weights: dict[int, int] = {}
    previous_time: int | None = None
    for time in sorted(events):
        if previous_time is not None and time > previous_time:
            weights[level] = weights.get(level, 0) + (time - previous_time)
        level += events[time]
        previous_time = time
    return sorted(weights.items())


@dataclass(frozen=True)
class OccupancyCdf:
    """Cumulative distribution of a concurrency level over time."""

    levels: tuple[int, ...]
    cumulative: tuple[float, ...]  # fraction of cycles at <= level

    def percentile(self, fraction: float) -> int:
        """Smallest level covering *fraction* of cycles (e.g. 0.9)."""
        for level, cum in zip(self.levels, self.cumulative):
            if cum >= fraction:
                return level
        return self.levels[-1] if self.levels else 0

    @property
    def median(self) -> int:
        return self.percentile(0.5)


def occupancy_cdf(intervals: list[tuple[int, int]]) -> OccupancyCdf:
    """Build the CDF of concurrent intervals over time."""
    weighted = _counts_over_time(intervals)
    total = sum(weight for _, weight in weighted)
    if not total:
        return OccupancyCdf((0,), (1.0,))
    levels = []
    cumulative = []
    running = 0
    for level, weight in weighted:
        running += weight
        levels.append(level)
        cumulative.append(running / total)
    return OccupancyCdf(tuple(levels), tuple(cumulative))


def concatenate_records(
    groups: list[list[LifetimeRecord]],
) -> list[LifetimeRecord]:
    """Pool per-benchmark lifetime logs without inflating concurrency.

    Each benchmark's simulation starts at cycle 0, so naively pooling
    their records would overlap intervals from different runs and add
    their concurrency levels. This shifts every group onto a disjoint
    time range, as if the benchmarks ran back to back on one machine.
    """
    pooled: list[LifetimeRecord] = []
    offset = 0
    for group in groups:
        end = 0
        for record in group:
            pooled.append(LifetimeRecord(
                record.alloc + offset, record.write + offset,
                record.last_read + offset, record.free + offset,
            ))
            end = max(end, record.free)
        offset += end + 1
    return pooled


def allocated_cdf(records: list[LifetimeRecord]) -> OccupancyCdf:
    """CDF of simultaneously *allocated* physical registers (Figure 2)."""
    return occupancy_cdf([(r.alloc, r.free) for r in records])


def live_cdf(records: list[LifetimeRecord]) -> OccupancyCdf:
    """CDF of simultaneously *live* values (Figure 2).

    A value is live from its write until its last read; zero-length live
    ranges (never-read values) contribute nothing.
    """
    return occupancy_cdf([(r.write, r.last_read) for r in records])
