"""Cycle-level out-of-order timing model.

This is the machine of Table 1: trace-driven, 8-wide, deeply pipelined,
with a 128-entry issue window, 512-entry ROB, and one of three register
storage schemes:

* ``register_cache`` — single-cycle register cache over a multi-cycle
  backing file, with pluggable insertion/replacement/indexing policies
  (the paper's proposal and both caching reference designs),
* ``monolithic`` — multi-cycle monolithic register file with a limited
  two-stage bypass network (the no-cache baselines),
* ``two_level`` — the optimistic two-level register file of §5.5.

Timing rules (derivations in DESIGN.md §4):

* An instruction issued at cycle ``t`` starts executing at
  ``t + 1 + read_latency`` (1 for cache/two-level, R for monolithic).
* A consumer of producer ``p`` may issue from ``p.exec_end - read_latency``
  (bypass stage 1); the bypass network covers ``bypass_stages`` cycles;
  afterwards the operand must come from storage, available from
  ``p.exec_end + 1`` (cache write / L1) or ``p.exec_end + W - R``
  (monolithic file with read-during-write forwarding).
* A register-cache miss blocks the issue stage for the detection cycle
  (replaying the squashed issue group, as on the Alpha 21264) and sends
  the instruction to the backing file through a single arbitrated read
  port, waiting for the producer's backing write if necessary.
* Loads probe the data cache when their address is ready; an L1 miss
  blocks issue for ``read_latency`` cycles, modelling the load-hit
  speculation replay loop whose length grows with the register read
  latency (paper §1).
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop, heappush

from repro.core.config import MachineConfig
from repro.core.events import EventWheel
from repro.core.stats import LifetimeRecord, SimStats
from repro.errors import ConfigError, SimulationError
from repro.frontend.fetch import FrontEnd
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.obs.metrics import get_metrics
from repro.obs.tracer import trace_file_for, tracer_from_env
from repro.predict.degree_of_use import DegreeOfUsePredictor
from repro.regfile.backing import BackingFile
from repro.regfile.indexing import make_index_policy
from repro.regfile.insertion import WriteContext, make_insertion_policy
from repro.regfile.physical import PhysicalRegisterFile
from repro.regfile.register_cache import RegisterCache
from repro.regfile.replacement import make_replacement_policy
from repro.regfile.two_level import TwoLevelRegisterFile
from repro.rename.freelist import FreeList
from repro.rename.map_table import MapTable
from repro.rename.renamer import Renamer
from repro.vm.trace import Trace

_WAITING = 0
_ISSUED = 1

#: Sentinel for "resolve from the environment" observability arguments.
_FROM_ENV = object()


def _op_seq(op: "_Op") -> int:
    """Sort key for issue-group ordering (oldest first)."""
    return op.seq


class _Op:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq", "dyn", "sources", "dest_preg", "dest_set", "prev_preg",
        "pred_eff", "pinned", "predicted", "mispredicted",
        "status", "issue_time", "exec_start", "exec_end", "unready",
        "src_producer_seqs", "earliest_epoch", "earliest_value",
    )

    def __init__(self, seq, dyn):
        self.seq = seq
        self.dyn = dyn
        self.sources = ()
        self.dest_preg = -1
        self.dest_set = -1
        self.prev_preg = -1
        self.pred_eff = 0
        self.pinned = False
        self.predicted = None
        self.mispredicted = False
        self.status = _WAITING
        self.issue_time = -1
        self.exec_start = -1
        self.exec_end = -1
        self.unready = 0
        self.src_producer_seqs: tuple[int, ...] = ()
        # Issue-readiness memo: a sound lower bound on the cycle this op
        # could first issue, and the producer-state epoch it was computed
        # in (epoch equality means the bound is exact, see _earliest).
        self.earliest_epoch = -1
        self.earliest_value = 0


class _PregInfo:
    """Producer-side state of one physical-register allocation."""

    __slots__ = (
        "issued", "exec_end", "pc", "fcf", "pred_eff", "pinned",
        "predicted", "assigned_set", "bypass_first", "bypass_total",
        "uses_renamed", "alloc_time", "last_read", "waiters",
        "producer_seq",
    )

    def __init__(self, pc: int, fcf: int, alloc_time: int) -> None:
        self.issued = False
        self.exec_end = -1
        self.pc = pc
        self.fcf = fcf
        self.producer_seq = -1
        self.pred_eff = 0
        self.pinned = False
        self.predicted = None
        self.assigned_set = -1
        self.bypass_first = 0
        self.bypass_total = 0
        self.uses_renamed = 0
        self.alloc_time = alloc_time
        self.last_read = -1
        self.waiters: list[_Op] = []


class Pipeline:
    """Executes one trace under one machine configuration.

    Use :func:`repro.core.simulator.simulate` for the friendly entry
    point; this class exposes the machinery for tests and extensions.
    """

    def __init__(
        self,
        trace: Trace,
        config: MachineConfig,
        *,
        tracer=_FROM_ENV,
        metrics=_FROM_ENV,
        core: str | None = None,
        branch_plan: list[int] | None = None,
    ) -> None:
        config.validate()
        if core is None:
            core = os.environ.get("REPRO_SIM_CORE", "event").strip().lower()
        if core not in ("cycle", "event"):
            raise ConfigError(
                f"REPRO_SIM_CORE must be 'cycle' or 'event', got {core!r}"
            )
        #: Which timing loop runs: "event" skips dead cycles via a
        #: next-event horizon, "cycle" is the reference per-cycle loop.
        #: Both produce bit-identical SimStats (DESIGN.md §10).
        self.core = core
        self.trace = trace
        self.config = config
        self.stats = SimStats(benchmark=trace.name, scheme=config.storage)

        # Observability: an event tracer (None unless REPRO_TRACE_EVENTS
        # is set or one is injected) and a metrics registry (the
        # process-wide one unless injected; None disables publishing).
        self._tracer_autowrite = False
        if tracer is _FROM_ENV:
            tracer = tracer_from_env()
            self._tracer_autowrite = tracer is not None
        self.tracer = tracer
        self.metrics = get_metrics() if metrics is _FROM_ENV else metrics

        num_pregs = config.num_pregs
        if config.storage == "two_level":
            # Preg ids are logical value ids for this scheme; the real
            # constraint is L1 slots, tracked by the two-level model.
            num_pregs = max(num_pregs, 1024)
        self.freelist = FreeList(num_pregs)
        self.map_table = MapTable()
        self.pinfo: list[_PregInfo | None] = [None] * num_pregs

        self.read_latency = config.read_latency
        self.bypass_stages = config.bypass_stages

        # Storage scheme construction.
        self.cache: RegisterCache | None = None
        self.backing: BackingFile | None = None
        self.rf: PhysicalRegisterFile | None = None
        self.two_level: TwoLevelRegisterFile | None = None
        self.insertion = None
        self.index_policy = None
        assign_set = None
        if config.storage == "register_cache":
            assoc = config.cache_assoc or config.cache_entries
            num_sets = config.cache_entries // assoc
            self.index_policy = make_index_policy(
                config.indexing, num_sets, assoc
            )
            self.cache = RegisterCache(
                config.cache_entries, config.cache_assoc,
                make_replacement_policy(config.replacement),
                self.index_policy,
            )
            self.cache.tracer = self.tracer
            self.insertion = make_insertion_policy(config.insertion)
            self.backing = BackingFile(
                num_pregs,
                config.backing_read_latency,
                config.effective_backing_write_latency,
                config.backing_read_ports,
            )
            if self.index_policy.decoupled:
                assign_set = self.index_policy.assign
        elif config.storage == "monolithic":
            self.rf = PhysicalRegisterFile(
                num_pregs, config.rf_read_latency,
                config.effective_rf_write_latency, config.bypass_stages,
            )
        else:
            self.two_level = TwoLevelRegisterFile(
                config.two_level_l1_size,
                l2_latency=config.two_level_l2_latency,
                move_bandwidth=config.two_level_bandwidth,
                free_threshold=config.two_level_free_threshold,
            )

        self.renamer = Renamer(self.freelist, self.map_table, assign_set)

        self.predictor: DegreeOfUsePredictor | None = None
        if config.predictor_enabled and config.storage == "register_cache":
            self.predictor = DegreeOfUsePredictor(
                entries=config.predictor_entries,
                assoc=config.predictor_assoc,
                wrongpath_noise=config.wrongpath_use_noise,
            )
        # Trace-invariant precompute, shared (and disk-cached) across
        # every configuration simulating this trace.
        self.fcf = trace.analysis().fcf

        self.memory = (
            MemoryHierarchy(HierarchyConfig(
                l2_latency=config.l2_latency,
                memory_latency=config.memory_latency,
            ))
            if config.model_memory else None
        )
        icache = self.memory if (self.memory and config.model_icache) else None
        self.frontend = FrontEnd(
            trace,
            fetch_width=config.fetch_width,
            front_depth=config.front_depth,
            icache=_ICacheAdapter(icache) if icache else None,
            branch_plan=branch_plan,
        )

        # Event queues: cycle -> payload list.
        self._lookups: dict[int, list[tuple[_Op, int, int]]] = {}
        self._dcache_events: dict[int, list[_Op]] = {}
        self._writebacks: dict[int, list[_Op]] = {}
        self._resolves: dict[int, list[_Op]] = {}
        self._fills: dict[int, list[tuple[int, int]]] = {}
        self._ready: dict[int, list[_Op]] = {}
        self._blocked: set[int] = set()

        self.rob: deque[_Op] = deque()
        self.window_count = 0
        self.retired = 0
        self._dispatch_blocked_until = 0
        self._wrongpath_reserved = 0
        self.cycle = 0
        #: seq -> issued _Op, populated when config.record_timing is set.
        self.issue_log: dict[int, _Op] = {}

        # Event core state: the pending-event horizon (None selects the
        # reference per-cycle loop) and the producer-state epoch backing
        # the _earliest memo — bumped whenever any producer's exec_end
        # changes, so an unchanged epoch proves a cached readiness bound
        # is still exact.
        self._horizon: EventWheel | None = (
            EventWheel() if core == "event" else None
        )
        # Lazily drained event keys (fills + writebacks): these events
        # only mutate storage state that later *processed* cycles read —
        # they never unblock dispatch, issue, retirement, or fetch — so
        # instead of waking the scheduler they are replayed in key order
        # (with their original timestamps) at the top of the next cycle
        # the scheduler processes for some other reason.
        self._lazy_heap: list[int] = []
        self._lazy_set: set[int] = set()
        self._pepoch = 0
        self.earliest_memo_hits = 0
        self.earliest_memo_misses = 0

    # ------------------------------------------------------------------

    def run(self) -> SimStats:
        """Simulate to completion and return the statistics.

        Dispatches to the event-driven scheduler (default) or the
        reference per-cycle loop, selected by ``REPRO_SIM_CORE`` or the
        ``core=`` constructor argument. The two are bit-identical in
        every statistic they produce (DESIGN.md §10); the event core
        just skips the cycles in which nothing can happen.
        """
        if self._horizon is not None:
            return self._run_event()
        return self._run_cycle()

    def _run_cycle(self) -> SimStats:
        """Reference timing loop: tick every cycle.

        The loop body is the simulator's hottest code: every dict and
        attribute that is touched each cycle is hoisted into a local,
        and each event queue is drained with a single ``pop`` probe
        instead of a membership test plus lookup.
        """
        total = len(self.trace.records)
        config = self.config
        max_cycles = config.max_cycles
        fills = self._fills
        lookups = self._lookups
        dcache_events = self._dcache_events
        writebacks = self._writebacks
        resolves = self._resolves
        blocked = self._blocked
        ready = self._ready
        two_level = self.two_level
        stats = self.stats
        process_fills = self._process_fills
        process_lookups = self._process_lookups
        process_dcache = self._process_dcache
        process_writebacks = self._process_writebacks
        process_resolves = self._process_resolves
        retire = self._retire
        issue = self._issue
        dispatch = self._dispatch
        cycle = 0
        while self.retired < total:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"{self.trace.name}: exceeded {max_cycles} cycles "
                    f"({self.retired}/{total} retired)"
                )
            self.cycle = cycle
            events = fills.pop(cycle, None)
            if events is not None:
                process_fills(events, cycle)
            events = lookups.pop(cycle, None)
            if events is not None:
                process_lookups(events, cycle)
            events = dcache_events.pop(cycle, None)
            if events is not None:
                process_dcache(events, cycle)
            events = writebacks.pop(cycle, None)
            if events is not None:
                process_writebacks(events, cycle)
            events = resolves.pop(cycle, None)
            if events is not None:
                process_resolves(events, cycle)
            retire(cycle)
            group = ready.pop(cycle, None)
            if blocked and cycle in blocked:
                blocked.discard(cycle)
                stats.issue_blocked_cycles += 1
                if group:  # defer the whole group one cycle
                    nxt = cycle + 1
                    bucket = ready.get(nxt)
                    if bucket is None:
                        ready[nxt] = group
                    else:
                        bucket.extend(group)
            elif group:
                issue(group, cycle)
            dispatch(cycle)
            if two_level is not None:
                two_level.tick(cycle)
            cycle += 1

        self._finalize(cycle)
        return self.stats

    def _run_event(self) -> SimStats:
        """Event-driven timing loop: jump straight to the next event.

        Processes exactly the cycles the reference loop would do work
        in, in the same order, and jumps over the rest. After each
        processed cycle the next wake-up is the minimum over (DESIGN.md
        §10 derives why this set is sufficient):

        * the pending-event horizon (fills, lookups, d-cache probes,
          writebacks, resolves, ready groups, blocked cycles — pushed
          into the :class:`EventWheel` at every insertion),
        * the ROB head's earliest retirement cycle,
        * ``cycle + 1`` when dispatch made progress (the front end may
          supply more) or the two-level move engine has eligible moves,
        * the rename-unblock cycle when dispatch was recovery-blocked,
        * the front end's next fetch-progress cycle (needed for timing
          whenever an i-cache shares the hierarchy with the data side;
          otherwise only when dispatch went idle), and its head's
          ready-at cycle when dispatch went idle.

        Per-cycle stall counters for the skipped span are credited in
        bulk: every skipped cycle inside a rename-recovery window is a
        ``rename_stall_cycle``, and every cycle skipped while dispatch
        was resource-stalled (and the stall cannot clear before the next
        event) is a ``dispatch_stall_cycle`` — exactly what the
        reference loop would have counted one cycle at a time.
        """
        total = len(self.trace.records)
        config = self.config
        max_cycles = config.max_cycles
        fills = self._fills
        lookups = self._lookups
        dcache_events = self._dcache_events
        writebacks = self._writebacks
        resolves = self._resolves
        blocked = self._blocked
        ready = self._ready
        two_level = self.two_level
        frontend = self.frontend
        stats = self.stats
        rob = self.rob
        retire_delay = config.retire_delay
        horizon = self._horizon
        horizon_push = horizon.push
        horizon_next = horizon.next_after
        next_fetch_time = frontend.next_fetch_time
        next_head_ready = frontend.next_head_ready
        frontend_probe = frontend.next_ready
        # Fetch-progress cycles only shape timing when instruction
        # fetches contend with data accesses in a shared hierarchy;
        # without an i-cache, deferring queue fills is side-effect-free.
        fetch_sync = frontend.icache is not None
        process_fills = self._process_fills
        process_lookups = self._process_lookups
        process_dcache = self._process_dcache
        process_writebacks = self._process_writebacks
        process_resolves = self._process_resolves
        retire = self._retire
        issue = self._issue
        dispatch = self._dispatch
        lazy_heap = self._lazy_heap
        lazy_set = self._lazy_set
        cycle = 0
        action = 0
        retire_next = -1
        tl_moved = 0
        while self.retired < total:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"{self.trace.name}: exceeded {max_cycles} cycles "
                    f"({self.retired}/{total} retired)"
                )
            self.cycle = cycle
            # ``dirty`` flags anything that can free a dispatch resource
            # (window slot, ROB entry, physical/L1 register, recovery
            # state); while it stays False a resource-stalled dispatch
            # would replay the exact same probe, so the call is skipped
            # and its per-cycle stall accounting applied directly. The
            # two-level move engine ticks *after* dispatch, so slots it
            # freed last cycle dirty this one.
            dirty = tl_moved > 0
            # Replay skipped-over fills and writebacks in key order with
            # their original timestamps. Between two processed cycles no
            # state either event kind reads or writes can change (every
            # reader/writer of storage state — lookups, retire-time
            # frees, issue — runs only in processed cycles), so landing
            # them here is indistinguishable from the reference loop
            # having processed each key on time. A key equal to *cycle*
            # is left to the in-order pops below so same-cycle ordering
            # against lookups and retire stays exact.
            while lazy_heap and lazy_heap[0] < cycle:
                at = heappop(lazy_heap)
                lazy_set.discard(at)
                events = fills.pop(at, None)
                if events is not None:
                    process_fills(events, at)
                events = writebacks.pop(at, None)
                if events is not None:
                    process_writebacks(events, at)
            events = fills.pop(cycle, None)
            if events is not None:
                process_fills(events, cycle)
            events = lookups.pop(cycle, None)
            if events is not None:
                process_lookups(events, cycle)
            events = dcache_events.pop(cycle, None)
            if events is not None:
                process_dcache(events, cycle)
            events = writebacks.pop(cycle, None)
            if events is not None:
                process_writebacks(events, cycle)
            events = resolves.pop(cycle, None)
            if events is not None:
                process_resolves(events, cycle)
                dirty = True
            if 0 <= retire_next <= cycle:
                # Before ``retire_next`` the head provably cannot retire
                # (its exec_end only ever grows), so the call would be a
                # no-op; -1 means the head has not issued yet and the
                # refresh probe below re-arms the hint when it does.
                before = self.retired
                retire_next = retire(cycle)
                if self.retired != before:
                    dirty = True
            group = ready.pop(cycle, None)
            if blocked and cycle in blocked:
                blocked.discard(cycle)
                stats.issue_blocked_cycles += 1
                if group:  # defer the whole group one cycle
                    nxt = cycle + 1
                    bucket = ready.get(nxt)
                    if bucket is None:
                        ready[nxt] = group
                    else:
                        bucket.extend(group)
                    horizon_push(nxt)
            elif group:
                issue(group, cycle)
                dirty = True
            if (action == 2 or action == 4) and not dirty:
                # Unchanged resource stall: the reference loop's dispatch
                # would re-probe the same full queue, count one stall
                # cycle, and change nothing else. The probe itself is
                # kept when an i-cache shares the memory hierarchy so
                # instruction fetch keeps issuing its accesses on the
                # same cycles as the reference loop.
                if fetch_sync:
                    frontend_probe(cycle)
                stats.dispatch_stall_cycles += 1
                if action == 4:
                    two_level.note_rename_stall()
            else:
                action = dispatch(cycle)
            tl_moved = 0
            if two_level is not None:
                tl_moved = two_level.tick(cycle)
            if self.retired >= total:
                cycle += 1
                break

            # ---- next wake-up: min over everything that can happen ----
            if retire_next < 0 and rob:
                # The head may have issued *after* _retire ran this
                # cycle (issue and dispatch come later in the cycle
                # order); without this refresh its retirement would
                # never be scheduled when no other event is pending.
                head = rob[0]
                if head.status == _ISSUED:
                    eligible = head.exec_end + 1 + retire_delay
                    retire_next = eligible if eligible > cycle else cycle + 1
            wake = horizon_next(cycle)
            if wake is None:
                wake = max_cycles
            if 0 <= retire_next < wake:
                wake = retire_next
            if action == 1 or action == 5:
                # Dispatched a full width (1) or dispatched into a stall
                # (5): more may be consumable immediately.
                if cycle + 1 < wake:
                    wake = cycle + 1
            elif action == 3:  # recovery-blocked until a known cycle
                bu = self._dispatch_blocked_until
                if bu < wake:
                    wake = bu
            else:  # idle (0/6) or resource-stalled (2/4)
                if fetch_sync or action == 0 or action == 6:
                    fetch_at = next_fetch_time(cycle)
                    if 0 <= fetch_at < wake:
                        wake = fetch_at
                if action == 0 or action == 6:
                    head_at = next_head_ready(cycle)
                    if 0 <= head_at < wake:
                        wake = head_at
            if two_level is not None and (
                two_level.pending_moves()
                # The move engine ran *after* dispatch stalled on L1
                # allocation; the slots it just freed make dispatch
                # possible next cycle.
                or (action == 4 and tl_moved)
            ):
                if cycle + 1 < wake:
                    wake = cycle + 1
            if wake <= cycle:
                wake = cycle + 1
            elif wake > max_cycles:
                wake = max_cycles
            skipped = wake - cycle - 1
            if skipped > 0:
                if action == 3:
                    # wake <= _dispatch_blocked_until: the whole span is
                    # inside the recovery window.
                    stats.rename_stall_cycles += skipped
                elif action == 2:
                    stats.dispatch_stall_cycles += skipped
                elif action == 4:
                    # Two-level L1 allocation stall: the reference loop
                    # counts both a dispatch stall and a two-level
                    # rename stall every such cycle.
                    stats.dispatch_stall_cycles += skipped
                    two_level.note_rename_stall(skipped)
            cycle = wake

        # Land any fills/writebacks the reference loop would still have
        # processed before the final cycle (none should remain in
        # practice — every writeback key is bounded by its op's retire
        # cycle — but the drain keeps finalize-time storage statistics
        # exact by construction rather than by argument).
        while lazy_heap and lazy_heap[0] < cycle:
            at = heappop(lazy_heap)
            lazy_set.discard(at)
            events = fills.pop(at, None)
            if events is not None:
                process_fills(events, at)
            events = writebacks.pop(at, None)
            if events is not None:
                process_writebacks(events, at)
        if blocked:
            # Load-replay squash cycles the scheduler never had a reason
            # to visit: the reference loop would have reached each one
            # and counted it (processed ones were counted and discarded
            # above).
            final = cycle
            stats.issue_blocked_cycles += sum(
                1 for c in blocked if c < final
            )
            blocked.clear()
        self._finalize(cycle)
        return self.stats

    # ------------------------------------------------------------------
    # Event processing.

    def _process_fills(self, events: list[tuple[int, int]], now: int) -> None:
        pinfo = self.pinfo
        cache = self.cache
        if cache is None:
            return
        fill_default = self.config.fill_default
        cache_write = cache.write
        for preg, assigned_set in events:
            if pinfo[preg] is not None:
                cache_write(
                    preg, assigned_set, fill_default,
                    pinned=False, now=now, is_fill=True,
                )

    def _process_lookups(
        self, events: list[tuple[_Op, int, int]], now: int
    ) -> None:
        cache = self.cache
        backing = self.backing
        assert cache is not None and backing is not None
        pinfo = self.pinfo
        fills = self._fills
        stats = self.stats
        horizon = self._horizon
        lookup = cache.lookup
        write_latency = backing.write_latency
        for op, preg, assigned_set in events:
            if lookup(preg, assigned_set, now):
                continue
            # Miss: squash this cycle's issue group and fetch the value
            # from the backing file (paper §5.2 replay model).
            stats.rc_miss_events += 1
            self._blocked.add(now)
            producer = pinfo[preg]
            written_at = (
                producer.exec_end + 1 + write_latency
                if producer is not None and producer.issued else now
            )
            available = backing.schedule_read(now + 1, written_at)
            if available > op.exec_start:
                latency = op.exec_end - op.exec_start
                op.exec_start = available
                op.exec_end = available + latency
                if op.dest_preg >= 0:
                    dest_info = pinfo[op.dest_preg]
                    if dest_info is not None:
                        dest_info.exec_end = op.exec_end
                        self._pepoch += 1
            bucket = fills.get(available)
            if bucket is None:
                fills[available] = [(preg, assigned_set)]
            else:
                bucket.append((preg, assigned_set))
            if horizon is not None:
                # Fills only write the cache; drained lazily, no wake.
                lazy_set = self._lazy_set
                if available not in lazy_set:
                    lazy_set.add(available)
                    heappush(self._lazy_heap, available)

    def _process_dcache(self, events: list[_Op], now: int) -> None:
        # Probed the cycle after issue: strictly before the earliest
        # dependent can issue (issue + load latency), so dependents never
        # schedule against a stale hit-assumed latency.
        memory = self.memory
        assert memory is not None
        pinfo = self.pinfo
        stats = self.stats
        blocked = self._blocked
        load = memory.load
        read_latency = self.read_latency
        for op in events:
            extra = load(op.dyn.mem_addr, op.dyn.pc, now)
            if extra:
                op.exec_end += extra
                if op.dest_preg >= 0:
                    dest_info = pinfo[op.dest_preg]
                    if dest_info is not None:
                        dest_info.exec_end = op.exec_end
                        self._pepoch += 1
                # Load-hit speculation replay: the squash loop contains
                # the register read, so its cost scales with read latency.
                stats.load_miss_replays += 1
                # The squash cycles are deliberately NOT pushed into the
                # event horizon: a blocked cycle with no ready group has
                # no effect beyond its stall count, which the event loop
                # credits lazily (groups push their own cycles, so any
                # blocked cycle that must defer one is still processed).
                detection = now + 3  # tag check, just before would-be data
                for offset in range(read_latency):
                    blocked.add(detection + offset)

    def _process_writebacks(self, events: list[_Op], now: int) -> None:
        pinfo = self.pinfo
        cache = self.cache
        rf = self.rf
        tracer = self.tracer
        writebacks = self._writebacks
        horizon = self._horizon
        for op in events:
            requeue_at = op.exec_end + 1
            if requeue_at != now:
                bucket = writebacks.get(requeue_at)
                if bucket is None:
                    writebacks[requeue_at] = [op]
                else:
                    bucket.append(op)
                if horizon is not None:
                    lazy_set = self._lazy_set
                    if requeue_at not in lazy_set:
                        lazy_set.add(requeue_at)
                        heappush(self._lazy_heap, requeue_at)
                continue
            preg = op.dest_preg
            info = pinfo[preg]
            if info is None:  # pragma: no cover - freed before write
                continue
            if tracer is not None:
                tracer.emit(
                    "writeback", "pipeline", now,
                    args={"seq": op.seq, "preg": preg},
                )
            if cache is not None:
                self.backing.record_write()
                ctx = WriteContext(
                    pred_uses=op.pred_eff,
                    bypassed_first_stage=info.bypass_first,
                    pinned=op.pinned,
                )
                if self.insertion.should_insert(ctx):
                    remaining = op.pred_eff - info.bypass_total
                    cache.write(
                        preg, op.dest_set,
                        remaining if remaining > 0 else 0, op.pinned, now,
                    )
                else:
                    cache.record_filtered_write(preg, now)
            elif rf is not None:
                rf.record_write()

    def _process_resolves(self, events: list[_Op], now: int) -> None:
        resolves = self._resolves
        horizon = self._horizon
        for op in events:
            requeue_at = op.exec_end + 1
            if requeue_at != now:
                bucket = resolves.get(requeue_at)
                if bucket is None:
                    resolves[requeue_at] = [op]
                else:
                    bucket.append(op)
                if horizon is not None:
                    horizon.push(requeue_at)
                continue
            self.frontend.resume(now)
            self.stats.branch_mispredicts += 1
            self._release_wrongpath()
            if self.two_level is not None:
                extra = self.two_level.on_mispredict(
                    now, self.config.front_depth
                )
                if extra:
                    self._dispatch_blocked_until = max(
                        self._dispatch_blocked_until, now + extra
                    )

    # ------------------------------------------------------------------
    # Retire.

    def _retire(self, now: int) -> int:
        """Retire eligible ROB-head ops; returns the event core's hint.

        The return value is the earliest future cycle at which retire
        could make further progress: ``-1`` when nothing can retire
        until some other event happens first (empty ROB, or a head that
        has not issued — its issue is already a pending event), the
        head's earliest-retirement cycle when it has issued but is not
        yet eligible, and ``now + 1`` when retirement stopped on a
        same-cycle resource limit (width, store slots, store buffer).
        The reference loop ignores the value.
        """
        rob = self.rob
        if not rob:
            return -1
        config = self.config
        retire_width = config.retire_width
        retire_delay = config.retire_delay
        max_store_retire = config.max_store_retire
        memory = self.memory
        free_preg = self._free_preg
        retired_this = 0
        stores_this = 0
        while rob and retired_this < retire_width:
            op = rob[0]
            if op.status != _ISSUED:
                break
            if now < op.exec_end + 1 + retire_delay:
                break
            if op.dyn.is_store:
                if stores_this >= max_store_retire:
                    break
                if memory is not None and not memory.store(
                    op.dyn.mem_addr, now
                ):
                    break
                stores_this += 1
            rob.popleft()
            retired_this += 1
            self.retired += 1
            if op.prev_preg >= 0:
                free_preg(op.prev_preg, now)
        if not rob:
            return -1
        head = rob[0]
        if head.status != _ISSUED:
            return -1
        eligible_at = head.exec_end + 1 + retire_delay
        return eligible_at if eligible_at > now else now + 1

    def _free_preg(self, preg: int, now: int) -> None:
        info = self.pinfo[preg]
        if info is None:
            raise SimulationError(f"freeing preg {preg} with no info")
        write_time = info.exec_end + 1
        last_read = max(info.last_read, write_time)
        self.stats.lifetimes.append(
            LifetimeRecord(info.alloc_time, write_time, last_read, now)
        )
        if self.predictor is not None:
            self.predictor.train(info.pc, info.fcf, info.uses_renamed)
            self.predictor.record_outcome(info.predicted, info.uses_renamed)
            if self.tracer is not None:
                self.tracer.emit(
                    "dou_train", "predictor", now,
                    args={"pc": info.pc, "actual": info.uses_renamed,
                          "predicted": info.predicted},
                )
        if self.cache is not None:
            self.cache.invalidate(preg, now)
            self.index_policy.release(info.assigned_set, info.pred_eff)
        if self.two_level is not None:
            self.two_level.free(preg)
        self.freelist.release(preg)
        self.pinfo[preg] = None

    # ------------------------------------------------------------------
    # Issue.

    def _bucket(self, op: _Op, when: int) -> None:
        ready = self._ready
        bucket = ready.get(when)
        if bucket is None:
            ready[when] = [op]
        else:
            bucket.append(op)
        if self._horizon is not None:
            self._horizon.push(when)

    def _issue(self, candidates: list[_Op], now: int) -> None:
        """Issue up to ``issue_width`` ready ops from this cycle's group.

        Operand classification (inlined in the source loop below for
        speed): for a producer completing at ``exec_end``, a consumer
        may issue from ``exec_end - read_latency`` (first-stage bypass,
        kind 1), through the remaining bypass stages (kind 2), and from
        storage (kind 3) once the value is written back — cache/L1 at
        ``exec_end + 1``, monolithic file at ``exec_end + W - R`` with
        read-during-write forwarding. Kind 0 = not ready yet; an
        unissued (or freed) producer defers the consumer to ``now + 1``.
        """
        # Groups are usually appended in seq order already; only sort
        # when an out-of-order append actually happened.
        prev_seq = -1
        for op in candidates:
            seq = op.seq
            if seq < prev_seq:
                candidates.sort(key=_op_seq)
                break
            prev_seq = seq
        config = self.config
        issue_width = config.issue_width
        fu_counts = config.fu_counts
        pinfo = self.pinfo
        read_latency = self.read_latency
        bypass_stages = self.bypass_stages
        rf = self.rf
        # Cycles from producer completion until storage can supply the
        # operand: +1 for cache/L1, W - R for the monolithic file.
        storage_delta = (
            rf.write_latency - rf.read_latency if rf is not None else 1
        )
        ready = self._ready
        horizon = self._horizon
        fu_used: dict[OpClass, int] = {}
        issued = 0
        do_issue = self._do_issue
        for position, op in enumerate(candidates):
            if issued >= issue_width:
                nxt = now + 1
                bucket = ready.get(nxt)
                leftovers = candidates[position:]
                if bucket is None:
                    ready[nxt] = leftovers
                else:
                    bucket.extend(leftovers)
                if horizon is not None:
                    horizon.push(nxt)
                break
            # Readiness-memo fast path: earliest_value is a sound lower
            # bound on this op's issue cycle (producer exec_end values
            # only ever grow), so a retry before it cannot succeed and
            # the source scan can be skipped entirely.
            if now < op.earliest_value:
                self.earliest_memo_hits += 1
                when = op.earliest_value
                bucket = ready.get(when)
                if bucket is None:
                    ready[when] = [op]
                else:
                    bucket.append(op)
                if horizon is not None:
                    horizon.push(when)
                continue
            kinds: list[int] = []
            kinds_append = kinds.append
            next_time = now
            is_ready = True
            for preg, _assigned in op.sources:
                if preg < 0:
                    kinds_append(-1)
                    continue
                info = pinfo[preg]
                if info is None or not info.issued:
                    # Producer not yet issued (waiters should prevent
                    # this) or already freed; not ready until next cycle.
                    is_ready = False
                    when = now + 1
                    if when > next_time:
                        next_time = when
                    break
                exec_end = info.exec_end
                earliest = exec_end - read_latency
                if now < earliest:
                    is_ready = False
                    if earliest > next_time:
                        next_time = earliest
                    break
                if now < earliest + bypass_stages:
                    kinds_append(1 if now == earliest else 2)
                    continue
                storage_from = exec_end + storage_delta
                if now >= storage_from:
                    kinds_append(3)
                    continue
                is_ready = False
                if storage_from > next_time:
                    next_time = storage_from
                break
            if not is_ready:
                self.earliest_memo_misses += 1
                when = next_time if next_time > now + 1 else now + 1
                op.earliest_value = when
                op.earliest_epoch = self._pepoch
                bucket = ready.get(when)
                if bucket is None:
                    ready[when] = [op]
                else:
                    bucket.append(op)
                if horizon is not None:
                    horizon.push(when)
                continue
            op_class = op.dyn.op_class
            used = fu_used.get(op_class, 0)
            if used >= fu_counts.get(op_class, 1):
                nxt = now + 1
                bucket = ready.get(nxt)
                if bucket is None:
                    ready[nxt] = [op]
                else:
                    bucket.append(op)
                if horizon is not None:
                    horizon.push(nxt)
                continue
            fu_used[op_class] = used + 1
            issued += 1
            do_issue(op, now, kinds)

    def _do_issue(self, op: _Op, now: int, kinds: list[int]) -> None:
        stats = self.stats
        pinfo = self.pinfo
        cache = self.cache
        rf = self.rf
        two_level = self.two_level
        horizon = self._horizon
        op.status = _ISSUED
        op.issue_time = now
        exec_start = now + 1 + self.read_latency
        op.exec_start = exec_start
        exec_end = exec_start + op.dyn.latency - 1
        op.exec_end = exec_end
        self.window_count -= 1
        if self.config.record_timing:
            self.issue_log[op.seq] = op
        if self.tracer is not None:
            self.tracer.emit(
                "issue", "pipeline", now,
                duration=max(1, exec_end - now),
                args={"pc": op.dyn.pc, "seq": op.seq},
            )

        for (preg, assigned_set), kind in zip(op.sources, kinds):
            if kind < 0:
                continue
            info = pinfo[preg]
            if kind == 1:
                info.bypass_first += 1
                info.bypass_total += 1
                stats.operands_bypass += 1
                stats.operands_bypass_first += 1
            elif kind == 2:
                info.bypass_total += 1
                stats.operands_bypass += 1
            else:
                stats.operands_storage += 1
                if cache is not None:
                    lookups = self._lookups
                    nxt = now + 1
                    bucket = lookups.get(nxt)
                    if bucket is None:
                        lookups[nxt] = [(op, preg, assigned_set)]
                    else:
                        bucket.append((op, preg, assigned_set))
                    if horizon is not None:
                        horizon.push(nxt)
                elif rf is not None:
                    rf.record_read()
                    stats.rf_reads += 1
            if info.last_read < exec_start:
                info.last_read = exec_start
            if two_level is not None:
                two_level.consumer_executed(preg, now)

        if op.dest_preg >= 0:
            dest_info = pinfo[op.dest_preg]
            dest_info.issued = True
            dest_info.exec_end = exec_end
            self._pepoch += 1
            writebacks = self._writebacks
            wb_at = exec_end + 1
            bucket = writebacks.get(wb_at)
            if bucket is None:
                writebacks[wb_at] = [op]
            else:
                bucket.append(op)
            if horizon is not None:
                # Writebacks are drained lazily (see _run_event): no wake.
                lazy_set = self._lazy_set
                if wb_at not in lazy_set:
                    lazy_set.add(wb_at)
                    heappush(self._lazy_heap, wb_at)
            waiters = dest_info.waiters
            if waiters:
                bucket_op = self._bucket
                earliest_of = self._earliest
                floor = now + 1
                for waiter in waiters:
                    waiter.unready -= 1
                    if waiter.unready == 0:
                        when = earliest_of(waiter)
                        bucket_op(waiter, when if when > floor else floor)
                dest_info.waiters = []
        if op.dyn.is_load and self.memory is not None:
            events = self._dcache_events
            nxt = now + 1
            bucket = events.get(nxt)
            if bucket is None:
                events[nxt] = [op]
            else:
                bucket.append(op)
            if horizon is not None:
                horizon.push(nxt)
        if op.mispredicted:
            resolves = self._resolves
            at = exec_end + 1
            bucket = resolves.get(at)
            if bucket is None:
                resolves[at] = [op]
            else:
                bucket.append(op)
            if horizon is not None:
                horizon.push(at)

    def _earliest(self, op: _Op) -> int:
        """Earliest first-stage-bypass cycle over *op*'s issued producers.

        Memoized per (op, producer-state epoch): an unchanged epoch
        means no producer's ``exec_end`` moved since the value was
        computed, so the cached value is exact. A stale value is still
        kept on the op as :attr:`_Op.earliest_value` — producer times
        only grow, so it remains a sound lower bound the issue loop can
        retry against without rescanning sources.
        """
        epoch = self._pepoch
        if op.earliest_epoch == epoch:
            self.earliest_memo_hits += 1
            return op.earliest_value
        self.earliest_memo_misses += 1
        earliest = 0
        pinfo = self.pinfo
        read_latency = self.read_latency
        for preg, _assigned in op.sources:
            if preg < 0:
                continue
            info = pinfo[preg]
            if info is None or not info.issued:
                continue
            candidate = info.exec_end - read_latency
            if candidate > earliest:
                earliest = candidate
        op.earliest_epoch = epoch
        op.earliest_value = earliest
        return earliest

    # ------------------------------------------------------------------
    # Dispatch.

    def _dispatch(self, now: int) -> int:
        """Dispatch up to the width; returns the event core's hint.

        ``0`` — idle: nothing was dispatchable this cycle.
        ``1`` — full width dispatched: more may be consumable next
        cycle.
        ``2`` — stalled: something was dispatchable but a resource
        (window, ROB, physical registers) blocked it before anything
        dispatched.
        ``3`` — recovery-blocked until ``_dispatch_blocked_until``.
        ``4`` — stalled on two-level L1 allocation specifically (like
        ``2``, but each such cycle also counts a two-level rename
        stall, which the event core must replicate for skipped spans).
        ``5`` — dispatched some, then hit a resource stall (needs a
        ``cycle + 1`` retry like ``1``, and counted one dispatch
        stall).
        ``6`` — dispatched everything consumable with budget to spare:
        dispatch goes idle until the front end supplies more (same
        wake-up rule as ``0``).
        The reference loop ignores the value.
        """
        config = self.config
        if now < self._dispatch_blocked_until:
            self.stats.rename_stall_cycles += 1
            return 3
        budget = config.dispatch_width
        window_size = config.window_size
        rob_size = config.rob_size
        frontend = self.frontend
        next_ready = frontend.next_ready
        pop_next = frontend.pop_next
        dispatch_one = self._dispatch_one
        two_level = self.two_level
        freelist = self.freelist
        rob = self.rob
        stalled = False
        tl_stall = False
        dispatched = False
        while budget > 0:
            if self.window_count >= window_size or len(rob) >= rob_size:
                stalled = next_ready(now) is not None
                break
            fetched = next_ready(now)
            if fetched is None:
                break
            if fetched.dyn.writes_register:
                if two_level is not None:
                    if not two_level.can_allocate():
                        if not rob:
                            # Nothing in flight can ever free a slot:
                            # the program needs more registers than the
                            # L1 file holds.
                            raise SimulationError(
                                "two-level L1 register file too small "
                                f"({two_level.l1_capacity} entries) "
                                "for the program's architectural "
                                "register demand"
                            )
                        two_level.note_rename_stall()
                        stalled = True
                        tl_stall = True
                        break
                elif freelist.free_count <= self._wrongpath_reserved:
                    stalled = True
                    break
            pop_next()
            dispatch_one(fetched, now)
            dispatched = True
            budget -= 1
        if stalled:
            self.stats.dispatch_stall_cycles += 1
            if not dispatched:
                return 4 if tl_stall else 2
            return 5
        if dispatched:
            return 1 if budget == 0 else 6
        return 0

    def _reserve_wrongpath(self) -> None:
        """Hold registers for the wrong-path renames a real front end
        would perform between a misprediction and its resolution."""
        amount = self.config.wrongpath_alloc
        if amount <= 0:
            return
        if self.two_level is not None:
            amount = min(amount, max(0, self.two_level.free_slots - 4))
            self.two_level.free_slots -= amount
            self._wrongpath_reserved = amount
        else:
            self._wrongpath_reserved = amount

    def _release_wrongpath(self) -> None:
        """Return wrong-path reservations at branch resolution."""
        if self._wrongpath_reserved and self.two_level is not None:
            self.two_level.free_slots += self._wrongpath_reserved
        self._wrongpath_reserved = 0

    def _dispatch_one(self, fetched, now: int) -> None:
        dyn = fetched.dyn
        op = _Op(dyn.seq, dyn)
        mispredicted = fetched.mispredicted
        op.mispredicted = mispredicted
        if mispredicted:
            self._reserve_wrongpath()

        config = self.config
        pinfo = self.pinfo
        two_level = self.two_level
        predictor = self.predictor
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "fetch", "pipeline", fetched.ready_at,
                args={"pc": dyn.pc, "seq": dyn.seq},
            )
            tracer.emit(
                "rename", "pipeline", now,
                args={"pc": dyn.pc, "seq": dyn.seq},
            )
        writes_register = dyn.writes_register
        predicted = None
        if predictor is not None and writes_register:
            predicted = predictor.predict(dyn.pc, self.fcf[dyn.seq])
            if tracer is not None:
                tracer.emit(
                    "dou_predict", "predictor", now,
                    args={"pc": dyn.pc, "predicted": predicted},
                )
        if writes_register:
            raw = predicted if predicted is not None else config.unknown_default
            max_use = config.max_use
            pred_eff = raw if raw < max_use else max_use
            op.pred_eff = pred_eff
            op.pinned = bool(
                config.pin_at_max
                and predicted is not None
                and pred_eff == max_use
            )
        op.predicted = predicted

        renamed = self.renamer.rename(dyn, op.pred_eff)
        sources = renamed.sources
        dest_preg = renamed.dest_preg
        op.sources = sources
        op.dest_preg = dest_preg
        op.dest_set = renamed.dest_set
        op.prev_preg = renamed.prev_preg

        if dest_preg >= 0:
            info = _PregInfo(dyn.pc, self.fcf[dyn.seq], now)
            info.producer_seq = dyn.seq
            info.pred_eff = op.pred_eff
            info.pinned = op.pinned
            info.predicted = predicted
            info.assigned_set = op.dest_set
            pinfo[dest_preg] = info
            if two_level is not None:
                two_level.allocate(dest_preg)
        if renamed.prev_preg >= 0 and two_level is not None:
            two_level.reassigned(renamed.prev_preg, now)

        unready = 0
        if config.record_timing:
            op.src_producer_seqs = tuple(
                pinfo[preg].producer_seq if preg >= 0 else -1
                for preg, _assigned in sources
            )
        for preg, _assigned in sources:
            if preg < 0:
                continue
            info = pinfo[preg]
            info.uses_renamed += 1
            if two_level is not None:
                two_level.add_pending_consumer(preg)
            if not info.issued:
                info.waiters.append(op)
                unready += 1
        op.unready = unready
        if unready == 0:
            earliest = self._earliest(op)
            floor = now + 1
            self._bucket(op, earliest if earliest > floor else floor)

        self.rob.append(op)
        self.window_count += 1

    # ------------------------------------------------------------------

    def _finalize(self, cycles: int) -> None:
        stats = self.stats
        stats.cycles = cycles
        stats.retired = self.retired
        if self.cache is not None:
            self.cache.finalize(cycles)
            stats.cache = self.cache.stats
            stats.rf_reads = self.backing.reads
            stats.rf_writes = self.backing.writes
        elif self.rf is not None:
            stats.rf_writes = self.rf.writes
        if self.two_level is not None:
            stats.tl_moves = self.two_level.moves
            stats.tl_restores = self.two_level.restores
            stats.tl_recovery_stalls = self.two_level.recovery_stall_cycles
            stats.rename_stall_cycles += self.two_level.rename_stall_cycles
        if self.predictor is not None:
            stats.predictor_queries = self.predictor.queries
            stats.predictor_supplied = self.predictor.supplied
            stats.predictor_correct = self.predictor.correct
        # Close lifetime records for values still allocated at the end.
        for preg, info in enumerate(self.pinfo):
            if info is None or not info.issued:
                continue
            write_time = info.exec_end + 1
            last_read = max(info.last_read, write_time)
            stats.lifetimes.append(LifetimeRecord(
                info.alloc_time, write_time, last_read, cycles
            ))
        self._publish_observability()

    def _publish_observability(self) -> None:
        """End-of-run observability: one bulk metrics fold + trace export.

        Publishing happens once per run, after statistics settle, so the
        metrics registry adds no per-cycle work; a disabled (or None)
        registry skips the fold entirely.
        """
        stats = self.stats
        registry = self.metrics
        if registry is not None and registry.enabled:
            labels = {"bench": stats.benchmark, "scheme": stats.scheme}
            registry.counter("sim.runs", **labels).inc()
            registry.publish(
                "sim", stats.to_dict(include_lifetimes=False), **labels
            )
            registry.gauge("sim.ipc", **labels).set(stats.ipc)
            registry.gauge(
                "sim.bypass_fraction", **labels
            ).set(stats.bypass_fraction)
            if self.cache is not None:
                self.cache.publish_metrics(registry, **labels)
            if self.predictor is not None:
                self.predictor.publish_metrics(registry, **labels)
        if self.tracer is not None and self._tracer_autowrite:
            self.tracer.write(
                trace_file_for(stats.benchmark, stats.scheme)
            )


class _ICacheAdapter:
    """Adapts :class:`MemoryHierarchy` to the FrontEnd icache protocol."""

    __slots__ = ("hierarchy",)

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy

    def access(self, line: int) -> int:
        return self.hierarchy.ifetch(line)
