"""Cycle-level out-of-order timing model.

This is the machine of Table 1: trace-driven, 8-wide, deeply pipelined,
with a 128-entry issue window, 512-entry ROB, and one of three register
storage schemes:

* ``register_cache`` — single-cycle register cache over a multi-cycle
  backing file, with pluggable insertion/replacement/indexing policies
  (the paper's proposal and both caching reference designs),
* ``monolithic`` — multi-cycle monolithic register file with a limited
  two-stage bypass network (the no-cache baselines),
* ``two_level`` — the optimistic two-level register file of §5.5.

Timing rules (derivations in DESIGN.md §4):

* An instruction issued at cycle ``t`` starts executing at
  ``t + 1 + read_latency`` (1 for cache/two-level, R for monolithic).
* A consumer of producer ``p`` may issue from ``p.exec_end - read_latency``
  (bypass stage 1); the bypass network covers ``bypass_stages`` cycles;
  afterwards the operand must come from storage, available from
  ``p.exec_end + 1`` (cache write / L1) or ``p.exec_end + W - R``
  (monolithic file with read-during-write forwarding).
* A register-cache miss blocks the issue stage for the detection cycle
  (replaying the squashed issue group, as on the Alpha 21264) and sends
  the instruction to the backing file through a single arbitrated read
  port, waiting for the producer's backing write if necessary.
* Loads probe the data cache when their address is ready; an L1 miss
  blocks issue for ``read_latency`` cycles, modelling the load-hit
  speculation replay loop whose length grows with the register read
  latency (paper §1).
"""

from __future__ import annotations

from collections import deque

from repro.core.config import MachineConfig
from repro.core.stats import LifetimeRecord, SimStats
from repro.errors import SimulationError
from repro.frontend.fetch import FrontEnd
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.predict.degree_of_use import DegreeOfUsePredictor, compute_fcf
from repro.regfile.backing import BackingFile
from repro.regfile.indexing import make_index_policy
from repro.regfile.insertion import WriteContext, make_insertion_policy
from repro.regfile.physical import PhysicalRegisterFile
from repro.regfile.register_cache import RegisterCache
from repro.regfile.replacement import make_replacement_policy
from repro.regfile.two_level import TwoLevelRegisterFile
from repro.rename.freelist import FreeList
from repro.rename.map_table import MapTable
from repro.rename.renamer import Renamer
from repro.vm.trace import Trace

_WAITING = 0
_ISSUED = 1


class _Op:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq", "dyn", "sources", "dest_preg", "dest_set", "prev_preg",
        "pred_eff", "pinned", "predicted", "mispredicted",
        "status", "issue_time", "exec_start", "exec_end", "unready",
        "src_producer_seqs",
    )

    def __init__(self, seq, dyn):
        self.seq = seq
        self.dyn = dyn
        self.sources = ()
        self.dest_preg = -1
        self.dest_set = -1
        self.prev_preg = -1
        self.pred_eff = 0
        self.pinned = False
        self.predicted = None
        self.mispredicted = False
        self.status = _WAITING
        self.issue_time = -1
        self.exec_start = -1
        self.exec_end = -1
        self.unready = 0
        self.src_producer_seqs: tuple[int, ...] = ()


class _PregInfo:
    """Producer-side state of one physical-register allocation."""

    __slots__ = (
        "issued", "exec_end", "pc", "fcf", "pred_eff", "pinned",
        "predicted", "assigned_set", "bypass_first", "bypass_total",
        "uses_renamed", "alloc_time", "last_read", "waiters",
        "producer_seq",
    )

    def __init__(self, pc: int, fcf: int, alloc_time: int) -> None:
        self.issued = False
        self.exec_end = -1
        self.pc = pc
        self.fcf = fcf
        self.producer_seq = -1
        self.pred_eff = 0
        self.pinned = False
        self.predicted = None
        self.assigned_set = -1
        self.bypass_first = 0
        self.bypass_total = 0
        self.uses_renamed = 0
        self.alloc_time = alloc_time
        self.last_read = -1
        self.waiters: list[_Op] = []


class Pipeline:
    """Executes one trace under one machine configuration.

    Use :func:`repro.core.simulator.simulate` for the friendly entry
    point; this class exposes the machinery for tests and extensions.
    """

    def __init__(self, trace: Trace, config: MachineConfig) -> None:
        config.validate()
        self.trace = trace
        self.config = config
        self.stats = SimStats(benchmark=trace.name, scheme=config.storage)

        num_pregs = config.num_pregs
        if config.storage == "two_level":
            # Preg ids are logical value ids for this scheme; the real
            # constraint is L1 slots, tracked by the two-level model.
            num_pregs = max(num_pregs, 1024)
        self.freelist = FreeList(num_pregs)
        self.map_table = MapTable()
        self.pinfo: list[_PregInfo | None] = [None] * num_pregs

        self.read_latency = config.read_latency
        self.bypass_stages = config.bypass_stages

        # Storage scheme construction.
        self.cache: RegisterCache | None = None
        self.backing: BackingFile | None = None
        self.rf: PhysicalRegisterFile | None = None
        self.two_level: TwoLevelRegisterFile | None = None
        self.insertion = None
        self.index_policy = None
        assign_set = None
        if config.storage == "register_cache":
            assoc = config.cache_assoc or config.cache_entries
            num_sets = config.cache_entries // assoc
            self.index_policy = make_index_policy(
                config.indexing, num_sets, assoc
            )
            self.cache = RegisterCache(
                config.cache_entries, config.cache_assoc,
                make_replacement_policy(config.replacement),
                self.index_policy,
            )
            self.insertion = make_insertion_policy(config.insertion)
            self.backing = BackingFile(
                num_pregs,
                config.backing_read_latency,
                config.effective_backing_write_latency,
                config.backing_read_ports,
            )
            if self.index_policy.decoupled:
                assign_set = self.index_policy.assign
        elif config.storage == "monolithic":
            self.rf = PhysicalRegisterFile(
                num_pregs, config.rf_read_latency,
                config.effective_rf_write_latency, config.bypass_stages,
            )
        else:
            self.two_level = TwoLevelRegisterFile(
                config.two_level_l1_size,
                l2_latency=config.two_level_l2_latency,
                move_bandwidth=config.two_level_bandwidth,
                free_threshold=config.two_level_free_threshold,
            )

        self.renamer = Renamer(self.freelist, self.map_table, assign_set)

        self.predictor: DegreeOfUsePredictor | None = None
        if config.predictor_enabled and config.storage == "register_cache":
            self.predictor = DegreeOfUsePredictor(
                entries=config.predictor_entries,
                assoc=config.predictor_assoc,
                wrongpath_noise=config.wrongpath_use_noise,
            )
        self.fcf = compute_fcf(trace)

        self.memory = MemoryHierarchy() if config.model_memory else None
        icache = self.memory if (self.memory and config.model_icache) else None
        self.frontend = FrontEnd(
            trace,
            fetch_width=config.fetch_width,
            front_depth=config.front_depth,
            icache=_ICacheAdapter(icache) if icache else None,
        )

        # Event queues: cycle -> payload list.
        self._lookups: dict[int, list[tuple[_Op, int, int]]] = {}
        self._dcache_events: dict[int, list[_Op]] = {}
        self._writebacks: dict[int, list[_Op]] = {}
        self._resolves: dict[int, list[_Op]] = {}
        self._fills: dict[int, list[tuple[int, int]]] = {}
        self._ready: dict[int, list[_Op]] = {}
        self._blocked: set[int] = set()

        self.rob: deque[_Op] = deque()
        self.window_count = 0
        self.retired = 0
        self._dispatch_blocked_until = 0
        self._wrongpath_reserved = 0
        self.cycle = 0
        #: seq -> issued _Op, populated when config.record_timing is set.
        self.issue_log: dict[int, _Op] = {}

    # ------------------------------------------------------------------

    def run(self) -> SimStats:
        """Simulate to completion and return the statistics."""
        total = len(self.trace.records)
        config = self.config
        cycle = 0
        while self.retired < total:
            if cycle >= config.max_cycles:
                raise SimulationError(
                    f"{self.trace.name}: exceeded {config.max_cycles} cycles "
                    f"({self.retired}/{total} retired)"
                )
            self.cycle = cycle
            if cycle in self._fills:
                self._process_fills(cycle)
            if cycle in self._lookups:
                self._process_lookups(cycle)
            if cycle in self._dcache_events:
                self._process_dcache(cycle)
            if cycle in self._writebacks:
                self._process_writebacks(cycle)
            if cycle in self._resolves:
                self._process_resolves(cycle)
            self._retire(cycle)
            if cycle in self._blocked:
                self._blocked.discard(cycle)
                self.stats.issue_blocked_cycles += 1
                for op in self._ready.pop(cycle, ()):  # defer the group
                    self._bucket(op, cycle + 1)
            else:
                self._issue(cycle)
            self._dispatch(cycle)
            if self.two_level is not None:
                self.two_level.tick(cycle)
            cycle += 1

        self._finalize(cycle)
        return self.stats

    # ------------------------------------------------------------------
    # Event processing.

    def _process_fills(self, now: int) -> None:
        for preg, assigned_set in self._fills.pop(now):
            if self.pinfo[preg] is not None and self.cache is not None:
                self.cache.write(
                    preg, assigned_set, self.config.fill_default,
                    pinned=False, now=now, is_fill=True,
                )

    def _process_lookups(self, now: int) -> None:
        assert self.cache is not None and self.backing is not None
        config = self.config
        for op, preg, assigned_set in self._lookups.pop(now):
            if self.cache.lookup(preg, assigned_set, now):
                continue
            # Miss: squash this cycle's issue group and fetch the value
            # from the backing file (paper §5.2 replay model).
            self.stats.rc_miss_events += 1
            self._blocked.add(now)
            producer = self.pinfo[preg]
            written_at = (
                producer.exec_end + 1 + self.backing.write_latency
                if producer is not None and producer.issued else now
            )
            available = self.backing.schedule_read(now + 1, written_at)
            new_start = max(op.exec_start, available)
            if new_start != op.exec_start:
                latency = op.exec_end - op.exec_start
                op.exec_start = new_start
                op.exec_end = new_start + latency
                if op.dest_preg >= 0:
                    dest_info = self.pinfo[op.dest_preg]
                    if dest_info is not None:
                        dest_info.exec_end = op.exec_end
            self._fills.setdefault(available, []).append((preg, assigned_set))

    def _process_dcache(self, now: int) -> None:
        # Probed the cycle after issue: strictly before the earliest
        # dependent can issue (issue + load latency), so dependents never
        # schedule against a stale hit-assumed latency.
        assert self.memory is not None
        for op in self._dcache_events.pop(now):
            extra = self.memory.load(op.dyn.mem_addr, op.dyn.pc, now)
            if extra:
                op.exec_end += extra
                if op.dest_preg >= 0:
                    dest_info = self.pinfo[op.dest_preg]
                    if dest_info is not None:
                        dest_info.exec_end = op.exec_end
                # Load-hit speculation replay: the squash loop contains
                # the register read, so its cost scales with read latency.
                self.stats.load_miss_replays += 1
                detection = now + 3  # tag check, just before would-be data
                for offset in range(self.read_latency):
                    self._blocked.add(detection + offset)

    def _process_writebacks(self, now: int) -> None:
        for op in self._writebacks.pop(now):
            if op.exec_end + 1 != now:
                self._writebacks.setdefault(op.exec_end + 1, []).append(op)
                continue
            preg = op.dest_preg
            info = self.pinfo[preg]
            if info is None:  # pragma: no cover - freed before write
                continue
            if self.cache is not None:
                self.backing.record_write()
                ctx = WriteContext(
                    pred_uses=op.pred_eff,
                    bypassed_first_stage=info.bypass_first,
                    pinned=op.pinned,
                )
                if self.insertion.should_insert(ctx):
                    remaining = max(0, op.pred_eff - info.bypass_total)
                    self.cache.write(
                        preg, op.dest_set, remaining, op.pinned, now
                    )
                else:
                    self.cache.record_filtered_write(preg)
            elif self.rf is not None:
                self.rf.record_write()

    def _process_resolves(self, now: int) -> None:
        for op in self._resolves.pop(now):
            if op.exec_end + 1 != now:
                self._resolves.setdefault(op.exec_end + 1, []).append(op)
                continue
            self.frontend.resume(now)
            self.stats.branch_mispredicts += 1
            self._release_wrongpath()
            if self.two_level is not None:
                extra = self.two_level.on_mispredict(
                    now, self.config.front_depth
                )
                if extra:
                    self._dispatch_blocked_until = max(
                        self._dispatch_blocked_until, now + extra
                    )

    # ------------------------------------------------------------------
    # Retire.

    def _retire(self, now: int) -> None:
        config = self.config
        retired_this = 0
        stores_this = 0
        rob = self.rob
        while rob and retired_this < config.retire_width:
            op = rob[0]
            if op.status != _ISSUED:
                break
            if now < op.exec_end + 1 + config.retire_delay:
                break
            if op.dyn.is_store:
                if stores_this >= config.max_store_retire:
                    break
                if self.memory is not None and not self.memory.store(
                    op.dyn.mem_addr, now
                ):
                    break
                stores_this += 1
            rob.popleft()
            retired_this += 1
            self.retired += 1
            if op.prev_preg >= 0:
                self._free_preg(op.prev_preg, now)

    def _free_preg(self, preg: int, now: int) -> None:
        info = self.pinfo[preg]
        if info is None:
            raise SimulationError(f"freeing preg {preg} with no info")
        write_time = info.exec_end + 1
        last_read = max(info.last_read, write_time)
        self.stats.lifetimes.append(
            LifetimeRecord(info.alloc_time, write_time, last_read, now)
        )
        if self.predictor is not None:
            self.predictor.train(info.pc, info.fcf, info.uses_renamed)
            self.predictor.record_outcome(info.predicted, info.uses_renamed)
        if self.cache is not None:
            self.cache.invalidate(preg, now)
            self.index_policy.release(info.assigned_set, info.pred_eff)
        if self.two_level is not None:
            self.two_level.free(preg)
        self.freelist.release(preg)
        self.pinfo[preg] = None

    # ------------------------------------------------------------------
    # Issue.

    def _bucket(self, op: _Op, when: int) -> None:
        self._ready.setdefault(when, []).append(op)

    def _source_state(self, preg: int, t: int) -> tuple[int, int]:
        """Classify one operand at candidate issue time *t*.

        Returns ``(kind, next_time)`` where kind is 1 = first-stage
        bypass, 2 = later bypass stage, 3 = storage, and 0 = not ready
        until ``next_time``.
        """
        info = self.pinfo[preg]
        if info is None or not info.issued:
            # Producer not yet issued (waiters should prevent this) or
            # already freed (impossible before consumer issue); treat as
            # not ready next cycle.
            return 0, t + 1
        earliest = info.exec_end - self.read_latency
        if t < earliest:
            return 0, earliest
        if t < earliest + self.bypass_stages:
            return (1 if t == earliest else 2), t
        if self.rf is not None:
            storage_from = (
                info.exec_end + self.rf.write_latency - self.rf.read_latency
            )
        else:
            storage_from = info.exec_end + 1
        if t >= storage_from:
            return 3, t
        return 0, storage_from

    def _issue(self, now: int) -> None:
        candidates = self._ready.pop(now, None)
        if not candidates:
            return
        candidates.sort(key=lambda op: op.seq)
        config = self.config
        fu_used: dict[OpClass, int] = {}
        issued = 0
        for position, op in enumerate(candidates):
            if issued >= config.issue_width:
                for leftover in candidates[position:]:
                    self._bucket(leftover, now + 1)
                break
            kinds = []
            next_time = now
            ready = True
            for preg, _assigned in op.sources:
                if preg < 0:
                    kinds.append(-1)
                    continue
                kind, when = self._source_state(preg, now)
                if kind == 0:
                    ready = False
                    next_time = max(next_time, when)
                    break
                kinds.append(kind)
            if not ready:
                self._bucket(op, max(now + 1, next_time))
                continue
            op_class = op.dyn.op_class
            pool = config.fu_counts.get(op_class, 1)
            if fu_used.get(op_class, 0) >= pool:
                self._bucket(op, now + 1)
                continue
            fu_used[op_class] = fu_used.get(op_class, 0) + 1
            issued += 1
            self._do_issue(op, now, kinds)

    def _do_issue(self, op: _Op, now: int, kinds: list[int]) -> None:
        stats = self.stats
        op.status = _ISSUED
        op.issue_time = now
        op.exec_start = now + 1 + self.read_latency
        op.exec_end = op.exec_start + op.dyn.latency - 1
        self.window_count -= 1
        if self.config.record_timing:
            self.issue_log[op.seq] = op

        for (preg, assigned_set), kind in zip(op.sources, kinds):
            if kind < 0:
                continue
            info = self.pinfo[preg]
            if kind == 1:
                info.bypass_first += 1
                info.bypass_total += 1
                stats.operands_bypass += 1
                stats.operands_bypass_first += 1
            elif kind == 2:
                info.bypass_total += 1
                stats.operands_bypass += 1
            else:
                stats.operands_storage += 1
                if self.cache is not None:
                    self._lookups.setdefault(now + 1, []).append(
                        (op, preg, assigned_set)
                    )
                elif self.rf is not None:
                    self.rf.record_read()
                    stats.rf_reads += 1
            if info.last_read < op.exec_start:
                info.last_read = op.exec_start
            if self.two_level is not None:
                self.two_level.consumer_executed(preg, now)

        if op.dest_preg >= 0:
            dest_info = self.pinfo[op.dest_preg]
            dest_info.issued = True
            dest_info.exec_end = op.exec_end
            self._writebacks.setdefault(op.exec_end + 1, []).append(op)
            if dest_info.waiters:
                for waiter in dest_info.waiters:
                    waiter.unready -= 1
                    if waiter.unready == 0:
                        self._bucket(waiter, max(now + 1,
                                                 self._earliest(waiter)))
                dest_info.waiters = []
        if op.dyn.is_load and self.memory is not None:
            self._dcache_events.setdefault(now + 1, []).append(op)
        if op.mispredicted:
            self._resolves.setdefault(op.exec_end + 1, []).append(op)

    def _earliest(self, op: _Op) -> int:
        earliest = 0
        for preg, _assigned in op.sources:
            if preg < 0:
                continue
            info = self.pinfo[preg]
            if info is None or not info.issued:
                continue
            earliest = max(earliest, info.exec_end - self.read_latency)
        return earliest

    # ------------------------------------------------------------------
    # Dispatch.

    def _dispatch(self, now: int) -> None:
        config = self.config
        if now < self._dispatch_blocked_until:
            self.stats.rename_stall_cycles += 1
            return
        budget = config.dispatch_width
        stalled = False
        while budget > 0:
            if (
                self.window_count >= config.window_size
                or len(self.rob) >= config.rob_size
            ):
                stalled = self.frontend.peek_ready(now)
                break
            fetched_peek = self.frontend.peek(now)
            if fetched_peek is None:
                break
            dyn = fetched_peek.dyn
            if dyn.writes_register:
                if self.two_level is not None:
                    if not self.two_level.can_allocate():
                        if not self.rob:
                            # Nothing in flight can ever free a slot:
                            # the program needs more registers than the
                            # L1 file holds.
                            raise SimulationError(
                                "two-level L1 register file too small "
                                f"({self.two_level.l1_capacity} entries) "
                                "for the program's architectural "
                                "register demand"
                            )
                        self.two_level.note_rename_stall()
                        stalled = True
                        break
                elif self.freelist.free_count <= self._wrongpath_reserved:
                    stalled = True
                    break
            fetched = self.frontend.pull(now, 1)[0]
            self._dispatch_one(fetched, now)
            budget -= 1
        if stalled:
            self.stats.dispatch_stall_cycles += 1

    def _reserve_wrongpath(self) -> None:
        """Hold registers for the wrong-path renames a real front end
        would perform between a misprediction and its resolution."""
        amount = self.config.wrongpath_alloc
        if amount <= 0:
            return
        if self.two_level is not None:
            amount = min(amount, max(0, self.two_level.free_slots - 4))
            self.two_level.free_slots -= amount
            self._wrongpath_reserved = amount
        else:
            self._wrongpath_reserved = amount

    def _release_wrongpath(self) -> None:
        """Return wrong-path reservations at branch resolution."""
        if self._wrongpath_reserved and self.two_level is not None:
            self.two_level.free_slots += self._wrongpath_reserved
        self._wrongpath_reserved = 0

    def _dispatch_one(self, fetched, now: int) -> None:
        dyn = fetched.dyn
        op = _Op(dyn.seq, dyn)
        op.mispredicted = fetched.mispredicted
        if fetched.mispredicted:
            self._reserve_wrongpath()

        predicted = None
        if self.predictor is not None and dyn.writes_register:
            predicted = self.predictor.predict(dyn.pc, self.fcf[dyn.seq])
        config = self.config
        if dyn.writes_register:
            raw = predicted if predicted is not None else config.unknown_default
            op.pred_eff = min(raw, config.max_use)
            op.pinned = bool(
                config.pin_at_max
                and predicted is not None
                and op.pred_eff == config.max_use
            )
        op.predicted = predicted

        renamed = self.renamer.rename(dyn, op.pred_eff)
        op.sources = renamed.sources
        op.dest_preg = renamed.dest_preg
        op.dest_set = renamed.dest_set
        op.prev_preg = renamed.prev_preg

        if op.dest_preg >= 0:
            info = _PregInfo(dyn.pc, self.fcf[dyn.seq], now)
            info.producer_seq = dyn.seq
            info.pred_eff = op.pred_eff
            info.pinned = op.pinned
            info.predicted = predicted
            info.assigned_set = op.dest_set
            self.pinfo[op.dest_preg] = info
            if self.two_level is not None:
                self.two_level.allocate(op.dest_preg)
        if op.prev_preg >= 0 and self.two_level is not None:
            self.two_level.reassigned(op.prev_preg, now)

        unready = 0
        if self.config.record_timing:
            op.src_producer_seqs = tuple(
                self.pinfo[preg].producer_seq if preg >= 0 else -1
                for preg, _assigned in op.sources
            )
        for preg, _assigned in op.sources:
            if preg < 0:
                continue
            info = self.pinfo[preg]
            info.uses_renamed += 1
            if self.two_level is not None:
                self.two_level.add_pending_consumer(preg)
            if not info.issued:
                info.waiters.append(op)
                unready += 1
        op.unready = unready
        if unready == 0:
            self._bucket(op, max(now + 1, self._earliest(op)))

        self.rob.append(op)
        self.window_count += 1

    # ------------------------------------------------------------------

    def _finalize(self, cycles: int) -> None:
        stats = self.stats
        stats.cycles = cycles
        stats.retired = self.retired
        if self.cache is not None:
            self.cache.finalize(cycles)
            stats.cache = self.cache.stats
            stats.rf_reads = self.backing.reads
            stats.rf_writes = self.backing.writes
        elif self.rf is not None:
            stats.rf_writes = self.rf.writes
        if self.two_level is not None:
            stats.tl_moves = self.two_level.moves
            stats.tl_restores = self.two_level.restores
            stats.tl_recovery_stalls = self.two_level.recovery_stall_cycles
            stats.rename_stall_cycles += self.two_level.rename_stall_cycles
        if self.predictor is not None:
            stats.predictor_queries = self.predictor.queries
            stats.predictor_supplied = self.predictor.supplied
            stats.predictor_correct = self.predictor.correct
        # Close lifetime records for values still allocated at the end.
        for preg, info in enumerate(self.pinfo):
            if info is None or not info.issued:
                continue
            write_time = info.exec_end + 1
            last_read = max(info.last_read, write_time)
            stats.lifetimes.append(LifetimeRecord(
                info.alloc_time, write_time, last_read, cycles
            ))


class _ICacheAdapter:
    """Adapts :class:`MemoryHierarchy` to the FrontEnd icache protocol."""

    __slots__ = ("hierarchy",)

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy

    def access(self, line: int) -> int:
        return self.hierarchy.ifetch(line)
