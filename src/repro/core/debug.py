"""Pipeline debugging aids: textual per-instruction timelines.

Run a pipeline with ``record_timing=True`` and render a window of the
execution as a pipetrace — one line per dynamic instruction showing
dispatch-to-retire occupancy. Invaluable when validating dependence
timing against the paper's Figure 3.

Example::

    config = MachineConfig(record_timing=True)
    pipeline = Pipeline(trace, config)
    pipeline.run()
    print(render_timeline(pipeline, first_seq=0, count=20))
"""

from __future__ import annotations

from repro.core.pipeline import Pipeline

#: Stage glyphs used in the timeline.
ISSUE = "I"
READ = "r"
EXECUTE = "E"
DONE = "."


def render_timeline(
    pipeline: Pipeline,
    first_seq: int = 0,
    count: int = 20,
    max_width: int = 100,
) -> str:
    """Render issue/read/execute occupancy for a window of instructions.

    Args:
        pipeline: a completed pipeline run with ``record_timing`` on.
        first_seq: first dynamic-instruction sequence number to show.
        count: number of instructions.
        max_width: clip the cycle axis to this many columns.

    Returns:
        The rendered timeline (one line per instruction).

    Raises:
        ValueError: if the pipeline was run without timing recording.
    """
    if not pipeline.issue_log:
        raise ValueError(
            "render_timeline needs a pipeline run with "
            "config.record_timing=True"
        )
    window = [
        pipeline.issue_log[seq]
        for seq in range(first_seq, first_seq + count)
        if seq in pipeline.issue_log
    ]
    if not window:
        return "(no instructions in the requested window)"
    base = min(op.issue_time for op in window)
    end = max(op.exec_end for op in window) + 1
    span = min(end - base + 1, max_width)

    lines = [
        f"cycles {base}..{base + span - 1} "
        f"({ISSUE}=issue {READ}=storage read {EXECUTE}=execute)"
    ]
    for op in window:
        cells = [" "] * span

        def put(cycle: int, glyph: str) -> None:
            offset = cycle - base
            if 0 <= offset < span:
                cells[offset] = glyph

        put(op.issue_time, ISSUE)
        for cycle in range(op.issue_time + 1, op.exec_start):
            put(cycle, READ)
        for cycle in range(op.exec_start, op.exec_end + 1):
            put(cycle, EXECUTE)
        text = str(op.dyn.inst)
        lines.append(f"{op.seq:5d} {text[:28]:28s} |{''.join(cells)}|")
    return "\n".join(lines)


def dependence_report(pipeline: Pipeline, seq: int) -> str:
    """Describe how one instruction's operands were satisfied.

    Returns a short human-readable summary of the instruction's issue
    and execution times. Operand sourcing detail requires cross-checking
    the producing instructions, which the caller can do with
    :func:`render_timeline` over the surrounding window.
    """
    op = pipeline.issue_log.get(seq)
    if op is None:
        return f"seq {seq}: never issued (or timing not recorded)"
    return (
        f"seq {seq}: {op.dyn.inst}  issued@{op.issue_time} "
        f"exec[{op.exec_start}..{op.exec_end}] "
        f"sources={[preg for preg, _ in op.sources]}"
    )
