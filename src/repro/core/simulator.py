"""High-level simulation API.

:func:`simulate` runs one trace under one configuration;
:func:`simulate_suite` runs a set of benchmarks and returns per-benchmark
statistics plus the geometric-mean IPC the paper's figures report
averages over.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.core.config import MachineConfig
from repro.core.pipeline import Pipeline
from repro.core.stats import SimStats
from repro.vm.trace import Trace
from repro.workloads.suite import DEFAULT_SUITE, load_trace


def simulate(
    trace: Trace,
    config: MachineConfig | None = None,
    *,
    core: str | None = None,
) -> SimStats:
    """Run the timing model on *trace* and return its statistics.

    Args:
        trace: a committed-instruction trace (from the VM or synthetic).
        config: machine configuration; defaults to the paper's use-based
            64-entry 2-way register cache machine.
        core: timing-loop selection, ``"event"`` (default: skip dead
            cycles) or ``"cycle"`` (reference per-cycle loop); ``None``
            reads ``REPRO_SIM_CORE``. Both cores produce bit-identical
            statistics.
    """
    config = config or MachineConfig()
    return Pipeline(trace, config, core=core).run()


def simulate_benchmark(
    name: str, config: MachineConfig | None = None, scale: float = 1.0
) -> SimStats:
    """Load the named kernel at *scale* and simulate it."""
    return simulate(load_trace(name, scale=scale), config)


def simulate_suite(
    config: MachineConfig | None = None,
    names: Iterable[str] = DEFAULT_SUITE,
    scale: float = 1.0,
) -> dict[str, SimStats]:
    """Simulate each named benchmark; returns name -> stats."""
    return {
        name: simulate_benchmark(name, config, scale=scale)
        for name in names
    }


def mean_ipc(results: dict[str, SimStats]) -> float:
    """Geometric-mean IPC across benchmarks (the figures' y-axis).

    Falsy result slots (failed-job holes from a gracefully degraded
    sweep) are excluded from the mean rather than zeroing it.
    """
    values = [stats for stats in results.values() if stats]
    if not values:
        return 0.0
    log_sum = 0.0
    for stats in values:
        ipc = stats.ipc
        if ipc <= 0:
            return 0.0
        log_sum += math.log(ipc)
    return math.exp(log_sum / len(values))
