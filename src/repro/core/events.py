"""Pending-event horizon for the event-driven timing core.

:class:`EventWheel` answers one question in O(1) amortized time: *given
that cycle ``now`` has just been processed, what is the earliest future
cycle with a pending event?* The event-driven scheduler
(:meth:`repro.core.pipeline.Pipeline._run_event`) pushes a time into the
wheel at every event insertion — fills, cache lookups, d-cache probes,
writebacks, branch resolves, ready-group buckets, blocked cycles — and
jumps the cycle counter straight to the horizon instead of ticking
through dead cycles.

The structure is a wheel/heap hybrid:

* a **near window** of :data:`EventWheel.WINDOW` cycles kept as a bitmask
  relative to a moving base (one ``|=`` per push, one shift + one
  lowest-set-bit probe per query), which absorbs almost every event —
  pipeline latencies are tens of cycles at most;
* a **far heap** (with a dedup set so repeated pushes of the same cycle
  cost one entry) for the rare distant events such as memory-miss
  completions, migrated into the near window as the base advances.

Entries are never removed when an event fires: the query shifts the base
past processed cycles, so stale bits and lazily deleted heap entries
simply fall away. Pushing a time at or before the cycle being processed
is harmless for the same reason.
"""

from __future__ import annotations

from heapq import heappop, heappush


class EventWheel:
    """Minimal next-event horizon over monotonically processed cycles."""

    #: Width of the near-window bitmask, cycles. Python integers make any
    #: width legal; 256 comfortably covers every pipeline/L2 latency so
    #: only memory-class events (hundreds of cycles) touch the heap.
    WINDOW = 256

    __slots__ = ("_base", "_near", "_far", "_far_set")

    def __init__(self) -> None:
        self._base = 0
        self._near = 0
        self._far: list[int] = []
        self._far_set: set[int] = set()

    def push(self, when: int) -> None:
        """Record a pending event at cycle *when* (duplicates collapse)."""
        delta = when - self._base
        if delta < 0:
            return  # already processed; nothing can be pending there
        if delta < self.WINDOW:
            self._near |= 1 << delta
        elif when not in self._far_set:
            self._far_set.add(when)
            heappush(self._far, when)

    def next_after(self, now: int) -> int | None:
        """Earliest pending cycle strictly greater than *now*, else None.

        Advances the base to ``now + 1`` (cycles at or before *now* are
        done) and migrates far entries that fall inside the new window,
        so repeated queries stay O(1) amortized. The returned cycle is
        *not* consumed — it remains pending until the base passes it.
        """
        base = self._base
        shift = now + 1 - base
        if shift > 0:
            self._near >>= shift
            base = self._base = now + 1
        far = self._far
        if far:
            near = self._near
            limit = base + self.WINDOW
            far_set = self._far_set
            while far and far[0] < limit:
                when = heappop(far)
                far_set.discard(when)
                if when >= base:
                    near |= 1 << (when - base)
            self._near = near
            if not near:
                return far[0] if far else None
        near = self._near
        if not near:
            return None
        return base + (near & -near).bit_length() - 1
