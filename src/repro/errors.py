"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblyError(ReproError):
    """Raised when assembly source cannot be assembled into a program."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ExecutionError(ReproError):
    """Raised when the functional VM encounters an illegal operation."""


class ExecutionLimitExceeded(ExecutionError):
    """Raised when a program exceeds its dynamic instruction budget."""


class ConfigError(ReproError):
    """Raised when a machine configuration is internally inconsistent."""


class EngineError(ReproError):
    """Raised when the experiment engine cannot produce a result.

    Wraps per-job failures (with their worker tracebacks) so a sweep
    that fans out across processes still surfaces the first underlying
    simulator error to the caller.
    """


class JobTimeoutError(EngineError):
    """Raised inside a worker when a job exceeds its wall-clock budget.

    The engine's worker shim arms a ``SIGALRM`` timer around each job
    (``REPRO_JOB_TIMEOUT``); the alarm handler raises this so a hung
    simulation unwinds cleanly and is reported as a ``timeout`` outcome
    eligible for retry, instead of stalling the whole sweep.
    """


class SimulationError(ReproError):
    """Raised when the timing model reaches an impossible state.

    This always indicates a bug in the simulator (or memory corruption in
    a trace), never a property of the simulated workload.
    """


class RenameError(SimulationError):
    """Raised on illegal rename-stage operations (e.g. freeing twice)."""


class RegisterFileError(SimulationError):
    """Raised on illegal register-storage operations."""
