"""Memory hierarchy: L1 I/D, unified L2, memory, and prefetching.

Latency model (Table 1): 4-cycle load-to-use on an L1 hit (the base load
latency in the ISA tables), 12-cycle L2, 180-cycle memory, with an
opportunistic unit-stride prefetcher and a coalescing store buffer.

Word addresses are converted to line numbers internally (64-byte L1
lines of 8-byte words -> 8 words/line; 128-byte L2 lines -> 16
words/line).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import MemoryCache
from repro.memory.store_buffer import StoreBuffer

#: Words per L1 line (64-byte lines, 8-byte words).
L1_LINE_WORDS = 8
#: Words per L2 line (128-byte lines).
L2_LINE_WORDS = 16


@dataclass
class HierarchyConfig:
    """Parameters of the memory hierarchy (defaults from Table 1)."""

    l1d_lines: int = 512       # 32KB / 64B
    l1d_assoc: int = 2
    l1i_lines: int = 512
    l1i_assoc: int = 2
    l2_lines: int = 8_192      # 1MB / 128B
    l2_assoc: int = 4
    l2_latency: int = 12
    memory_latency: int = 180
    store_buffer_entries: int = 16
    prefetch: bool = True


class MemoryHierarchy:
    """Latency oracle for instruction and data accesses.

    The pipeline asks for *extra* cycles beyond the L1-hit latency that
    is already baked into the load's execute latency; an L1 hit therefore
    returns 0.
    """

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.l1d = MemoryCache(cfg.l1d_lines, cfg.l1d_assoc, "L1D")
        self.l1i = MemoryCache(cfg.l1i_lines, cfg.l1i_assoc, "L1I")
        self.l2 = MemoryCache(cfg.l2_lines, cfg.l2_assoc, "L2")
        self.store_buffer = StoreBuffer(cfg.store_buffer_entries)
        self._last_addr_by_pc: dict[int, int] = {}
        self.prefetches = 0
        self.loads = 0
        self.stores = 0

    # ------------------------------------------------------------------

    def load(self, addr: int, pc: int, now: int) -> int:
        """Perform a load of word *addr*; returns extra latency cycles.

        0 = L1 hit (or store-buffer forward); otherwise the L2 or memory
        penalty. Also trains the stride prefetcher.
        """
        self.loads += 1
        self.store_buffer.drain(now)
        if self.store_buffer.forward(addr):
            return 0
        extra = self._access_data(addr)
        if self.config.prefetch:
            self._train_prefetch(pc, addr)
        return extra

    def store(self, addr: int, now: int) -> bool:
        """Retire a store of word *addr*; returns False when the store
        buffer is full (the caller should retry next cycle)."""
        self.stores += 1
        self.store_buffer.drain(now)
        if not self.store_buffer.insert(addr, now):
            return False
        # Stores allocate in L1 in the background (write-allocate).
        self._access_data(addr)
        return True

    def ifetch(self, fetch_line: int) -> int:
        """Fetch an instruction-cache line; returns stall cycles."""
        if self.l1i.access(fetch_line):
            return 0
        if self.l2.access(fetch_line + (1 << 30)):
            return self.config.l2_latency
        return self.config.memory_latency

    # ------------------------------------------------------------------

    def _access_data(self, addr: int) -> int:
        l1_line = addr // L1_LINE_WORDS
        if self.l1d.access(l1_line):
            return 0
        l2_line = addr // L2_LINE_WORDS
        if self.l2.access(l2_line):
            return self.config.l2_latency
        return self.config.memory_latency

    def _train_prefetch(self, pc: int, addr: int) -> None:
        last = self._last_addr_by_pc.get(pc)
        self._last_addr_by_pc[pc] = addr
        if last is None:
            return
        stride = addr - last
        if 0 < abs(stride) <= L1_LINE_WORDS:
            next_line = (addr + stride * L1_LINE_WORDS) // L1_LINE_WORDS
            if not self.l1d.probe(next_line):
                self.l1d.fill(next_line)
                self.l2.fill(addr // L2_LINE_WORDS + 1)
                self.prefetches += 1
        if len(self._last_addr_by_pc) > 4096:
            self._last_addr_by_pc.clear()
