"""Memory hierarchy models: caches, store buffer, prefetching."""

from repro.memory.cache import MemoryCache
from repro.memory.hierarchy import (
    L1_LINE_WORDS,
    L2_LINE_WORDS,
    HierarchyConfig,
    MemoryHierarchy,
)
from repro.memory.store_buffer import StoreBuffer

__all__ = [
    "HierarchyConfig",
    "L1_LINE_WORDS",
    "L2_LINE_WORDS",
    "MemoryCache",
    "MemoryHierarchy",
    "StoreBuffer",
]
