"""Generic set-associative memory cache with LRU replacement.

Used for the L1 instruction/data caches and the unified L2 (Table 1).
Only tags are modelled — the timing simulator needs hit/miss decisions,
not data. Addresses are *line* numbers; callers divide by the line size.
"""

from __future__ import annotations


class MemoryCache:
    """Tag-only set-associative cache of memory lines.

    Args:
        num_lines: total line capacity.
        assoc: ways per set.
        name: label for diagnostics.
    """

    def __init__(self, num_lines: int, assoc: int, name: str = "cache") -> None:
        if num_lines <= 0 or assoc <= 0:
            raise ValueError("num_lines and assoc must be positive")
        if num_lines % assoc:
            raise ValueError("num_lines must be a multiple of assoc")
        self.num_lines = num_lines
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        self.name = name
        # Each set is an LRU-ordered list of line tags (MRU last).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, line: int) -> list[int]:
        return self._sets[line % self.num_sets]

    def probe(self, line: int) -> bool:
        """True when *line* is present; does not update LRU state."""
        return line in self._set_for(line)

    def access(self, line: int) -> bool:
        """Reference *line*: returns hit/miss and fills on miss."""
        entries = self._set_for(line)
        if line in entries:
            entries.remove(line)
            entries.append(line)
            self.hits += 1
            return True
        self.misses += 1
        self.fill(line)
        return False

    def fill(self, line: int) -> int | None:
        """Insert *line*, returning the evicted line if any."""
        entries = self._set_for(line)
        if line in entries:
            entries.remove(line)
            entries.append(line)
            return None
        evicted = None
        if len(entries) >= self.assoc:
            evicted = entries.pop(0)
        entries.append(line)
        return evicted

    @property
    def miss_rate(self) -> float:
        """Observed miss rate."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
