"""Coalescing store buffer (Table 1: 16 entries).

Retired stores enter the buffer and drain to the data cache in the
background. Loads check the buffer for a matching word and forward at L1
speed. The buffer coalesces repeated stores to the same word, as the
paper's configuration specifies.
"""

from __future__ import annotations

from collections import OrderedDict


class StoreBuffer:
    """FIFO coalescing store buffer.

    Args:
        capacity: maximum buffered words (coalesced).
        drain_interval: cycles between background drains of one entry.
    """

    def __init__(self, capacity: int = 16, drain_interval: int = 4) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._entries: OrderedDict[int, int] = OrderedDict()
        self.capacity = capacity
        self.drain_interval = drain_interval
        self._last_drain = 0
        self.coalesced = 0
        self.inserted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, addr: int, now: int) -> bool:
        """Buffer a store to word *addr*; returns False when full.

        A full buffer back-pressures retirement in the pipeline (the
        caller decides how). Stores to an already-buffered word coalesce
        and always succeed.
        """
        if addr in self._entries:
            self._entries.move_to_end(addr)
            self.coalesced += 1
            return True
        if len(self._entries) >= self.capacity:
            return False
        self._entries[addr] = now
        self.inserted += 1
        return True

    def forward(self, addr: int) -> bool:
        """True when a load of *addr* can forward from the buffer."""
        return addr in self._entries

    def drain(self, now: int) -> list[int]:
        """Pop entries that have had time to drain; returns addresses."""
        drained = []
        while (
            self._entries
            and now - self._last_drain >= self.drain_interval
        ):
            addr, _ = self._entries.popitem(last=False)
            drained.append(addr)
            self._last_drain = now
        return drained
