"""Register-cache replacement policies (paper §3.2).

Victim selection operates within one set. The use-based policy selects
the entry with the fewest remaining uses — usually zero, in which case
the eviction causes no future miss — falling back to LRU on ties. Pinned
entries (saturated predicted use) are the last resort.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.regfile.register_cache import CacheEntry


class ReplacementPolicy(abc.ABC):
    """Selects a victim among the valid entries of a full set."""

    name: str

    @abc.abstractmethod
    def select_victim(self, entries: list["CacheEntry"]) -> int:
        """Index (within *entries*) of the entry to evict.

        *entries* is non-empty and contains only valid entries.
        """


class LRUReplacement(ReplacementPolicy):
    """Evict the least-recently-used entry (Yung & Wilhelm)."""

    name = "lru"

    def select_victim(self, entries: list["CacheEntry"]) -> int:
        return min(range(len(entries)), key=lambda i: entries[i].last_access)


class UseBasedReplacement(ReplacementPolicy):
    """Evict the entry with the fewest remaining uses, tie-break LRU.

    Pinned entries sort above any unpinned entry regardless of count, so
    they are displaced only when every entry in the set is pinned.
    """

    name = "use_based"

    def select_victim(self, entries: list["CacheEntry"]) -> int:
        def key(i: int) -> tuple[int, int, int]:
            entry = entries[i]
            return (int(entry.pinned), entry.remaining, entry.last_access)

        return min(range(len(entries)), key=key)


#: Registry used by configuration code.
REPLACEMENT_POLICIES = {
    "lru": LRUReplacement,
    "use_based": UseBasedReplacement,
}


def make_replacement_policy(name: str) -> ReplacementPolicy:
    """Instantiate the named replacement policy.

    Raises:
        ValueError: for an unknown policy name.
    """
    try:
        return REPLACEMENT_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from "
            f"{sorted(REPLACEMENT_POLICIES)}"
        ) from None
