"""Optimistic two-level register file (Balasubramonian et al., paper §5.5).

The two-level scheme is not a cache: the L1 register file holds *all*
architecturally required values, and a move engine copies values deemed
dead-ish (no pending consumers, architectural register reassigned) to an
L2 file, freeing L1 slots for rename. Its costs, per the paper, are:

* **rename stalls** when no free L1 register exists (the dominant cost),
* **recovery copies** from L2 back to L1 after control mis-speculation,
  which stall rename if they outlast the front-end refill.

The paper's evaluation grants the scheme several optimistic boosts, which
we replicate: 4 registers/cycle L1<->L2 bandwidth, an infinite L2, and
explicit modelling of recovery transfers in parallel with pipeline
refill.

Values are identified by the caller's physical-register ids; the class
tracks L1 slot occupancy, move eligibility, and recovery cost.
"""

from __future__ import annotations

from collections import deque

from repro.errors import RegisterFileError

_IN_L1 = 0
_MOVED = 1
_FREED = 2


class TwoLevelRegisterFile:
    """L1/L2 register file with a threshold-driven move engine.

    Args:
        l1_capacity: number of L1 registers (the paper uses the compared
            cache size plus 32 architected-FP slots).
        l2_latency: L2 read latency, observed during recovery.
        move_bandwidth: values moved (or restored) per cycle (4).
        free_threshold: moves begin when free L1 registers drop below
            this count.
        recovery_window: how far back (cycles) moves are considered
            at-risk on a misprediction; approximates moves performed
            while the branch was unresolved.
    """

    def __init__(
        self,
        l1_capacity: int,
        l2_latency: int = 2,
        move_bandwidth: int = 4,
        free_threshold: int = 12,
        recovery_window: int = 16,
    ) -> None:
        if l1_capacity <= 0:
            raise ValueError("l1_capacity must be positive")
        self.l1_capacity = l1_capacity
        self.l2_latency = l2_latency
        self.move_bandwidth = move_bandwidth
        self.free_threshold = free_threshold
        self.recovery_window = recovery_window

        self.free_slots = l1_capacity
        self._state: dict[int, int] = {}
        self._pending: dict[int, int] = {}
        self._reassigned: set[int] = set()
        self._eligible: deque[int] = deque()
        self._recent_moves: deque[tuple[int, int]] = deque()  # (cycle, vid)

        self.moves = 0
        self.restores = 0
        self.rename_stall_cycles = 0
        self.recovery_stall_cycles = 0

    # ------------------------------------------------------------------
    # Allocation interface (rename stage).

    def can_allocate(self) -> bool:
        """True when a free L1 register is available this cycle."""
        return self.free_slots > 0

    def allocate(self, vid: int) -> None:
        """Claim an L1 slot for value *vid*.

        Raises:
            RegisterFileError: when no slot is free (caller must stall).
        """
        if self.free_slots <= 0:
            raise RegisterFileError("no free L1 registers")
        if self._state.get(vid) == _IN_L1:
            raise RegisterFileError(f"value {vid} already allocated")
        self.free_slots -= 1
        self._state[vid] = _IN_L1
        self._pending[vid] = 0

    def note_rename_stall(self, cycles: int = 1) -> None:
        """Account rename stall cycles caused by L1 exhaustion."""
        self.rename_stall_cycles += cycles

    # ------------------------------------------------------------------
    # Liveness tracking (move eligibility).

    def add_pending_consumer(self, vid: int) -> None:
        """A consumer of *vid* was renamed but has not executed."""
        if vid in self._pending:
            self._pending[vid] += 1

    def consumer_executed(self, vid: int, now: int) -> None:
        """A renamed consumer of *vid* finished executing."""
        if vid in self._pending and self._pending[vid] > 0:
            self._pending[vid] -= 1
            self._maybe_eligible(vid)

    def reassigned(self, vid: int, now: int) -> None:
        """The architectural register holding *vid* was renamed again."""
        self._reassigned.add(vid)
        self._maybe_eligible(vid)

    def _maybe_eligible(self, vid: int) -> None:
        if (
            self._state.get(vid) == _IN_L1
            and vid in self._reassigned
            and self._pending.get(vid, 0) == 0
        ):
            self._eligible.append(vid)

    def free(self, vid: int) -> None:
        """The value is architecturally dead (overwriter retired)."""
        state = self._state.pop(vid, None)
        if state == _IN_L1:
            self.free_slots += 1
        self._pending.pop(vid, None)
        self._reassigned.discard(vid)

    # ------------------------------------------------------------------
    # Move engine.

    def pending_moves(self) -> bool:
        """True when the next :meth:`tick` could change any state.

        The event-driven core may skip a cycle's tick only when this is
        False: at or above the free threshold ``tick`` returns without
        touching anything, and below it an empty eligibility queue means
        there is nothing to move (the ``_recent_moves`` pruning a ticked
        cycle would also do is deferred harmlessly — entries older than
        the prune window already fail ``on_mispredict``'s much tighter
        recovery-window filter).
        """
        return self.free_slots < self.free_threshold and bool(self._eligible)

    def tick(self, now: int) -> int:
        """Run one cycle of the move engine; returns values moved."""
        if self.free_slots >= self.free_threshold:
            return 0
        moved = 0
        while moved < self.move_bandwidth and self._eligible:
            vid = self._eligible.popleft()
            # Entries may be stale (freed, re-appended, or regained a
            # pending consumer since being queued).
            if (
                self._state.get(vid) != _IN_L1
                or self._pending.get(vid, 0) != 0
                or vid not in self._reassigned
            ):
                continue
            self._state[vid] = _MOVED
            self.free_slots += 1
            self.moves += 1
            moved += 1
            self._recent_moves.append((now, vid))
        while (
            self._recent_moves
            and self._recent_moves[0][0] < now - 4 * self.recovery_window
        ):
            self._recent_moves.popleft()
        return moved

    # ------------------------------------------------------------------
    # Mis-speculation recovery.

    def on_mispredict(self, resolve_cycle: int, refill_cycles: int) -> int:
        """Model L2->L1 recovery after a mispredicted branch.

        Values moved to L2 while the branch was unresolved may have had
        their architectural reassignment squashed and must be restored to
        L1. Restores run at ``move_bandwidth`` per cycle, in parallel
        with the front-end refill; rename stalls only for the excess.

        Returns:
            Extra rename-stall cycles beyond the refill shadow.
        """
        at_risk = [
            vid for cycle, vid in self._recent_moves
            if cycle >= resolve_cycle - self.recovery_window
            and self._state.get(vid) == _MOVED
        ]
        if not at_risk:
            return 0
        for vid in at_risk:
            self._state[vid] = _IN_L1
            self._reassigned.discard(vid)
            self.free_slots -= 1
        self.restores += len(at_risk)
        transfer = self.l2_latency + -(-len(at_risk) // self.move_bandwidth)
        extra = max(0, transfer - refill_cycles)
        self.recovery_stall_cycles += extra
        return extra

    # ------------------------------------------------------------------

    @property
    def l1_occupancy(self) -> int:
        """Currently occupied L1 registers."""
        return self.l1_capacity - self.free_slots
