"""Monolithic physical register file model.

In the no-cache baseline the register file supplies every operand not
covered by the bypass network, at a multi-cycle read latency. The timing
consequences (longer issue-to-execute depth, longer misprediction and
replay loops, and the dead window between the end of the bypass network
and value availability in the file) are applied by the pipeline; this
class carries the latency parameters and bandwidth accounting.
"""

from __future__ import annotations


class PhysicalRegisterFile:
    """A monolithic multi-cycle register file.

    Args:
        num_registers: capacity (512 per Table 1).
        read_latency: cycles for a read (3 in the paper's baseline).
        write_latency: cycles for a write (equal to read in the paper).
        bypass_stages: stages of the bypass network in front of it (2).
    """

    def __init__(
        self,
        num_registers: int = 512,
        read_latency: int = 3,
        write_latency: int | None = None,
        bypass_stages: int = 2,
    ) -> None:
        if read_latency < 1:
            raise ValueError("read_latency must be >= 1")
        self.num_registers = num_registers
        self.read_latency = read_latency
        self.write_latency = (
            read_latency if write_latency is None else write_latency
        )
        self.bypass_stages = bypass_stages
        self.reads = 0
        self.writes = 0

    def record_read(self, operands: int = 1) -> None:
        """Account for operand reads served by the file."""
        self.reads += operands

    def record_write(self) -> None:
        """Account for one result write into the file."""
        self.writes += 1

    def storage_ready_time(self, producer_complete: int) -> int:
        """Earliest cycle a consumer may issue to read a value from storage.

        Assuming read-during-write forwarding inside the array, a
        consumer's R-cycle read returns the value as long as the read
        *completes* no earlier than the write completes: with issue at
        ``t`` the read spans ``[t+1, t+R]``, and the write completes at
        ``producer_complete + W``, giving ``t >= complete + W - R``.
        """
        return producer_complete + self.write_latency - self.read_latency
