"""The register cache: a small set-associative cache of register values.

Each entry is augmented with a *remaining-use* count (paper §3) that the
cache decrements as it satisfies reads. The cache delegates victim
selection to a :class:`~repro.regfile.replacement.ReplacementPolicy` and
set resolution to an :class:`~repro.regfile.indexing.IndexPolicy`.

The structure also owns the non-performance statistics the paper reports
in Figures 8-10 and Table 2: miss taxonomy (filtered / conflict /
capacity), write filtering effects, occupancy, entry lifetimes, reads per
cached value, and per-value cache counts. All statistics are maintained
incrementally so they cost O(1) per access.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import RegisterFileError
from repro.regfile.indexing import IndexPolicy
from repro.regfile.replacement import ReplacementPolicy

#: Miss-cause labels used in the statistics (Figure 8 taxonomy).
MISS_FILTERED = "filtered"
MISS_CONFLICT = "conflict"
MISS_CAPACITY = "capacity"
MISS_COLD = "cold"


class CacheEntry:
    """One register-cache entry.

    Attributes:
        preg: physical register tag (full tag under decoupled indexing).
        remaining: remaining-use count.
        pinned: saturated predicted use; never decremented, last-choice
            victim (paper §3.3).
        last_access: LRU timestamp.
        written_at: cycle the entry was (last) written, for lifetimes.
        reads: reads satisfied by this cached instance.
        is_fill: True when the instance was brought in by a miss fill.
    """

    __slots__ = (
        "preg", "remaining", "pinned", "last_access", "written_at",
        "reads", "is_fill",
    )

    def __init__(
        self, preg: int, remaining: int, pinned: bool, now: int,
        is_fill: bool,
    ) -> None:
        self.preg = preg
        self.remaining = remaining
        self.pinned = pinned
        self.last_access = now
        self.written_at = now
        self.reads = 0
        self.is_fill = is_fill


@dataclass
class CacheStats:
    """Aggregate register-cache statistics.

    Attributes mirror the paper's reported metrics; see Figures 8-10 and
    Table 2.
    """

    reads: int = 0
    hits: int = 0
    misses: dict[str, int] = field(default_factory=lambda: {
        MISS_FILTERED: 0, MISS_CONFLICT: 0, MISS_CAPACITY: 0, MISS_COLD: 0,
    })
    writes_initial: int = 0
    writes_fill: int = 0
    writes_filtered: int = 0
    evictions: int = 0
    evictions_with_uses: int = 0
    zero_use_victims: int = 0
    invalidations: int = 0
    instances_cached: int = 0
    instances_never_read: int = 0
    lifetime_sum: int = 0
    lifetime_count: int = 0
    values_freed: int = 0
    values_never_cached: int = 0
    occupancy_integral: int = 0

    @property
    def miss_count(self) -> int:
        """Total misses across all causes."""
        return sum(self.misses.values())

    @property
    def miss_rate(self) -> float:
        """Per-operand miss rate (misses / cache reads)."""
        return self.miss_count / self.reads if self.reads else 0.0

    @property
    def reads_per_cached_value(self) -> float:
        """Average reads satisfied per cached instance (Table 2 row 1)."""
        if not self.instances_cached:
            return 0.0
        return self.hits / self.instances_cached

    @property
    def cache_count(self) -> float:
        """Average times each produced value was cached (Table 2 row 2)."""
        if not self.values_freed:
            return 0.0
        return self.instances_cached / self.values_freed

    @property
    def never_read_fraction(self) -> float:
        """Fraction of cached instances never read (Figure 10, left)."""
        if not self.instances_cached:
            return 0.0
        return self.instances_never_read / self.instances_cached

    @property
    def filtered_write_fraction(self) -> float:
        """Fraction of initial writes filtered (Figure 10, middle)."""
        total = self.writes_initial + self.writes_filtered
        return self.writes_filtered / total if total else 0.0

    @property
    def never_cached_fraction(self) -> float:
        """Fraction of produced values never cached (Figure 10, right)."""
        if not self.values_freed:
            return 0.0
        return self.values_never_cached / self.values_freed

    def average_occupancy(self, cycles: int) -> float:
        """Time-averaged number of valid entries (Table 2 row 3)."""
        return self.occupancy_integral / cycles if cycles else 0.0

    @property
    def average_lifetime(self) -> float:
        """Average cycles between entry write and departure (Table 2)."""
        if not self.lifetime_count:
            return 0.0
        return self.lifetime_sum / self.lifetime_count

    def to_dict(self) -> dict:
        """Plain-data form (ints and a str-keyed dict), JSON-safe."""
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "misses"
        }
        out["misses"] = dict(self.misses)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        data["misses"] = dict(data.get("misses", {}))
        return cls(**data)

    @classmethod
    def merge(cls, parts: "list[CacheStats]") -> "CacheStats":
        """Sum several cache-stat records (suite-level aggregation).

        Every counter adds, including per-cause miss counts, so derived
        rates on the merged record are traffic-weighted means.
        """
        merged = cls()
        for part in parts:
            for spec in dataclasses.fields(cls):
                if spec.name == "misses":
                    continue
                setattr(
                    merged, spec.name,
                    getattr(merged, spec.name) + getattr(part, spec.name),
                )
            for cause, count in part.misses.items():
                merged.misses[cause] = merged.misses.get(cause, 0) + count
        return merged


class RegisterCache:
    """Set-associative register cache with remaining-use counts.

    Args:
        num_entries: total entries. A value of *assoc* equal to 0 makes
            the cache fully associative (one set of ``num_entries``
            ways); otherwise ``num_entries`` must be a multiple of
            *assoc*. Decoupled indexing makes non-power-of-two set
            counts legal (paper §4.1), so no power-of-two check is made.
        assoc: ways per set (0 = fully associative).
        replacement: victim-selection policy.
        index_policy: set-resolution policy (standard or decoupled).
    """

    def __init__(
        self,
        num_entries: int,
        assoc: int,
        replacement: ReplacementPolicy,
        index_policy: IndexPolicy,
    ) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if assoc == 0:
            assoc = num_entries
        if num_entries % assoc:
            raise ValueError("num_entries must be a multiple of assoc")
        self.num_entries = num_entries
        self.assoc = assoc
        self.num_sets = num_entries // assoc
        if index_policy.num_sets != self.num_sets:
            raise ValueError(
                f"index policy built for {index_policy.num_sets} sets, "
                f"cache has {self.num_sets}"
            )
        self.replacement = replacement
        self.index_policy = index_policy
        self.stats = CacheStats()
        #: Optional :class:`repro.obs.tracer.EventTracer`; the pipeline
        #: attaches one when ``REPRO_TRACE_EVENTS`` is on. Every hook
        #: below costs one identity test when tracing is off.
        self.tracer = None

        self._sets: list[list[CacheEntry]] = [[] for _ in range(self.num_sets)]
        self._where: dict[int, int] = {}  # preg -> set index (validity map)
        # Why an absent value is absent, for miss classification.
        self._absent_reason: dict[int, str] = {}
        # Per-allocation bookkeeping (reset by invalidate).
        self._cached_count_this_alloc: dict[int, int] = {}
        self._valid = 0
        self._last_occupancy_update = 0

    # ------------------------------------------------------------------
    # Time-weighted occupancy bookkeeping.

    def _touch_occupancy(self, now: int) -> None:
        if now > self._last_occupancy_update:
            self.stats.occupancy_integral += self._valid * (
                now - self._last_occupancy_update
            )
            self._last_occupancy_update = now

    def finalize(self, now: int) -> None:
        """Flush occupancy accounting at end of simulation."""
        self._touch_occupancy(now)

    @property
    def occupancy(self) -> int:
        """Current number of valid entries."""
        return self._valid

    # ------------------------------------------------------------------
    # Access paths.

    def set_for(self, preg: int, assigned_set: int) -> int:
        """Set index used for *preg* given its rename-time assignment."""
        return self.index_policy.set_for(preg, assigned_set)

    def contains(self, preg: int) -> bool:
        """True when *preg*'s value is currently cached."""
        return preg in self._where

    def lookup(self, preg: int, assigned_set: int, now: int) -> bool:
        """Read *preg* from the cache; returns hit/miss.

        On a hit the remaining-use count is decremented (unless pinned)
        and LRU state updated. On a miss the cause is classified and
        recorded (Figure 8 taxonomy).
        """
        self.stats.reads += 1
        set_index = self.set_for(preg, assigned_set)
        stored = self._where.get(preg)
        if stored is not None:
            if stored != set_index:
                raise RegisterFileError(
                    f"preg {preg} cached in set {stored} but accessed via "
                    f"set {set_index}"
                )
            for entry in self._sets[set_index]:
                if entry.preg == preg:
                    entry.last_access = now
                    entry.reads += 1
                    if not entry.pinned and entry.remaining > 0:
                        entry.remaining -= 1
                    self.stats.hits += 1
                    if self.tracer is not None:
                        self.tracer.emit(
                            "rc_hit", "cache", now,
                            args={"preg": preg, "set": set_index,
                                  "remaining": entry.remaining},
                        )
                    return True
            raise RegisterFileError(
                f"validity map claims preg {preg} in set {stored} "
                "but entry not found"
            )  # pragma: no cover - internal invariant
        cause = self._absent_reason.get(preg, MISS_COLD)
        self.stats.misses[cause] += 1
        if self.tracer is not None:
            self.tracer.emit(
                "rc_miss", "cache", now,
                args={"preg": preg, "set": set_index, "cause": cause},
            )
        return False

    def write(
        self,
        preg: int,
        assigned_set: int,
        remaining: int,
        pinned: bool,
        now: int,
        is_fill: bool = False,
    ) -> int | None:
        """Insert *preg*'s value; returns the evicted preg, if any.

        The insertion-policy decision is the caller's responsibility
        (the pipeline has the bypass information); this method performs
        the write unconditionally. Writing a preg already present
        refreshes the entry in place.
        """
        set_index = self.set_for(preg, assigned_set)
        entries = self._sets[set_index]
        self._touch_occupancy(now)

        if preg in self._where:
            # Refresh in place (e.g. a fill racing a pending write).
            for entry in entries:
                if entry.preg == preg:
                    entry.remaining = remaining
                    entry.pinned = pinned
                    entry.last_access = now
                    return None
            raise RegisterFileError(  # pragma: no cover
                f"validity map out of sync for preg {preg}"
            )

        evicted: int | None = None
        if len(entries) >= self.assoc:
            victim_index = self.replacement.select_victim(entries)
            victim = entries.pop(victim_index)
            evicted = victim.preg
            self._retire_entry(victim, now)
            del self._where[victim.preg]
            self.stats.evictions += 1
            if victim.remaining > 0 or victim.pinned:
                self.stats.evictions_with_uses += 1
            else:
                self.stats.zero_use_victims += 1
            # Eviction-cause classification: a full cache means genuine
            # capacity pressure; otherwise the set conflicted while other
            # sets had room.
            cause = (
                MISS_CAPACITY if self._valid >= self.num_entries
                else MISS_CONFLICT
            )
            self._absent_reason[victim.preg] = cause
            self._valid -= 1
            if self.tracer is not None:
                self.tracer.emit(
                    "rc_evict", "cache", now,
                    args={"preg": victim.preg, "set": set_index,
                          "cause": cause, "remaining": victim.remaining},
                )

        entries.append(CacheEntry(preg, remaining, pinned, now, is_fill))
        self._where[preg] = set_index
        self._absent_reason.pop(preg, None)
        self._valid += 1
        self.stats.instances_cached += 1
        self._cached_count_this_alloc[preg] = (
            self._cached_count_this_alloc.get(preg, 0) + 1
        )
        if is_fill:
            self.stats.writes_fill += 1
        else:
            self.stats.writes_initial += 1
        if self.tracer is not None:
            self.tracer.emit(
                "rc_fill" if is_fill else "rc_insert", "cache", now,
                args={"preg": preg, "set": set_index,
                      "remaining": remaining, "pinned": pinned},
            )
        return evicted

    def record_filtered_write(self, preg: int, now: int = 0) -> None:
        """Record that the insertion policy skipped *preg*'s write."""
        self.stats.writes_filtered += 1
        self._absent_reason.setdefault(preg, MISS_FILTERED)
        if self.tracer is not None:
            self.tracer.emit(
                "rc_fill_skip", "cache", now, args={"preg": preg},
            )

    def invalidate(self, preg: int, now: int) -> None:
        """Remove *preg* when its physical register is freed (§2.2).

        Also closes out the per-allocation statistics for the value,
        whether or not it was ever cached.
        """
        self._touch_occupancy(now)
        set_index = self._where.pop(preg, None)
        if set_index is not None:
            entries = self._sets[set_index]
            for position, entry in enumerate(entries):
                if entry.preg == preg:
                    self._retire_entry(entry, now)
                    entries.pop(position)
                    break
            self._valid -= 1
            self.stats.invalidations += 1
        self._absent_reason.pop(preg, None)
        cached_times = self._cached_count_this_alloc.pop(preg, 0)
        self.stats.values_freed += 1
        if cached_times == 0:
            self.stats.values_never_cached += 1

    def _retire_entry(self, entry: CacheEntry, now: int) -> None:
        """Fold a departing entry into lifetime/read statistics."""
        self.stats.lifetime_sum += now - entry.written_at
        self.stats.lifetime_count += 1
        if entry.reads == 0:
            self.stats.instances_never_read += 1

    # ------------------------------------------------------------------
    # Observability.

    def publish_metrics(self, registry, **labels: object) -> None:
        """Publish the cache's counters into a metrics registry.

        Called once at the end of a run (after :meth:`finalize`), so the
        cost is one bulk fold regardless of run length. *registry* is a
        :class:`repro.obs.metrics.MetricsRegistry`; a disabled registry
        returns immediately.
        """
        if not registry.enabled:
            return
        stats = self.stats
        registry.publish("rc", stats.to_dict(), **labels)
        for cause, count in stats.misses.items():
            registry.counter("rc.misses", cause=cause, **labels).inc(count)
        registry.gauge("rc.miss_rate", **labels).set(stats.miss_rate)

    # ------------------------------------------------------------------

    def remaining_uses(self, preg: int) -> int | None:
        """Remaining-use count of a cached value (None if absent)."""
        set_index = self._where.get(preg)
        if set_index is None:
            return None
        for entry in self._sets[set_index]:
            if entry.preg == preg:
                return entry.remaining
        return None  # pragma: no cover - map kept in sync

    def entries(self) -> list[CacheEntry]:
        """All valid entries (for tests and introspection)."""
        return [entry for entries in self._sets for entry in entries]

    def check_invariants(self) -> None:
        """Validate internal consistency (used by property tests).

        Raises:
            RegisterFileError: if the validity map, set sizes, or valid
                count disagree with the actual contents.
        """
        seen = {}
        for set_index, entries in enumerate(self._sets):
            if len(entries) > self.assoc:
                raise RegisterFileError(
                    f"set {set_index} holds {len(entries)} > {self.assoc}"
                )
            for entry in entries:
                if entry.preg in seen:
                    raise RegisterFileError(
                        f"preg {entry.preg} cached twice"
                    )
                seen[entry.preg] = set_index
        if seen != self._where:
            raise RegisterFileError("validity map out of sync")
        if len(seen) != self._valid:
            raise RegisterFileError("valid count out of sync")
