"""Backing register file behind a register cache (paper §2.2).

All produced values are written into the backing file; it guarantees no
value is lost when the cache evicts. Because the cache filters nearly all
reads, a single read port (shared with a write port) suffices; the paper
exploits the resulting 3x port reduction to make the backing file one
cycle faster than an equal-capacity monolithic file.
"""

from __future__ import annotations


class BackingFile:
    """Backing file with a single arbitrated read port.

    Args:
        num_registers: capacity (matches the physical register count).
        read_latency: read latency in cycles (2 in the paper's default).
        write_latency: write latency (defaults to the read latency).
        read_ports: simultaneous reads per cycle (1 per the paper).
    """

    def __init__(
        self,
        num_registers: int = 512,
        read_latency: int = 2,
        write_latency: int | None = None,
        read_ports: int = 1,
    ) -> None:
        if read_latency < 1:
            raise ValueError("read_latency must be >= 1")
        if read_ports < 1:
            raise ValueError("read_ports must be >= 1")
        self.num_registers = num_registers
        self.read_latency = read_latency
        self.write_latency = (
            read_latency if write_latency is None else write_latency
        )
        self.read_ports = read_ports
        self.reads = 0
        self.writes = 0
        # Cycle -> reads already scheduled that cycle (port arbitration).
        self._port_schedule: dict[int, int] = {}

    def record_write(self) -> None:
        """Account for one result write (every produced value)."""
        self.writes += 1

    def schedule_read(self, earliest: int, value_written_at: int) -> int:
        """Schedule a miss-fill read; returns the cycle data is available.

        The read may not start before *earliest* (miss detection) nor
        before the value has finished writing into the backing file
        (paper §5.2 notes both delays), and must win a read port.

        Args:
            earliest: first cycle the requester could start the read.
            value_written_at: cycle the producer's backing-file write
                completes.

        Returns:
            Cycle at which the value is available to the requester.
        """
        start = max(earliest, value_written_at)
        while self._port_schedule.get(start, 0) >= self.read_ports:
            start += 1
        self._port_schedule[start] = self._port_schedule.get(start, 0) + 1
        # Garbage-collect old slots occasionally to bound memory.
        if len(self._port_schedule) > 4096:
            horizon = start - 64
            self._port_schedule = {
                cycle: count
                for cycle, count in self._port_schedule.items()
                if cycle >= horizon
            }
        self.reads += 1
        return start + self.read_latency
