"""Register-cache insertion (write-filtering) policies (paper §3.1).

The insertion policy decides, at cache-write time, whether a newly
produced value is written into the register cache at all. Only
*first-stage* bypass consumers are known by then (paper §3.1: "Only
next-cycle consumers can affect the cache write decision").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class WriteContext:
    """Information available when the cache-write decision is made.

    Attributes:
        pred_uses: effective predicted degree of use (defaults already
            applied).
        bypassed_first_stage: number of consumers satisfied by the first
            bypass stage before the write decision.
        pinned: True when the prediction saturated at the maximum
            representable count (such values are never filtered).
    """

    pred_uses: int
    bypassed_first_stage: int
    pinned: bool


class InsertionPolicy(abc.ABC):
    """Decides whether a produced value enters the register cache."""

    name: str

    @abc.abstractmethod
    def should_insert(self, ctx: WriteContext) -> bool:
        """True when the value should be written into the cache."""


class AlwaysInsert(InsertionPolicy):
    """Write every produced value (the LRU reference design)."""

    name = "always"

    def should_insert(self, ctx: WriteContext) -> bool:
        return True


class NonBypassInsert(InsertionPolicy):
    """Cruz et al.'s heuristic: skip values bypassed to *any* consumer.

    Uses bypassing as a proxy for liveness: a value observed on the
    bypass network before the write is assumed dead. Values with several
    consumers that bypassed to only some of them are filtered anyway,
    causing the extra misses the paper highlights (§3.1).
    """

    name = "non_bypass"

    def should_insert(self, ctx: WriteContext) -> bool:
        return ctx.bypassed_first_stage == 0


class UseBasedInsert(InsertionPolicy):
    """The paper's policy: skip only values with no *remaining* uses.

    A value is filtered exactly when the first-stage bypass consumers
    account for all of its predicted uses. Saturated (pinned) values are
    always inserted.
    """

    name = "use_based"

    def should_insert(self, ctx: WriteContext) -> bool:
        if ctx.pinned:
            return True
        return ctx.pred_uses - ctx.bypassed_first_stage > 0


#: Registry used by configuration code.
INSERTION_POLICIES = {
    "always": AlwaysInsert,
    "non_bypass": NonBypassInsert,
    "use_based": UseBasedInsert,
}


def make_insertion_policy(name: str) -> InsertionPolicy:
    """Instantiate the named insertion policy.

    Raises:
        ValueError: for an unknown policy name.
    """
    try:
        return INSERTION_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown insertion policy {name!r}; choose from "
            f"{sorted(INSERTION_POLICIES)}"
        ) from None
