"""Register storage hierarchies: caches, files, and policies."""

from repro.regfile.backing import BackingFile
from repro.regfile.indexing import (
    INDEX_POLICIES,
    FilteredRoundRobinIndexing,
    IndexPolicy,
    MinimumIndexing,
    RoundRobinIndexing,
    StandardIndexing,
    make_index_policy,
)
from repro.regfile.insertion import (
    INSERTION_POLICIES,
    AlwaysInsert,
    InsertionPolicy,
    NonBypassInsert,
    UseBasedInsert,
    WriteContext,
    make_insertion_policy,
)
from repro.regfile.physical import PhysicalRegisterFile
from repro.regfile.register_cache import (
    MISS_CAPACITY,
    MISS_COLD,
    MISS_CONFLICT,
    MISS_FILTERED,
    CacheEntry,
    CacheStats,
    RegisterCache,
)
from repro.regfile.replacement import (
    REPLACEMENT_POLICIES,
    LRUReplacement,
    ReplacementPolicy,
    UseBasedReplacement,
    make_replacement_policy,
)
from repro.regfile.two_level import TwoLevelRegisterFile

__all__ = [
    "AlwaysInsert",
    "BackingFile",
    "CacheEntry",
    "CacheStats",
    "FilteredRoundRobinIndexing",
    "INDEX_POLICIES",
    "INSERTION_POLICIES",
    "IndexPolicy",
    "InsertionPolicy",
    "LRUReplacement",
    "MISS_CAPACITY",
    "MISS_COLD",
    "MISS_CONFLICT",
    "MISS_FILTERED",
    "MinimumIndexing",
    "NonBypassInsert",
    "PhysicalRegisterFile",
    "REPLACEMENT_POLICIES",
    "RegisterCache",
    "ReplacementPolicy",
    "RoundRobinIndexing",
    "StandardIndexing",
    "TwoLevelRegisterFile",
    "UseBasedInsert",
    "UseBasedReplacement",
    "WriteContext",
    "make_index_policy",
    "make_insertion_policy",
    "make_replacement_policy",
]
