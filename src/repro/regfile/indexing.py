"""Register-cache set-index assignment policies (paper §4).

*Standard* indexing derives the set from the physical register number —
the baseline the paper criticizes, since physical register ids come off a
freelist and carry no locality. *Decoupled* indexing assigns an arbitrary
set at rename time; the assignment travels with the mapping through the
rename map (see :class:`repro.rename.map_table.MapTable`).

Implemented policies (paper §4.2):

* ``preg`` — standard indexing (set = preg mod num_sets).
* ``round_robin`` — sets assigned sequentially in rename order.
* ``minimum`` — set with the smallest sum of predicted uses among the
  values currently assigned to it.
* ``filtered_rr`` — round-robin, skipping sets whose count of *high-use*
  values (> ``high_use_threshold`` predicted uses) exceeds
  ``skip_threshold`` (default: half the associativity).
"""

from __future__ import annotations

import abc


class IndexPolicy(abc.ABC):
    """Assigns register-cache sets to values at rename time."""

    #: True when the policy assigns sets independent of the preg.
    decoupled: bool = True

    def __init__(self, num_sets: int) -> None:
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        self.num_sets = num_sets

    @abc.abstractmethod
    def assign(self, pred_uses: int) -> int:
        """Assign a set for a value with *pred_uses* predicted consumers."""

    def release(self, set_index: int, pred_uses: int) -> None:
        """Notify that a value assigned to *set_index* was freed."""

    def set_for(self, preg: int, assigned_set: int) -> int:
        """Resolve the set used for accesses to *preg*.

        Decoupled policies use the assignment carried through rename;
        standard indexing derives the set from the preg itself.
        """
        return assigned_set


class StandardIndexing(IndexPolicy):
    """Baseline: low-order bits of the physical register tag."""

    decoupled = False

    def assign(self, pred_uses: int) -> int:
        # The actual set is derived from the preg at access time.
        return -1

    def set_for(self, preg: int, assigned_set: int) -> int:
        return preg % self.num_sets


class RoundRobinIndexing(IndexPolicy):
    """Sequential set assignment in rename order.

    Relies on the correlation between rename order and execution order to
    spread simultaneously-live values across sets (paper §4.2).
    """

    def __init__(self, num_sets: int) -> None:
        super().__init__(num_sets)
        self._next = 0

    def assign(self, pred_uses: int) -> int:
        set_index = self._next
        self._next = (self._next + 1) % self.num_sets
        return set_index


class MinimumIndexing(IndexPolicy):
    """Assign the set with the minimum sum of predicted uses.

    Conceptually attractive but hardware-expensive (the paper notes the
    implementation difficulty); included as the quality ceiling for
    use-aware assignment.
    """

    def __init__(self, num_sets: int) -> None:
        super().__init__(num_sets)
        self._sums = [0] * num_sets

    def assign(self, pred_uses: int) -> int:
        set_index = min(range(self.num_sets), key=self._sums.__getitem__)
        self._sums[set_index] += pred_uses
        return set_index

    def release(self, set_index: int, pred_uses: int) -> None:
        if set_index >= 0:
            self._sums[set_index] = max(0, self._sums[set_index] - pred_uses)


class FilteredRoundRobinIndexing(IndexPolicy):
    """Round-robin that skips sets crowded with high-use values.

    A count of high-use values (> ``high_use_threshold`` predicted uses)
    is kept per set; sets whose count exceeds ``skip_threshold`` are
    skipped in the round-robin order. The paper found a high-use cutoff
    of five uses and a skip threshold of half the associativity to work
    well (§4.2).
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int = 2,
        high_use_threshold: int = 5,
        skip_threshold: int | None = None,
    ) -> None:
        super().__init__(num_sets)
        self.high_use_threshold = high_use_threshold
        self.skip_threshold = (
            max(1, assoc // 2) if skip_threshold is None else skip_threshold
        )
        self._high_counts = [0] * num_sets
        self._next = 0

    def _is_high_use(self, pred_uses: int) -> bool:
        return pred_uses > self.high_use_threshold

    def assign(self, pred_uses: int) -> int:
        # Scan at most one full revolution; if every set is crowded, fall
        # back to plain round-robin placement.
        chosen = self._next
        for _ in range(self.num_sets):
            candidate = self._next
            self._next = (self._next + 1) % self.num_sets
            if self._high_counts[candidate] < self.skip_threshold:
                chosen = candidate
                break
        if self._is_high_use(pred_uses):
            self._high_counts[chosen] += 1
        return chosen

    def release(self, set_index: int, pred_uses: int) -> None:
        if set_index >= 0 and self._is_high_use(pred_uses):
            if self._high_counts[set_index] > 0:
                self._high_counts[set_index] -= 1


#: Registry used by configuration code.
INDEX_POLICIES = {
    "preg": StandardIndexing,
    "round_robin": RoundRobinIndexing,
    "minimum": MinimumIndexing,
    "filtered_rr": FilteredRoundRobinIndexing,
}


def make_index_policy(name: str, num_sets: int, assoc: int) -> IndexPolicy:
    """Instantiate the named index policy.

    Args:
        name: one of :data:`INDEX_POLICIES`.
        num_sets: number of register-cache sets.
        assoc: cache associativity (used by ``filtered_rr``).

    Raises:
        ValueError: for an unknown policy name.
    """
    if name not in INDEX_POLICIES:
        raise ValueError(
            f"unknown index policy {name!r}; choose from "
            f"{sorted(INDEX_POLICIES)}"
        )
    if name == "filtered_rr":
        return FilteredRoundRobinIndexing(num_sets, assoc=assoc)
    return INDEX_POLICIES[name](num_sets)
