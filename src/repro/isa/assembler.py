"""A small two-pass assembler for the synthetic ISA.

Syntax overview (one statement per line, ``#`` starts a comment)::

    main:                       # label
        addi r2, r0, 100        # immediate ALU
        add  r4, r4, r3         # three-register ALU
        lw   r3, 0(r2)          # load: offset(base)
        sw   r3, 4(r2)          # store: data, offset(base)
        beq  r2, r5, loop       # branch to label (absolute target)
        jal  func               # call (link register implicit)
        jalr r9                 # indirect call through r9
        ret                     # return through the link register
        halt
    .data 100: 1 2 3 0xff       # initial data memory at word address 100

Branch immediates hold *absolute instruction indices*; the assembler
resolves label references in the second pass.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.instruction import LINK_REG, Instruction
from repro.isa.opcodes import MNEMONICS, Opcode, spec_for
from repro.isa.program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):(.*)$")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\((r\d+)\)$")
_DATA_RE = re.compile(r"^\.data\s+(\d+)\s*:\s*(.*)$")


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad integer {token!r}", line_number) from None


def _parse_reg(token: str, line_number: int) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblyError(f"expected register, got {token!r}", line_number)
    return int(match.group(1))


class _PendingLabel:
    """Placeholder immediate resolved to a label's address in pass two."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


def assemble(source: str, name: str = "<asm>") -> Program:
    """Assemble *source* text into a :class:`Program`.

    Args:
        source: assembly text in the syntax described in the module doc.
        name: program name recorded on the result.

    Returns:
        A validated :class:`Program`.

    Raises:
        AssemblyError: on any syntax error or undefined label.
    """
    program = Program(name=name)
    pending: list[tuple[int, _PendingLabel, int]] = []

    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        data_match = _DATA_RE.match(line)
        if data_match:
            base = int(data_match.group(1))
            values = data_match.group(2).split()
            for offset, token in enumerate(values):
                program.data[base + offset] = _parse_int(token, line_number)
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in program.labels:
                raise AssemblyError(f"duplicate label {label!r}", line_number)
            program.labels[label] = len(program.instructions)
            line = label_match.group(2).strip()
            if not line:
                continue
        inst = _parse_instruction(line, line_number, pending,
                                  len(program.instructions))
        program.instructions.append(inst)

    resolved = list(program.instructions)
    for index, placeholder, line_number in pending:
        target = program.labels.get(placeholder.name)
        if target is None:
            raise AssemblyError(
                f"undefined label {placeholder.name!r}", line_number
            )
        inst = resolved[index]
        resolved[index] = Instruction(
            opcode=inst.opcode, dest=inst.dest, src1=inst.src1,
            src2=inst.src2, imm=target, label=inst.label,
        )
    program.instructions = resolved

    try:
        program.validate()
    except ValueError as exc:
        raise AssemblyError(str(exc)) from exc
    return program


def _parse_instruction(
    line: str,
    line_number: int,
    pending: list[tuple[int, _PendingLabel, int]],
    index: int,
) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    opcode = MNEMONICS.get(mnemonic)
    if opcode is None:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_number)
    operands = (
        [tok.strip() for tok in parts[1].split(",")] if len(parts) > 1 else []
    )

    def imm_or_label(token: str) -> int:
        if _REG_RE.match(token):
            raise AssemblyError(
                f"expected immediate or label, got register {token!r}",
                line_number,
            )
        try:
            return int(token, 0)
        except ValueError:
            pending.append((index, _PendingLabel(token), line_number))
            return 0

    spec = spec_for(opcode)
    if opcode in (Opcode.LW, Opcode.LB):
        if len(operands) != 2:
            raise AssemblyError("load needs: rd, offset(base)", line_number)
        dest = _parse_reg(operands[0], line_number)
        mem = _MEM_RE.match(operands[1])
        if not mem:
            raise AssemblyError(
                f"bad memory operand {operands[1]!r}", line_number
            )
        return Instruction(
            opcode, dest=dest,
            src1=_parse_reg(mem.group(2), line_number),
            imm=int(mem.group(1), 0),
        )
    if opcode in (Opcode.SW, Opcode.SB):
        if len(operands) != 2:
            raise AssemblyError("store needs: rs, offset(base)", line_number)
        data_reg = _parse_reg(operands[0], line_number)
        mem = _MEM_RE.match(operands[1])
        if not mem:
            raise AssemblyError(
                f"bad memory operand {operands[1]!r}", line_number
            )
        return Instruction(
            opcode,
            src1=_parse_reg(mem.group(2), line_number),
            src2=data_reg,
            imm=int(mem.group(1), 0),
        )
    if spec.is_conditional:
        if len(operands) != 3:
            raise AssemblyError("branch needs: rs1, rs2, target", line_number)
        return Instruction(
            opcode,
            src1=_parse_reg(operands[0], line_number),
            src2=_parse_reg(operands[1], line_number),
            imm=imm_or_label(operands[2]),
        )
    if opcode is Opcode.JAL:
        if len(operands) == 1:
            return Instruction(opcode, dest=LINK_REG,
                               imm=imm_or_label(operands[0]))
        if len(operands) == 2:
            return Instruction(
                opcode, dest=_parse_reg(operands[0], line_number),
                imm=imm_or_label(operands[1]),
            )
        raise AssemblyError("jal needs: [rd,] target", line_number)
    if opcode is Opcode.JALR:
        if len(operands) == 1:
            return Instruction(
                opcode, dest=LINK_REG,
                src1=_parse_reg(operands[0], line_number), imm=0,
            )
        if len(operands) == 3:
            return Instruction(
                opcode,
                dest=_parse_reg(operands[0], line_number),
                src1=_parse_reg(operands[1], line_number),
                imm=_parse_int(operands[2], line_number),
            )
        raise AssemblyError("jalr needs: rs | rd, rs, imm", line_number)
    if opcode is Opcode.RET:
        if len(operands) == 0:
            return Instruction(opcode, src1=LINK_REG)
        if len(operands) == 1:
            return Instruction(
                opcode, src1=_parse_reg(operands[0], line_number)
            )
        raise AssemblyError("ret needs: [rs]", line_number)
    if opcode is Opcode.LUI:
        if len(operands) != 2:
            raise AssemblyError("lui needs: rd, imm", line_number)
        return Instruction(
            opcode, dest=_parse_reg(operands[0], line_number),
            imm=_parse_int(operands[1], line_number),
        )
    if opcode in (Opcode.NOP, Opcode.HALT):
        if operands:
            raise AssemblyError(
                f"{mnemonic} takes no operands", line_number
            )
        return Instruction(opcode)
    if opcode is Opcode.OUT:
        if len(operands) != 1:
            raise AssemblyError("out needs: rs", line_number)
        return Instruction(opcode, src1=_parse_reg(operands[0], line_number))
    if opcode is Opcode.MOV:
        if len(operands) != 2:
            raise AssemblyError("mov needs: rd, rs", line_number)
        return Instruction(
            opcode,
            dest=_parse_reg(operands[0], line_number),
            src1=_parse_reg(operands[1], line_number),
        )
    # Generic ALU forms. Immediates may be label references (resolved to
    # the label's instruction index), which lets programs build jump
    # tables at run time.
    if spec.has_imm:
        if len(operands) != 3:
            raise AssemblyError(
                f"{mnemonic} needs: rd, rs, imm", line_number
            )
        return Instruction(
            opcode,
            dest=_parse_reg(operands[0], line_number),
            src1=_parse_reg(operands[1], line_number),
            imm=imm_or_label(operands[2]),
        )
    if len(operands) != 3:
        raise AssemblyError(f"{mnemonic} needs: rd, rs1, rs2", line_number)
    return Instruction(
        opcode,
        dest=_parse_reg(operands[0], line_number),
        src1=_parse_reg(operands[1], line_number),
        src2=_parse_reg(operands[2], line_number),
    )
