"""Synthetic RISC ISA: opcodes, instructions, programs, and an assembler."""

from repro.isa.assembler import assemble
from repro.isa.instruction import (
    LINK_REG,
    NUM_ARCH_REGS,
    ZERO_REG,
    Instruction,
)
from repro.isa.opcodes import CLASS_LATENCY, OpClass, Opcode, OpcodeSpec, spec_for
from repro.isa.program import Program

__all__ = [
    "CLASS_LATENCY",
    "LINK_REG",
    "NUM_ARCH_REGS",
    "ZERO_REG",
    "Instruction",
    "OpClass",
    "Opcode",
    "OpcodeSpec",
    "Program",
    "assemble",
    "spec_for",
]
