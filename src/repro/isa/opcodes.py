"""Opcode definitions for the synthetic RISC ISA.

The ISA is deliberately small but spans the operand structure the paper's
mechanisms are sensitive to: up to two register sources and one register
destination per instruction, loads and stores, conditional and indirect
branches, and a mix of execution latencies matching Table 1 of the paper
(integer ALU 1 cycle, branch resolution 2, integer multiply 4, FP ALU 3,
FP multiply 4, FP divide 18, loads 4-cycle load-to-use on an L1 hit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional-unit class of an opcode.

    The timing model maps each class onto a pool of functional units with
    the latencies from Table 1 of the paper.
    """

    INT_ALU = "int_alu"
    BRANCH = "branch"
    INT_MUL = "int_mul"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    SYSTEM = "system"


#: Execute latency (cycles) per functional-unit class, from Table 1.
#: For loads this is the load-to-use latency on an L1 hit; the memory
#: hierarchy adds additional cycles on misses.
CLASS_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.BRANCH: 2,
    OpClass.INT_MUL: 4,
    OpClass.FP_ALU: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 18,
    OpClass.LOAD: 4,
    OpClass.STORE: 1,
    OpClass.SYSTEM: 1,
}


class Opcode(enum.Enum):
    """Every opcode understood by the assembler, VM, and timing model."""

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SLTI = "slti"
    LUI = "lui"
    MOV = "mov"
    # Integer multiply/divide (multiplier pool).
    MUL = "mul"
    MULH = "mulh"
    DIV = "div"
    REM = "rem"
    # Floating point (modelled on integer state; latency is what matters).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Memory.
    LW = "lw"
    LB = "lb"
    SW = "sw"
    SB = "sb"
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JAL = "jal"
    JALR = "jalr"
    RET = "ret"
    # System.
    NOP = "nop"
    HALT = "halt"
    OUT = "out"


#: Map from opcode to functional-unit class.
OP_CLASS: dict[Opcode, OpClass] = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SLL: OpClass.INT_ALU,
    Opcode.SRL: OpClass.INT_ALU,
    Opcode.SRA: OpClass.INT_ALU,
    Opcode.SLT: OpClass.INT_ALU,
    Opcode.SLTU: OpClass.INT_ALU,
    Opcode.ADDI: OpClass.INT_ALU,
    Opcode.ANDI: OpClass.INT_ALU,
    Opcode.ORI: OpClass.INT_ALU,
    Opcode.XORI: OpClass.INT_ALU,
    Opcode.SLLI: OpClass.INT_ALU,
    Opcode.SRLI: OpClass.INT_ALU,
    Opcode.SLTI: OpClass.INT_ALU,
    Opcode.LUI: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.MULH: OpClass.INT_MUL,
    Opcode.DIV: OpClass.INT_MUL,
    Opcode.REM: OpClass.INT_MUL,
    Opcode.FADD: OpClass.FP_ALU,
    Opcode.FSUB: OpClass.FP_ALU,
    Opcode.FMUL: OpClass.FP_MUL,
    Opcode.FDIV: OpClass.FP_DIV,
    Opcode.LW: OpClass.LOAD,
    Opcode.LB: OpClass.LOAD,
    Opcode.SW: OpClass.STORE,
    Opcode.SB: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.JAL: OpClass.BRANCH,
    Opcode.JALR: OpClass.BRANCH,
    Opcode.RET: OpClass.BRANCH,
    Opcode.NOP: OpClass.SYSTEM,
    Opcode.HALT: OpClass.SYSTEM,
    Opcode.OUT: OpClass.SYSTEM,
}


@dataclass(frozen=True)
class OpcodeSpec:
    """Static properties of an opcode used by the assembler and VM.

    Attributes:
        opcode: the opcode this spec describes.
        op_class: functional-unit class (determines latency and FU pool).
        num_sources: number of register source operands (0-2).
        has_dest: whether the instruction writes a register destination.
        has_imm: whether the instruction carries an immediate.
        is_branch: conditional or unconditional control transfer.
        is_conditional: conditional branch (needs a predicted direction).
        is_indirect: target comes from a register (JALR/RET).
        is_load: reads memory.
        is_store: writes memory.
    """

    opcode: Opcode
    op_class: OpClass
    num_sources: int
    has_dest: bool
    has_imm: bool
    is_branch: bool = False
    is_conditional: bool = False
    is_indirect: bool = False
    is_load: bool = False
    is_store: bool = False

    @property
    def latency(self) -> int:
        """Execute latency in cycles for this opcode's class."""
        return CLASS_LATENCY[self.op_class]


def _spec(
    op: Opcode,
    num_sources: int,
    has_dest: bool,
    has_imm: bool,
    **flags: bool,
) -> OpcodeSpec:
    return OpcodeSpec(op, OP_CLASS[op], num_sources, has_dest, has_imm, **flags)


#: Full opcode table. Three-register ALU ops read two sources; immediate
#: forms read one. Stores read two sources (data + base) and have no dest.
SPECS: dict[Opcode, OpcodeSpec] = {
    **{
        op: _spec(op, 2, True, False)
        for op in (
            Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
            Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.SLT, Opcode.SLTU,
            Opcode.MUL, Opcode.MULH, Opcode.DIV, Opcode.REM,
            Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
        )
    },
    **{
        op: _spec(op, 1, True, True)
        for op in (
            Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
            Opcode.SLLI, Opcode.SRLI, Opcode.SLTI,
        )
    },
    Opcode.LUI: _spec(Opcode.LUI, 0, True, True),
    Opcode.MOV: _spec(Opcode.MOV, 1, True, False),
    Opcode.LW: _spec(Opcode.LW, 1, True, True, is_load=True),
    Opcode.LB: _spec(Opcode.LB, 1, True, True, is_load=True),
    Opcode.SW: _spec(Opcode.SW, 2, False, True, is_store=True),
    Opcode.SB: _spec(Opcode.SB, 2, False, True, is_store=True),
    Opcode.BEQ: _spec(
        Opcode.BEQ, 2, False, True, is_branch=True, is_conditional=True
    ),
    Opcode.BNE: _spec(
        Opcode.BNE, 2, False, True, is_branch=True, is_conditional=True
    ),
    Opcode.BLT: _spec(
        Opcode.BLT, 2, False, True, is_branch=True, is_conditional=True
    ),
    Opcode.BGE: _spec(
        Opcode.BGE, 2, False, True, is_branch=True, is_conditional=True
    ),
    Opcode.JAL: _spec(Opcode.JAL, 0, True, True, is_branch=True),
    Opcode.JALR: _spec(
        Opcode.JALR, 1, True, True, is_branch=True, is_indirect=True
    ),
    Opcode.RET: _spec(
        Opcode.RET, 1, False, False, is_branch=True, is_indirect=True
    ),
    Opcode.NOP: _spec(Opcode.NOP, 0, False, False),
    Opcode.HALT: _spec(Opcode.HALT, 0, False, False),
    Opcode.OUT: _spec(Opcode.OUT, 1, False, False),
}

#: Lookup from mnemonic text to opcode, for the assembler.
MNEMONICS: dict[str, Opcode] = {op.value: op for op in Opcode}


def spec_for(opcode: Opcode) -> OpcodeSpec:
    """Return the :class:`OpcodeSpec` for *opcode*."""
    return SPECS[opcode]
