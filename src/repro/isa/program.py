"""Program container: instruction sequence plus initial data memory."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction, validate


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: static instruction sequence; the program counter is
            an index into this list (word-addressed code).
        labels: map from label name to instruction index.
        data: initial data-memory contents, word address -> value.
        name: human-readable program name (benchmark id).
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int] = field(default_factory=dict)
    name: str = "<anonymous>"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def validate(self) -> None:
        """Validate every instruction and label target.

        Raises:
            ValueError: on malformed instructions or out-of-range labels.
        """
        for index, inst in enumerate(self.instructions):
            try:
                validate(inst)
            except ValueError as exc:
                raise ValueError(f"at pc {index}: {exc}") from exc
        for label, target in self.labels.items():
            if not 0 <= target <= len(self.instructions):
                raise ValueError(
                    f"label {label!r} points outside program: {target}"
                )

    def entry_point(self) -> int:
        """Index of the first instruction to execute."""
        return self.labels.get("main", 0)

    def listing(self) -> str:
        """Return a human-readable disassembly listing."""
        by_target: dict[int, list[str]] = {}
        for label, target in self.labels.items():
            by_target.setdefault(target, []).append(label)
        lines = []
        for index, inst in enumerate(self.instructions):
            for label in by_target.get(index, ()):
                lines.append(f"{label}:")
            lines.append(f"  {index:5d}  {inst}")
        return "\n".join(lines)
