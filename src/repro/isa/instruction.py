"""Static instruction representation.

A :class:`Instruction` is one *static* instruction in a program: an opcode
plus architectural register operands and an immediate. Dynamic instances
(with resolved values, addresses, and branch outcomes) are represented by
:class:`repro.vm.trace.DynamicInst`.

Architectural registers are integers ``0 .. NUM_ARCH_REGS-1``; register 0
is hardwired to zero as in most RISC ISAs. Registers 56-63 are reserved as
floating-point-style registers only by workload convention; the hardware
treats all architectural registers uniformly (the paper's evaluation also
unifies integer and FP register files for the two-level comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpcodeSpec, spec_for

#: Number of architectural registers (matches a unified int+fp Alpha-like
#: register file: 32 integer + 32 floating point).
NUM_ARCH_REGS = 64

#: The hardwired-zero register.
ZERO_REG = 0

#: Conventional link register used by JAL/RET (like Alpha ra / RISC-V x1).
LINK_REG = 1


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Attributes:
        opcode: operation to perform.
        dest: destination architectural register, or ``None``.
        src1: first source architectural register, or ``None``.
        src2: second source architectural register, or ``None``.
        imm: immediate value (branch target index, load/store offset,
            ALU immediate), or 0 when unused.
        label: optional source-level label for diagnostics.
    """

    opcode: Opcode
    dest: int | None = None
    src1: int | None = None
    src2: int | None = None
    imm: int = 0
    label: str = field(default="", compare=False)

    @property
    def spec(self) -> OpcodeSpec:
        """Static properties of this instruction's opcode."""
        return spec_for(self.opcode)

    def sources(self) -> tuple[int, ...]:
        """Architectural source registers actually read.

        Reads of the hardwired zero register are included here (the VM
        supplies zero); the rename stage filters them out because they
        never create a physical-register dependence.
        """
        out = []
        if self.src1 is not None:
            out.append(self.src1)
        if self.src2 is not None:
            out.append(self.src2)
        return tuple(out)

    def writes_register(self) -> bool:
        """True when the instruction produces a register value.

        Writes to the zero register are discarded and therefore do not
        count as producing a value.
        """
        return self.dest is not None and self.dest != ZERO_REG

    def __str__(self) -> str:
        parts = [self.opcode.value]
        ops = []
        if self.dest is not None:
            ops.append(f"r{self.dest}")
        if self.src1 is not None:
            ops.append(f"r{self.src1}")
        if self.src2 is not None:
            ops.append(f"r{self.src2}")
        if self.spec.has_imm:
            ops.append(str(self.imm))
        text = parts[0] + (" " + ", ".join(ops) if ops else "")
        if self.label:
            text = f"{self.label}: {text}"
        return text


def validate(inst: Instruction) -> None:
    """Check that *inst* is well-formed for its opcode.

    Raises:
        ValueError: if the operand shape does not match the opcode spec or
            a register index is out of range.
    """
    spec = inst.spec
    present_sources = sum(s is not None for s in (inst.src1, inst.src2))
    if present_sources != spec.num_sources:
        raise ValueError(
            f"{inst.opcode.value}: expected {spec.num_sources} sources, "
            f"got {present_sources}"
        )
    if spec.has_dest != (inst.dest is not None):
        raise ValueError(
            f"{inst.opcode.value}: destination "
            f"{'required' if spec.has_dest else 'not allowed'}"
        )
    for reg in (inst.dest, inst.src1, inst.src2):
        if reg is not None and not 0 <= reg < NUM_ARCH_REGS:
            raise ValueError(
                f"{inst.opcode.value}: register r{reg} out of range "
                f"0..{NUM_ARCH_REGS - 1}"
            )
