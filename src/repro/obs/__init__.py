"""`repro.obs` — the observability subsystem.

Four small, dependency-free modules that the rest of the stack publishes
into:

* :mod:`repro.obs.metrics` — a process-wide metrics registry (counters /
  gauges / histograms with labels) that the pipeline, register cache,
  degree-of-use predictor, and experiment engine populate alongside
  :class:`~repro.core.stats.SimStats`. Near-zero overhead when disabled.
* :mod:`repro.obs.tracer` — a windowed, ring-buffered structured event
  tracer for the pipeline with a Chrome ``trace_event`` JSON exporter,
  gated by ``REPRO_TRACE_EVENTS`` so traces open in ``chrome://tracing``
  or Perfetto.
* :mod:`repro.obs.manifest` — append-only JSONL run manifests recording
  what every engine run actually did (job identity, cache hit/miss,
  wall-clock, failures, worker pids), plus readers and summarizers.
* :mod:`repro.obs.log` — ``logging`` setup (``REPRO_LOG_LEVEL``) and the
  progress reporter the engine uses for jobs-done/ETA/hit-rate lines.

The regression gate that consumes these artifacts lives in
:mod:`repro.analysis.obs` (``python -m repro.analysis.obs compare``).
"""

from repro.obs.log import ProgressReporter, get_logger, setup_logging
from repro.obs.manifest import (
    ManifestWriter,
    read_manifest,
    summarize_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    get_metrics,
)
from repro.obs.tracer import EventTracer, tracer_from_env

__all__ = [
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "ManifestWriter",
    "MetricsRegistry",
    "ProgressReporter",
    "configure_metrics",
    "get_logger",
    "get_metrics",
    "read_manifest",
    "setup_logging",
    "summarize_manifest",
    "tracer_from_env",
]
