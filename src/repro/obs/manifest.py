"""Append-only JSONL run manifests.

Every :meth:`repro.analysis.engine.ExperimentEngine.run` batch appends
one record per job to a manifest file under the engine's cache
directory, making sweeps auditable after the fact: what ran, with which
config hash and trace provenance, whether it was served from cache, how
long it took, on which worker, and — for failures — the full traceback.

Records are single JSON lines written with one ``os.write`` on an
``O_APPEND`` descriptor, so concurrent engine processes interleave whole
records rather than tearing each other's lines. Readers skip corrupt
lines (a crash mid-write loses at most one record) and report how many
they skipped.

Knobs: ``REPRO_MANIFEST=0`` disables manifest writing; any other value
is used as an explicit manifest path (default
``<cache_dir>/manifest.jsonl``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.metrics import get_metrics, percentile
from repro.testing import faults

#: Default manifest file name under the engine cache directory.
MANIFEST_NAME = "manifest.jsonl"


def manifest_path_for(cache_dir: str | os.PathLike) -> Path | None:
    """Resolve the manifest location from the env and *cache_dir*.

    Returns None when ``REPRO_MANIFEST`` disables manifests.
    """
    knob = os.environ.get("REPRO_MANIFEST", "")
    if knob.lower() in ("0", "false", "off"):
        return None
    if knob and knob != "1":
        return Path(knob)
    return Path(cache_dir) / MANIFEST_NAME


class ManifestWriter:
    """Appends JSON records to a manifest file, one per line.

    Writing is best-effort: a read-only or full filesystem never fails
    the experiment (mirroring the result cache's contract).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def append(self, record: dict) -> bool:
        """Append one record; returns False when the write failed."""
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        return self._write(line)

    def append_all(self, records: list[dict]) -> bool:
        """Append several records in one write (still line-delimited)."""
        if not records:
            return True
        payload = "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in records
        )
        return self._write(payload)

    def _write(self, payload: str) -> bool:
        try:
            faults.enospc_point(str(self.path))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, payload.encode("utf-8"))
            finally:
                os.close(fd)
            return True
        except OSError:
            get_metrics().counter("repro_manifest_write_failures").inc()
            return False


def read_manifest(path: str | os.PathLike) -> list[dict]:
    """Parse a manifest; corrupt lines are skipped, not fatal.

    The number of skipped lines is attached to the returned list as the
    final summary consumer expects it: via :func:`summarize_manifest`'s
    ``corrupt_lines`` count recomputed here.
    """
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    record = None
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return []
    return records


def summarize_manifest(records: list[dict]) -> dict:
    """Roll a manifest up into the gate's flat summary form.

    Returns job counts, cache hit/miss totals, failure records, and
    wall-clock aggregates (total / p50 / p95) for the executed jobs.
    """
    jobs = [r for r in records if r.get("kind") == "job"]
    failures = [
        {
            "job": record.get("job", "?"),
            "run": record.get("run", ""),
            "error": record.get("error") or "",
        }
        for record in jobs
        if record.get("status") not in ("ok", None)
    ]
    walls = [
        float(record.get("wall", 0.0))
        for record in jobs
        if not record.get("cached")
    ]
    return {
        "kind": "manifest_summary",
        "jobs": len(jobs),
        "runs": len({r.get("run") for r in jobs}),
        "ok": sum(1 for r in jobs if r.get("status") == "ok"),
        "errors": len(failures),
        "cache_hits": sum(1 for r in jobs if r.get("cached")),
        "cache_misses": sum(1 for r in jobs if not r.get("cached")),
        "wall_seconds": round(sum(walls), 6),
        "wall_p50": round(percentile(walls, 0.50), 6),
        "wall_p95": round(percentile(walls, 0.95), 6),
        "failures": failures,
    }


def completed_job_keys(
    records: list[dict], sweep: str | None = None,
) -> frozenset[str]:
    """Cache keys of jobs a manifest records as successfully finished.

    This is the resume set: a restarted sweep whose cache hit matches
    one of these keys is *resuming* prior work rather than merely
    enjoying memoization. Restricting to *sweep* narrows the set to one
    sweep identity (the engine stamps every job record with the sweep
    key of its batch).
    """
    keys = set()
    for record in records:
        if record.get("kind") != "job" or record.get("status") != "ok":
            continue
        if sweep is not None and record.get("sweep") != sweep:
            continue
        key = record.get("key")
        if key:
            keys.add(key)
    return frozenset(keys)


def checkpoint_events(
    records: list[dict], sweep: str | None = None,
) -> list[dict]:
    """The ``checkpoint`` records of a manifest, oldest first.

    The engine appends ``start`` when a batch begins executing,
    ``interrupted`` when it unwinds on SIGINT/crash, and ``complete``
    when it finishes — so an interrupted-then-resumed sweep reads as
    ``start, interrupted, start, complete``.
    """
    events = [r for r in records if r.get("kind") == "checkpoint"]
    if sweep is not None:
        events = [r for r in events if r.get("sweep") == sweep]
    return events
