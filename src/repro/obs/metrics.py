"""Lightweight metrics registry (counters, gauges, histograms).

The registry is the quantitative half of the observability layer: the
pipeline, register cache, degree-of-use predictor, and experiment engine
publish named, labelled instruments into it alongside the flat
:class:`~repro.core.stats.SimStats` record. Design constraints:

* **Near-zero overhead when disabled.** A disabled registry hands out
  shared null instruments whose mutators are no-ops, so instrumented
  code never branches on an "is metrics on?" flag — it calls the same
  methods either way. Publishers that do bulk work (e.g. the pipeline's
  end-of-run publish) can still consult :attr:`MetricsRegistry.enabled`
  to skip the loop entirely.
* **Bounded cost when enabled.** Instruments are plain attribute
  bumps; histograms keep a capped sample list with percentile queries
  computed on demand, never per-observation.
* **Snapshot-to-dict.** :meth:`MetricsRegistry.snapshot` flattens the
  whole registry to a JSON-safe dict keyed ``name{label=value,...}``,
  suitable for bench ``extra_info``, manifests, and the regression gate.

The process-wide registry honours ``REPRO_METRICS`` (anything but
``0``/``false``/``off`` enables; the default is enabled, since the only
publishers are end-of-run bulk paths).
"""

from __future__ import annotations

import os
import threading

#: Histograms keep at most this many samples; beyond it, reservoir-style
#: overwrite keeps percentiles representative without unbounded memory.
HISTOGRAM_SAMPLE_CAP = 4096


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (0.0 for an empty list).

    Args:
        samples: unsorted observations.
        fraction: percentile as a fraction, e.g. ``0.95``.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Capped-sample distribution with on-demand percentiles."""

    __slots__ = ("count", "total", "max", "_samples", "_next")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: list[float] = []
        self._next = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(value)
        else:
            # Deterministic ring overwrite: cheap, and recent runs stay
            # represented without an RNG dependency.
            self._samples[self._next] = value
            self._next = (self._next + 1) % HISTOGRAM_SAMPLE_CAP

    def percentile(self, fraction: float) -> float:
        return percentile(self._samples, fraction)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """JSON-safe distribution summary."""
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "mean": round(self.mean, 9),
            "max": round(self.max, 9),
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instruments handed out by disabled registries.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


def _flat_key(name: str, labels: dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named, labelled instruments with a flat snapshot form.

    Instruments are created on first use and identified by
    ``(name, sorted labels)``; asking twice returns the same object, so
    publishers can re-derive handles cheaply instead of caching them.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access.

    def counter(self, name: str, **labels: object) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        key = _flat_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        key = _flat_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        key = _flat_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(key, Histogram())
        return instrument

    # ------------------------------------------------------------------
    # Bulk operations.

    def publish(self, prefix: str, values: dict[str, int | float],
                **labels: object) -> None:
        """Bulk-add a dict of numbers as ``prefix.key`` counters.

        The end-of-run publish path: one call folds a whole stats record
        into the registry. A disabled registry returns immediately.
        """
        if not self.enabled:
            return
        for key, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.counter(f"{prefix}.{key}", **labels).inc(value)

    def snapshot(self) -> dict[str, object]:
        """Flatten every instrument to a JSON-safe dict.

        Counters and gauges map to their value; histograms map to their
        :meth:`Histogram.summary` dict.
        """
        out: dict[str, object] = {}
        for key, counter in self._counters.items():
            out[key] = counter.value
        for key, gauge in self._gauges.items():
            out[key] = gauge.value
        for key, histogram in self._histograms.items():
            out[key] = histogram.summary()
        return out

    def reset(self) -> None:
        """Drop every instrument (tests and fresh measurement windows)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# Process-wide registry.

_registry: MetricsRegistry | None = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_METRICS", "1").lower() not in (
        "0", "false", "off",
    )


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (created from ``REPRO_METRICS``)."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry(enabled=_env_enabled())
    return _registry


def configure_metrics(enabled: bool | None = None) -> MetricsRegistry:
    """Replace the process-wide registry (tests, notebooks).

    ``enabled=None`` re-reads ``REPRO_METRICS``.
    """
    global _registry
    _registry = MetricsRegistry(
        enabled=_env_enabled() if enabled is None else enabled
    )
    return _registry
