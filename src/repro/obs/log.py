"""Logging setup and progress reporting for the observability layer.

Everything in ``repro`` logs under the ``repro.*`` namespace;
:func:`setup_logging` attaches one stream handler to the ``repro`` root
logger (idempotently) at the level named by ``REPRO_LOG_LEVEL``
(default ``WARNING``, so library use stays silent). The engine's live
progress lines — jobs done/total, ETA, cache hit rate — go through
:class:`ProgressReporter`, which rate-limits emission so a thousand-job
sweep logs a handful of lines, not a thousand.
"""

from __future__ import annotations

import logging
import os
import time

#: Root logger name for the whole package.
ROOT_LOGGER = "repro"

_configured = False


def get_logger(name: str) -> logging.Logger:
    """A logger in the ``repro.*`` namespace (``get_logger("engine")``)."""
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def setup_logging(
    level: int | str | None = None, stream=None, force: bool = False,
) -> logging.Logger:
    """Attach a handler to the ``repro`` root logger (idempotent).

    Args:
        level: explicit level (name or number); ``None`` reads
            ``REPRO_LOG_LEVEL`` (default ``WARNING``).
        stream: handler target (default ``sys.stderr``).
        force: reattach even if already configured (tests use this to
            redirect the stream).
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER)
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "WARNING")
    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.WARNING)
    root.setLevel(level)
    if force:
        for handler in list(root.handlers):
            root.removeHandler(handler)
        _configured = False
    if not _configured:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s %(message)s",
            datefmt="%H:%M:%S",
        ))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    return root


class ProgressReporter:
    """Rate-limited progress logging with ETA and hit-rate context.

    Args:
        total: number of jobs expected.
        logger: destination (default ``repro.engine``).
        label: prefix naming the activity.
        interval: minimum seconds between emitted lines; the first and
            final updates always emit.
    """

    def __init__(
        self,
        total: int,
        logger: logging.Logger | None = None,
        label: str = "run",
        interval: float = 2.0,
    ) -> None:
        self.total = total
        self.done = 0
        self.label = label
        self.interval = interval
        self.logger = logger or get_logger("engine")
        self._start = time.perf_counter()
        self._last_emit = float("-inf")  # first update always emits

    def update(self, done: int | None = None, **context: object) -> None:
        """Advance progress (by one, or to *done*) and maybe log a line."""
        self.done = self.done + 1 if done is None else done
        now = time.perf_counter()
        final = self.done >= self.total
        if not final and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        elapsed = now - self._start
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = (
            (self.total - self.done) / rate if rate > 0 else float("inf")
        )
        extra = "".join(
            f", {key} {value}" for key, value in context.items()
        )
        self.logger.info(
            "%s: %d/%d jobs (%.0f%%), %.1fs elapsed, ETA %.1fs%s",
            self.label, self.done, self.total,
            100.0 * self.done / self.total if self.total else 100.0,
            elapsed,
            0.0 if final else remaining,
            extra,
        )
