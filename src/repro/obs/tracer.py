"""Structured pipeline event tracing with Chrome ``trace_event`` export.

The tracer records discrete simulator events — pipeline stage activity
(fetch/rename/issue/writeback/retire), register-cache activity
(hit/miss/evict/insert/fill/fill-skip), predictor activity
(predict/train) — and exports them as Chrome ``trace_event`` JSON, so a
run opens directly in ``chrome://tracing`` or `Perfetto
<https://ui.perfetto.dev>`_ with cycles on the time axis (1 cycle = 1
microsecond of trace time).

Cost is bounded by **windowing**: the first ``head_cycles`` cycles are
kept in full, and after that a ring buffer retains only the most recent
``tail_events`` events, so tracing a long run keeps its beginning and
its end without unbounded memory. Tracing is **off by default** and
enabled with ``REPRO_TRACE_EVENTS=1``; when off, instrumented code holds
``tracer = None`` and pays one identity test per event site.

Environment knobs (read by :func:`tracer_from_env`):

* ``REPRO_TRACE_EVENTS`` — enable tracing (``1``/``true``/``on``).
* ``REPRO_TRACE_HEAD`` — cycles kept in full from the start
  (default 5000).
* ``REPRO_TRACE_TAIL`` — ring-buffer capacity for later events
  (default 20000).
* ``REPRO_TRACE_FILE`` — where the pipeline writes the trace at the end
  of a run (default ``repro-trace-<benchmark>-<scheme>.json`` in the
  working directory).
"""

from __future__ import annotations

import json
import os
from collections import deque

#: Default number of initial cycles traced in full.
DEFAULT_HEAD_CYCLES = 5_000
#: Default ring-buffer capacity for events past the head window.
DEFAULT_TAIL_EVENTS = 20_000


class EventTracer:
    """Windowed event recorder with a Chrome ``trace_event`` exporter.

    Events are stored as compact tuples ``(name, category, phase,
    cycle, duration, args)``; :meth:`to_chrome` inflates them into the
    ``traceEvents`` JSON schema.

    Args:
        head_cycles: cycles from the start of the run traced in full.
        tail_events: maximum events retained past the head window (ring
            buffer — older tail events are dropped as new ones arrive).
    """

    def __init__(
        self,
        head_cycles: int = DEFAULT_HEAD_CYCLES,
        tail_events: int = DEFAULT_TAIL_EVENTS,
    ) -> None:
        self.head_cycles = head_cycles
        self.tail_events = tail_events
        self._head: list[tuple] = []
        self._tail: deque[tuple] = deque(maxlen=tail_events)
        self.dropped = 0  # tail events evicted by the ring buffer

    # ------------------------------------------------------------------
    # Recording.

    def emit(
        self,
        name: str,
        category: str,
        cycle: int,
        duration: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record one event at *cycle* (instant, or a span if *duration*)."""
        phase = "X" if duration else "i"
        event = (name, category, phase, cycle, duration, args)
        if cycle < self.head_cycles:
            self._head.append(event)
        else:
            if len(self._tail) == self.tail_events:
                self.dropped += 1
            self._tail.append(event)

    def counter(self, name: str, cycle: int, **values: float) -> None:
        """Record a Chrome counter sample (rendered as a stacked area)."""
        event = (name, "counter", "C", cycle, 0, dict(values))
        if cycle < self.head_cycles:
            self._head.append(event)
        else:
            if len(self._tail) == self.tail_events:
                self.dropped += 1
            self._tail.append(event)

    # ------------------------------------------------------------------
    # Introspection and export.

    def __len__(self) -> int:
        return len(self._head) + len(self._tail)

    def events(self) -> list[tuple]:
        """All retained events in emission order (head, then tail)."""
        return self._head + list(self._tail)

    def names(self) -> set[str]:
        """Distinct event names retained (test convenience)."""
        return {event[0] for event in self.events()}

    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` JSON object (dict form).

        One simulated cycle maps to one microsecond of trace time.
        Categories become thread lanes (``tid``) so the pipeline, cache,
        and predictor streams render as separate rows.
        """
        lanes: dict[str, int] = {}
        trace_events = []
        pid = os.getpid()
        for name, category, phase, cycle, duration, args in self.events():
            tid = lanes.setdefault(category, len(lanes) + 1)
            event: dict[str, object] = {
                "name": name,
                "cat": category,
                "ph": phase,
                "ts": float(cycle),
                "pid": pid,
                "tid": tid,
            }
            if phase == "X":
                event["dur"] = float(duration)
            elif phase == "i":
                event["s"] = "t"  # thread-scoped instant
            if args:
                event["args"] = args
            trace_events.append(event)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs.tracer",
                "head_cycles": self.head_cycles,
                "tail_events": self.tail_events,
                "dropped": self.dropped,
                "lanes": {name: tid for name, tid in lanes.items()},
            },
        }

    def write(self, path: str | os.PathLike) -> None:
        """Serialize :meth:`to_chrome` to *path* (best effort)."""
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(self.to_chrome(), handle)
        except OSError:
            pass


def trace_events_enabled() -> bool:
    """True when ``REPRO_TRACE_EVENTS`` asks for tracing."""
    return os.environ.get("REPRO_TRACE_EVENTS", "").lower() in (
        "1", "true", "on", "yes",
    )


def tracer_from_env() -> EventTracer | None:
    """A tracer configured from the environment, or None when disabled."""
    if not trace_events_enabled():
        return None
    return EventTracer(
        head_cycles=int(
            os.environ.get("REPRO_TRACE_HEAD", DEFAULT_HEAD_CYCLES)
        ),
        tail_events=int(
            os.environ.get("REPRO_TRACE_TAIL", DEFAULT_TAIL_EVENTS)
        ),
    )


def trace_file_for(benchmark: str, scheme: str) -> str:
    """Output path for a run's trace (``REPRO_TRACE_FILE`` overrides)."""
    explicit = os.environ.get("REPRO_TRACE_FILE")
    if explicit:
        return explicit
    safe = "".join(
        ch if ch.isalnum() or ch in "-_" else "_"
        for ch in f"{benchmark}-{scheme}"
    )
    return f"repro-trace-{safe}.json"
