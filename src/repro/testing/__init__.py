"""Test-support subsystems: fault injection and the differential oracle.

This package is shipped with the library (not buried in the test tree)
because its two halves are wired into production code paths:

* :mod:`repro.testing.faults` — a deterministic, seed-driven fault
  injection layer. The experiment engine, trace factory, and manifest
  writer carry cheap injection points (worker crash, worker hang,
  corrupt result-cache entry, truncated trace file, ENOSPC on manifest
  writes, mid-sweep interrupt) that are inert unless ``REPRO_FAULTS``
  arms a plan. The chaos test suite (``tests/chaos``) drives every
  recovery path end-to-end through these hooks.
* :mod:`repro.testing.oracle` — a lightweight differential oracle: an
  in-order functional reference that replays a trace and cross-checks
  the conservation invariants every :class:`~repro.core.stats.SimStats`
  must satisfy (operands read = bypass + storage; storage reads =
  cache hits + filtered/capacity/conflict/cold misses; backing reads =
  misses; writes = initial + fill; ...). The engine runs the
  counter-only half before any result is cached, so recovery from an
  injected fault can never silently publish corrupted results.
"""

from repro.testing import faults, oracle

__all__ = ["faults", "oracle"]
