"""Differential oracle: in-order functional reference for SimStats.

The timing simulator and the fault-tolerant engine around it can fail in
ways that look like success — a retried job whose partially-unwound
worker left a corrupted stats object, a cache entry truncated mid-write
and "repaired" into the wrong shape. The oracle guards against that with
two independent layers:

* :func:`validate_stats` — *internal* conservation invariants that any
  well-formed :class:`~repro.core.stats.SimStats` satisfies, checkable
  without the trace (non-negative counters, cache reads = hits + misses,
  writes = initial + fill, ...). The engine runs this on every freshly
  executed result *before* the result cache is written.
* :func:`check_run` — *differential* invariants against an in-order
  replay of the trace (:func:`replay_trace`): retired instructions,
  operand reads satisfied (bypass + storage), and register-file traffic
  must match what the functional stream implies, per storage scheme.
  The chaos suite runs this after every fault-injection run so recovery
  never silently publishes corrupted results.

Both return a list of human-readable violation strings (empty = clean)
rather than raising, so tests can assert on the full set at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import SimStats
from repro.vm.trace import Trace

__all__ = [
    "ReplaySummary",
    "replay_trace",
    "validate_stats",
    "check_run",
    "check_results",
]


@dataclass(frozen=True)
class ReplaySummary:
    """What an in-order replay of a trace implies about any simulation.

    Attributes:
        retired: committed dynamic instructions.
        source_operands: architectural register source reads (zero-register
            reads are already stripped from the trace).
        dest_writes: instructions producing an architectural register value.
    """

    retired: int
    source_operands: int
    dest_writes: int


def replay_trace(trace: Trace) -> ReplaySummary:
    """Replay *trace* in order and count the quantities every scheme conserves."""
    source_operands = 0
    dest_writes = 0
    for inst in trace.records:
        source_operands += sum(
            1 for s in inst.sources if s is not None and s >= 0
        )
        if inst.dest is not None and inst.dest >= 0:
            dest_writes += 1
    return ReplaySummary(
        retired=len(trace.records),
        source_operands=source_operands,
        dest_writes=dest_writes,
    )


def _counter_fields(stats: SimStats) -> dict[str, int | float]:
    fields = {
        "cycles": stats.cycles,
        "retired": stats.retired,
        "operands_bypass": stats.operands_bypass,
        "operands_bypass_first": stats.operands_bypass_first,
        "operands_storage": stats.operands_storage,
        "rf_reads": stats.rf_reads,
        "rf_writes": stats.rf_writes,
        "branch_mispredicts": stats.branch_mispredicts,
        "rc_miss_events": stats.rc_miss_events,
        "load_miss_replays": stats.load_miss_replays,
        "issue_blocked_cycles": stats.issue_blocked_cycles,
        "dispatch_stall_cycles": stats.dispatch_stall_cycles,
        "rename_stall_cycles": stats.rename_stall_cycles,
        "predictor_queries": stats.predictor_queries,
        "predictor_supplied": stats.predictor_supplied,
        "predictor_correct": stats.predictor_correct,
    }
    if stats.cache is not None:
        cache = stats.cache
        fields.update({
            "cache.reads": cache.reads,
            "cache.hits": cache.hits,
            "cache.writes_initial": cache.writes_initial,
            "cache.writes_fill": cache.writes_fill,
            "cache.writes_filtered": cache.writes_filtered,
            "cache.instances_cached": cache.instances_cached,
            "cache.instances_never_read": cache.instances_never_read,
            "cache.values_freed": cache.values_freed,
            "cache.values_never_cached": cache.values_never_cached,
        })
        for label, count in cache.misses.items():
            fields[f"cache.misses[{label}]"] = count
    return fields


def validate_stats(stats: SimStats) -> list[str]:
    """Internal conservation invariants; no trace required.

    This is the engine's pre-cache gate: cheap enough to run on every
    executed job, strict enough that a corrupted or half-unwound stats
    object cannot make it into the content-addressed result cache.
    """
    violations: list[str] = []
    for name, value in _counter_fields(stats).items():
        if value < 0:
            violations.append(f"{name} is negative ({value})")
    if stats.retired > 0 and stats.cycles <= 0:
        violations.append(
            f"retired {stats.retired} instructions in {stats.cycles} cycles"
        )
    if stats.operands_bypass_first > stats.operands_bypass:
        violations.append(
            "operands_bypass_first "
            f"{stats.operands_bypass_first} > operands_bypass "
            f"{stats.operands_bypass}"
        )
    if stats.predictor_supplied > stats.predictor_queries:
        violations.append(
            f"predictor_supplied {stats.predictor_supplied} > "
            f"predictor_queries {stats.predictor_queries}"
        )
    if stats.predictor_correct > stats.predictor_supplied:
        violations.append(
            f"predictor_correct {stats.predictor_correct} > "
            f"predictor_supplied {stats.predictor_supplied}"
        )
    cache = stats.cache
    if cache is not None:
        miss_total = sum(cache.misses.values())
        if cache.reads != cache.hits + miss_total:
            violations.append(
                f"cache reads {cache.reads} != hits {cache.hits} + "
                f"misses {miss_total}"
            )
        if cache.instances_cached != cache.writes_initial + cache.writes_fill:
            violations.append(
                f"instances_cached {cache.instances_cached} != "
                f"writes_initial {cache.writes_initial} + "
                f"writes_fill {cache.writes_fill}"
            )
        if cache.instances_never_read > cache.instances_cached:
            violations.append(
                f"instances_never_read {cache.instances_never_read} > "
                f"instances_cached {cache.instances_cached}"
            )
        if cache.values_never_cached > cache.values_freed:
            violations.append(
                f"values_never_cached {cache.values_never_cached} > "
                f"values_freed {cache.values_freed}"
            )
    return violations


def check_run(trace: Trace, stats: SimStats) -> list[str]:
    """Cross-check *stats* against an in-order replay of *trace*.

    Scheme-aware: register-cache schemes must conserve reads through the
    cache into the backing file; the monolithic scheme reads every
    storage operand from the register file; the two-level scheme models
    its register file internally and reports no rf traffic.
    """
    violations = list(validate_stats(stats))
    replay = replay_trace(trace)
    if stats.retired != replay.retired:
        violations.append(
            f"retired {stats.retired} != trace length {replay.retired}"
        )
    operands = stats.operands_bypass + stats.operands_storage
    if operands != replay.source_operands:
        violations.append(
            f"bypass {stats.operands_bypass} + storage "
            f"{stats.operands_storage} = {operands} != trace source "
            f"operands {replay.source_operands}"
        )
    scheme = stats.scheme
    if scheme == "register_cache":
        cache = stats.cache
        if cache is None:
            violations.append("register_cache scheme has no cache stats")
        else:
            if stats.operands_storage != cache.reads:
                violations.append(
                    f"operands_storage {stats.operands_storage} != "
                    f"cache reads {cache.reads}"
                )
            miss_total = sum(cache.misses.values())
            if stats.rf_reads != miss_total:
                violations.append(
                    f"rf_reads {stats.rf_reads} != cache misses {miss_total}"
                )
        if stats.rf_writes != replay.dest_writes:
            violations.append(
                f"rf_writes {stats.rf_writes} != trace dest writes "
                f"{replay.dest_writes}"
            )
    elif scheme == "monolithic":
        if stats.operands_storage != stats.rf_reads:
            violations.append(
                f"operands_storage {stats.operands_storage} != "
                f"rf_reads {stats.rf_reads}"
            )
        if stats.rf_writes != replay.dest_writes:
            violations.append(
                f"rf_writes {stats.rf_writes} != trace dest writes "
                f"{replay.dest_writes}"
            )
    # two_level: the hierarchical file accounts reads/writes internally
    # (tl_* counters); no rf_* conservation law applies.
    return violations


def check_results(
    traces: dict[str, Trace],
    results: dict[str, SimStats],
) -> dict[str, list[str]]:
    """Oracle-check a sweep's results; returns per-benchmark violations.

    Falsy slots (:class:`~repro.analysis.engine.JobFailure` holes from a
    gracefully degraded sweep) are skipped — a hole is an *explicit*
    failure, not a silently corrupted result.
    """
    violations: dict[str, list[str]] = {}
    for name, stats in results.items():
        if not stats:
            continue
        trace = traces.get(name)
        if trace is None:
            found = validate_stats(stats)
        else:
            found = check_run(trace, stats)
        if found:
            violations[name] = found
    return violations
