"""Deterministic, seed-driven fault injection (``REPRO_FAULTS``).

The engine, trace factory, and manifest writer contain *injection
points*: named sites where a controlled fault can be triggered. A site
fires based only on ``(seed, site, identity, attempt)`` — the same plan
always faults the same jobs — so chaos tests are reproducible and a
retried attempt can deterministically succeed where the first one
failed.

Plan specs are comma/semicolon-separated ``key=value`` pairs::

    REPRO_FAULTS="seed=42,crash=1.0,hang=0.5,times=1,hang_seconds=30"

Recognized keys:

* ``seed`` — integer mixed into every decision hash (default 0).
* ``times`` — how many times a given ``(site, identity)`` pair may
  fire (default 1), so bounded retries eventually get a clean attempt.
* ``hang_seconds`` — how long the ``hang`` site sleeps (default 3600;
  chaos tests pair it with a small ``REPRO_JOB_TIMEOUT``).
* one probability in ``[0, 1]`` per site: ``crash`` (worker calls
  ``os._exit``; raised as :class:`InjectedFault` on the in-process
  serial path so the host survives), ``hang`` (worker sleeps),
  ``corrupt_cache`` (result-cache entry written truncated),
  ``truncate_trace`` (packed trace written truncated), ``enospc``
  (manifest write raises ``OSError(ENOSPC)``), ``interrupt``
  (``KeyboardInterrupt`` before a serial job, simulating Ctrl-C
  mid-sweep), ``bad_stats`` (a finished job's statistics are corrupted
  so engine-side validation must reject them).

Decisions that have no explicit *attempt* (cache/manifest sites, where
"attempt" is not a meaningful concept) consume a per-process occurrence
counter instead, so e.g. the re-store after a corrupt-entry repair is
written clean.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from dataclasses import dataclass, field
from types import MappingProxyType

#: Every injection point wired into the library.
FAULT_SITES = (
    "crash", "hang", "corrupt_cache", "truncate_trace", "enospc",
    "interrupt", "bad_stats",
)

#: Exit status used by the ``crash`` site (distinctive in waitpid logs).
CRASH_EXIT_CODE = 117


class InjectedFault(Exception):
    """An injected fault surfaced as an exception.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults model infrastructure failures, and must not be catchable by
    ``except ReproError`` blocks meant for library errors.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Parsed ``REPRO_FAULTS`` plan; immutable and hashable."""

    seed: int = 0
    times: int = 1
    hang_seconds: float = 3600.0
    rates: MappingProxyType = field(
        default_factory=lambda: MappingProxyType({})
    )

    def rate(self, site: str) -> float:
        return self.rates.get(site, 0.0)

    def decide(self, site: str, identity: str, attempt: int = 0) -> bool:
        """Whether *site* faults *identity* on its *attempt*-th try.

        Pure function of the plan: hash ``(seed, site, identity)`` to a
        uniform draw in [0, 1) and compare against the site's rate;
        attempts at or beyond ``times`` never fault.
        """
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0 or attempt >= self.times:
            return False
        material = f"{self.seed}\x1f{site}\x1f{identity}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return draw < rate


def parse_plan(spec: str) -> FaultPlan | None:
    """Parse a ``REPRO_FAULTS`` spec string.

    Returns ``None`` for an empty/disabled spec (``""``, ``0``,
    ``off``). Raises :class:`ValueError` on malformed input so typos in
    test setups fail loudly.
    """
    spec = (spec or "").strip()
    if spec.lower() in ("", "0", "false", "off"):
        return None
    seed = 0
    times = 1
    hang_seconds = 3600.0
    rates: dict[str, float] = {}
    for token in spec.replace(";", ",").split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"REPRO_FAULTS: expected key=value, got {token!r}")
        key, _, value = token.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key == "seed":
            seed = int(value)
        elif key == "times":
            times = int(value)
        elif key == "hang_seconds":
            hang_seconds = float(value)
        elif key in FAULT_SITES:
            rate = float(value)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"REPRO_FAULTS: rate for {key!r} must be in [0, 1]"
                )
            rates[key] = rate
        else:
            raise ValueError(
                f"REPRO_FAULTS: unknown key {key!r}; sites are "
                f"{', '.join(FAULT_SITES)}"
            )
    if not rates:
        return None
    return FaultPlan(
        seed=seed, times=times, hang_seconds=hang_seconds,
        rates=MappingProxyType(rates),
    )


# ----------------------------------------------------------------------
# Process-wide plan (memoized per env value) and occurrence tracking.

_plan_memo: tuple[str | None, FaultPlan | None] | None = None
_warned_spec: str | None = None
_occurrences: dict[tuple[str, str], int] = {}


def get_plan() -> FaultPlan | None:
    """The active plan from ``REPRO_FAULTS`` (``None`` when disabled).

    A malformed spec logs one warning and disables injection rather
    than breaking production runs.
    """
    global _plan_memo, _warned_spec
    spec = os.environ.get("REPRO_FAULTS")
    if _plan_memo is not None and _plan_memo[0] == spec:
        return _plan_memo[1]
    plan: FaultPlan | None = None
    if spec:
        try:
            plan = parse_plan(spec)
        except ValueError as error:
            if spec != _warned_spec:
                from repro.obs.log import get_logger

                get_logger("faults").warning(
                    "ignoring malformed REPRO_FAULTS: %s", error,
                )
                _warned_spec = spec
            plan = None
    _plan_memo = (spec, plan)
    return plan


def enabled() -> bool:
    """True when a fault plan is armed (cheap; memoized per env value)."""
    return get_plan() is not None


def reset() -> None:
    """Forget the memoized plan and all occurrence counts (tests)."""
    global _plan_memo, _warned_spec
    _plan_memo = None
    _warned_spec = None
    _occurrences.clear()


def fire(site: str, identity: str = "", attempt: int | None = None) -> bool:
    """Should *site* fault now? The single decision entry point.

    With an explicit *attempt* (the engine's retry counter) the decision
    is a pure function — correct across worker processes, which start
    with fresh module state. Without one, a per-process occurrence
    counter for ``(site, identity)`` stands in for the attempt number,
    so a site armed with ``times=1`` faults once and then behaves.
    """
    plan = get_plan()
    if plan is None:
        return False
    if attempt is not None:
        return plan.decide(site, identity, attempt)
    key = (site, str(identity))
    occurrence = _occurrences.get(key, 0)
    if not plan.decide(site, identity, occurrence):
        return False
    _occurrences[key] = occurrence + 1
    return True


# ----------------------------------------------------------------------
# Site helpers (each one line at its call site).


def crash_point(identity: str, attempt: int | None = None,
                allow_exit: bool = False) -> None:
    """``crash`` site: kill this process (worker) or raise (serial)."""
    if not fire("crash", identity, attempt):
        return
    if allow_exit:
        os._exit(CRASH_EXIT_CODE)
    raise InjectedFault(
        "injected worker crash (raised, not exited: in-process execution)"
    )


def hang_point(identity: str, attempt: int | None = None) -> None:
    """``hang`` site: sleep far past any sane job wall-clock budget."""
    plan = get_plan()
    if plan is not None and fire("hang", identity, attempt):
        time.sleep(plan.hang_seconds)


def interrupt_point(identity: str, attempt: int | None = None) -> None:
    """``interrupt`` site: simulate Ctrl-C landing mid-sweep."""
    if fire("interrupt", identity, attempt):
        raise KeyboardInterrupt("injected mid-sweep interrupt")


def enospc_point(identity: str) -> None:
    """``enospc`` site: fail a write the way a full filesystem would."""
    if fire("enospc", identity):
        raise OSError(errno.ENOSPC, "No space left on device (injected)")


def corrupt_text(site: str, identity: str, text: str) -> str:
    """Truncate *text* mid-payload when *site* fires (JSON corruption)."""
    if fire(site, identity):
        return text[: max(1, len(text) // 3)]
    return text


def corrupt_bytes(site: str, identity: str, data: bytes) -> bytes:
    """Truncate *data* mid-stream when *site* fires (binary corruption)."""
    if fire(site, identity):
        return data[: max(1, len(data) // 3)]
    return data
