"""Cycle-exact unit tests for the timing model.

These tests pin down the dependence-timing rules derived in DESIGN.md:
bypass windows, storage reads, register-cache miss replay, monolithic
register file penalties, and misprediction loops.
"""

import pytest

from repro.core.config import (
    MachineConfig,
    monolithic_config,
    two_level_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline
from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.vm.machine import run_program


def timed_pipeline(source, config=None):
    """Run *source* with timing recording; returns (pipeline, stats)."""
    base = config or use_based_config()
    config = base.replace(
        record_timing=True, model_memory=False, model_icache=False,
        predictor_enabled=False,
    )
    trace = run_program(assemble(source))
    pipeline = Pipeline(trace, config)
    stats = pipeline.run()
    return pipeline, stats


FILLER = "\n".join(["nop"] * 50)


def test_all_instructions_retire():
    _, stats = timed_pipeline("nop\nnop\nhalt")
    assert stats.retired == 3
    assert stats.cycles > 0


def test_dependent_alu_chain_back_to_back():
    pipeline, _ = timed_pipeline("""
        addi r1, r0, 1
        addi r2, r1, 1
        addi r3, r2, 1
        halt
    """)
    log = pipeline.issue_log
    assert log[1].issue_time == log[0].issue_time + 1
    assert log[2].issue_time == log[1].issue_time + 1


def test_multiply_latency_gates_consumer():
    pipeline, _ = timed_pipeline("""
        addi r1, r0, 3
        mul  r2, r1, r1
        addi r3, r2, 1
        halt
    """)
    log = pipeline.issue_log
    # mul issues one cycle after its input (bypass); its consumer waits
    # the full 4-cycle multiply latency.
    assert log[1].issue_time == log[0].issue_time + 1
    assert log[2].issue_time == log[1].issue_time + 4


def test_independent_ops_issue_same_cycle():
    source = "\n".join(
        f"addi r{i}, r0, {i}" for i in range(1, 7)
    ) + "\nhalt"
    pipeline, _ = timed_pipeline(source)
    log = pipeline.issue_log
    times = [log[i].issue_time for i in range(6)]
    assert len(set(times)) == 1  # six ALUs: all six issue together


def test_int_alu_pool_limits_issue():
    # Seven independent adds: only six integer ALUs exist (Table 1).
    source = "\n".join(
        f"addi r{i}, r0, {i}" for i in range(1, 8)
    ) + "\nhalt"
    pipeline, _ = timed_pipeline(source)
    log = pipeline.issue_log
    times = sorted(log[i].issue_time for i in range(7))
    assert times[5] == times[0]
    assert times[6] == times[0] + 1


def test_late_consumer_reads_storage_and_hits():
    pipeline, stats = timed_pipeline(f"""
        addi r1, r0, 1
        {FILLER}
        addi r2, r1, 1
        halt
    """)
    # The consumer dispatches long after the producer left the bypass
    # network, so its operand comes from the register cache.
    assert stats.operands_storage >= 1
    assert stats.cache.hits >= 1
    assert stats.cache.miss_count == 0


def test_filtered_value_causes_miss_and_replay():
    pipeline, stats = timed_pipeline(f"""
        addi r1, r0, 1
        addi r2, r1, 1
        {FILLER}
        addi r3, r1, 1
        halt
    """)
    # unknown_default = 1: the first (bypassed) consumer satisfies the
    # predicted use count, so the write is filtered; the late second
    # consumer misses.
    assert stats.cache.misses["filtered"] == 1
    assert stats.rc_miss_events == 1
    assert stats.issue_blocked_cycles >= 1
    assert stats.rf_reads == 1  # one backing-file fill


def test_rc_miss_delays_consumer_by_backing_latency():
    pipeline, stats = timed_pipeline(f"""
        addi r1, r0, 1
        addi r2, r1, 1
        {FILLER}
        addi r3, r1, 1
        halt
    """)
    log = pipeline.issue_log
    missing = log[52]  # the late consumer (after 50 nops)
    # Its execution starts only after the backing file supplies the
    # value: issue + 1 (RC read, miss) + 1 (request) + 2 (backing read).
    assert missing.exec_start >= missing.issue_time + 4


def test_unknown_default_two_avoids_that_miss():
    config = use_based_config(unknown_default=2)
    _, stats = timed_pipeline(f"""
        addi r1, r0, 1
        addi r2, r1, 1
        {FILLER}
        addi r3, r1, 1
        halt
    """, config)
    assert stats.cache.miss_count == 0


def test_always_insert_avoids_filtered_miss():
    config = use_based_config(insertion="always")
    _, stats = timed_pipeline(f"""
        addi r1, r0, 1
        addi r2, r1, 1
        {FILLER}
        addi r3, r1, 1
        halt
    """, config)
    assert stats.cache.misses["filtered"] == 0
    assert stats.cache.miss_count == 0


def test_cache_invalidated_when_preg_freed():
    _, stats = timed_pipeline(f"""
        addi r1, r0, 1
        addi r2, r1, 1
        addi r1, r0, 5
        {FILLER}
        nop
        halt
    """)
    assert stats.cache.invalidations <= stats.cache.instances_cached


def test_monolithic_has_no_cache():
    _, stats = timed_pipeline("""
        addi r1, r0, 1
        addi r2, r1, 1
        halt
    """, monolithic_config(3))
    assert stats.cache is None
    assert stats.rf_writes == 2


def test_monolithic_back_to_back_chains_unaffected():
    source = """
        addi r1, r0, 1
        addi r2, r1, 1
        addi r3, r2, 1
        halt
    """
    fast, _ = timed_pipeline(source, monolithic_config(1))
    slow, _ = timed_pipeline(source, monolithic_config(3))
    fast_delta = fast.issue_log[2].issue_time - fast.issue_log[1].issue_time
    slow_delta = slow.issue_log[2].issue_time - slow.issue_log[1].issue_time
    assert fast_delta == slow_delta == 1


def test_monolithic_dead_window_delays_late_consumer():
    # Consumer dispatched ~3 cycles after the producer: beyond the
    # 2-stage bypass window, it must wait for the RF write (latency 3).
    source = f"""
        addi r1, r0, 1
        {FILLER}
        addi r2, r1, 1
        halt
    """
    mono, stats = timed_pipeline(source, monolithic_config(3))
    assert stats.operands_storage >= 1
    assert stats.rf_reads >= 1


def test_monolithic_latency_costs_cycles_on_branchy_code():
    source = """
        addi r1, r0, 30
    loop:
        addi r2, r1, 7
        xor  r3, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    _, fast = timed_pipeline(source, monolithic_config(1))
    _, slow = timed_pipeline(source, monolithic_config(3))
    assert slow.cycles > fast.cycles


def test_mispredict_stalls_fetch():
    # A never-taken conditional branch on first encounter: the cold
    # predictor's weakly-taken bias mispredicts it.
    pipeline, stats = timed_pipeline("""
        addi r1, r0, 1
        beq  r1, r0, skip
        addi r2, r0, 2
    skip:
        halt
    """)
    assert stats.branch_mispredicts == 1
    log = pipeline.issue_log
    branch, after = log[1], log[2]
    # The post-branch instruction cannot even be fetched until the
    # branch resolves: the issue gap covers the full mispredict loop.
    assert after.issue_time - branch.issue_time >= 12


def test_correctly_predicted_branch_no_stall():
    # Taken branch matches the weakly-taken cold bias: no stall.
    pipeline, stats = timed_pipeline("""
        addi r1, r0, 1
        bne  r1, r0, skip
        nop
    skip:
        halt
    """)
    assert stats.branch_mispredicts == 0


def test_capacity_misses_in_tiny_fully_associative_cache():
    config = use_based_config(
        cache_entries=2, cache_assoc=0, indexing="round_robin",
        unknown_default=2,
    )
    producers = "\n".join(f"addi r{i}, r0, {i}" for i in range(1, 6))
    consumers = "\n".join(f"addi r{i + 10}, r{i}, 1" for i in range(1, 6))
    _, stats = timed_pipeline(
        f"{producers}\n{FILLER}\n{consumers}\nhalt", config
    )
    assert stats.cache.misses["capacity"] >= 1
    assert stats.cache.misses["conflict"] == 0


def test_two_level_deadlock_detected():
    config = two_level_config(
        cache_entries=2, two_level_l1_extra=3,
        record_timing=True, model_memory=False, predictor_enabled=False,
    )
    # Writes 8 distinct architectural registers, never reassigning: the
    # 5-slot L1 can never free a register.
    source = "\n".join(
        f"addi r{i}, r0, {i}" for i in range(1, 9)
    ) + "\nhalt"
    trace = run_program(assemble(source))
    with pytest.raises(SimulationError, match="too small"):
        Pipeline(trace, config).run()


def test_two_level_runs_clean_with_headroom():
    _, stats = timed_pipeline("""
        addi r1, r0, 4
    loop:
        addi r2, r1, 1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """, two_level_config())
    assert stats.retired > 0
    assert stats.cache is None


def test_load_miss_discovered_before_dependents_issue():
    """Regression: with a deep read stage (R=4) the D-cache probe must
    still precede the earliest dependent issue slot, or dependents
    schedule against the stale hit latency and chains pipeline
    impossibly fast (higher RF latency must never help)."""
    from repro.workloads.suite import load_trace
    trace = load_trace("pointer_chase", scale=0.15)
    slow = Pipeline(trace, monolithic_config(4)).run()
    fast = Pipeline(trace, monolithic_config(1)).run()
    assert slow.ipc <= fast.ipc * 1.02


def test_ipc_bounded_by_width():
    source = "\n".join(["nop"] * 200) + "\nhalt"
    _, stats = timed_pipeline(source)
    assert stats.ipc <= 8.0


def test_bypass_fraction_high_for_tight_chain():
    _, stats = timed_pipeline("""
        addi r1, r0, 1
        addi r2, r1, 1
        addi r3, r2, 1
        addi r4, r3, 1
        halt
    """)
    assert stats.bypass_fraction == 1.0


def test_stats_summary_keys():
    _, stats = timed_pipeline("nop\nhalt")
    summary = stats.summary()
    assert "ipc" in summary and "miss_rate" in summary
