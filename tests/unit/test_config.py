"""Unit tests for machine configuration."""

import pytest

from repro.core.config import (
    NAMED_CONFIGS,
    MachineConfig,
    lru_config,
    monolithic_config,
    non_bypass_config,
    two_level_config,
    use_based_config,
)
from repro.errors import ConfigError


def test_defaults_validate():
    MachineConfig().validate()


def test_default_is_paper_design_point():
    config = MachineConfig()
    assert config.storage == "register_cache"
    assert config.cache_entries == 64
    assert config.cache_assoc == 2
    assert config.insertion == "use_based"
    assert config.replacement == "use_based"
    assert config.indexing == "filtered_rr"
    assert config.max_use == 7
    assert config.unknown_default == 1
    assert config.fill_default == 0


def test_read_latency_per_scheme():
    assert MachineConfig().read_latency == 1
    assert monolithic_config(3).read_latency == 3
    assert two_level_config().read_latency == 1


def test_effective_write_latencies_default_to_read():
    config = monolithic_config(4)
    assert config.effective_rf_write_latency == 4
    assert MachineConfig(
        backing_read_latency=3
    ).effective_backing_write_latency == 3


def test_two_level_l1_size():
    assert two_level_config(cache_entries=64).two_level_l1_size == 96


def test_replace_returns_validated_copy():
    config = MachineConfig()
    bigger = config.replace(cache_entries=128)
    assert bigger.cache_entries == 128
    assert config.cache_entries == 64  # original untouched


def test_replace_rejects_invalid():
    with pytest.raises(ConfigError):
        MachineConfig().replace(cache_entries=-1)


def test_invalid_storage_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(storage="banked").validate()


def test_non_multiple_assoc_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(cache_entries=10, cache_assoc=4).validate()


def test_zero_assoc_is_fully_associative():
    MachineConfig(cache_assoc=0).validate()


def test_bad_max_use_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(max_use=0).validate()


def test_negative_defaults_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(unknown_default=-1).validate()


def test_named_config_presets():
    assert lru_config().insertion == "always"
    assert lru_config().replacement == "lru"
    assert non_bypass_config().insertion == "non_bypass"
    assert use_based_config().insertion == "use_based"
    assert monolithic_config().storage == "monolithic"
    assert two_level_config().storage == "two_level"
    assert set(NAMED_CONFIGS) == {
        "use_based", "lru", "non_bypass", "monolithic", "two_level",
    }


def test_preset_overrides_apply():
    config = lru_config(cache_entries=32, backing_read_latency=4)
    assert config.cache_entries == 32
    assert config.backing_read_latency == 4
    assert config.insertion == "always"


def test_frozen_config():
    config = MachineConfig()
    with pytest.raises(Exception):
        config.cache_entries = 1
