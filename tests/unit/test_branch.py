"""Unit tests for branch direction predictors."""

from repro.frontend.branch import (
    BimodalPredictor,
    SaturatingCounter,
    YagsPredictor,
)


def test_saturating_counter_initial_midpoint():
    counter = SaturatingCounter(bits=2)
    assert counter.value == 2
    assert counter.taken()


def test_saturating_counter_saturates_high():
    counter = SaturatingCounter(bits=2)
    for _ in range(10):
        counter.update(True)
    assert counter.value == 3


def test_saturating_counter_saturates_low():
    counter = SaturatingCounter(bits=2)
    for _ in range(10):
        counter.update(False)
    assert counter.value == 0
    assert not counter.taken()


def test_bimodal_learns_bias():
    predictor = BimodalPredictor(entries=64)
    for _ in range(4):
        predictor.update(5, False)
    assert predictor.predict(5) is False
    for _ in range(4):
        predictor.update(5, True)
    assert predictor.predict(5) is True


def test_bimodal_hysteresis():
    predictor = BimodalPredictor(entries=64)
    for _ in range(4):
        predictor.update(5, True)
    predictor.update(5, False)  # single disagreement
    assert predictor.predict(5) is True


def test_bimodal_index_wraps():
    predictor = BimodalPredictor(entries=16)
    predictor.update(3, False)
    predictor.update(3 + 16, False)
    assert predictor.predict(3) is False


def test_yags_learns_static_branch():
    predictor = YagsPredictor(choice_entries=256, cache_entries=64)
    for _ in range(8):
        predictor.update(10, True)
    assert predictor.predict(10) is True


def test_yags_learns_alternating_with_history():
    predictor = YagsPredictor(choice_entries=256, cache_entries=256,
                              history_bits=4)
    # Alternating pattern: global history disambiguates.
    outcomes = [True, False] * 200
    for outcome in outcomes:
        predictor.update(42, outcome)
    correct = 0
    for outcome in [True, False] * 20:
        if predictor.predict(42) == outcome:
            correct += 1
        predictor.update(42, outcome)
    assert correct >= 35  # near-perfect once trained


def test_yags_accuracy_tracking():
    predictor = YagsPredictor(choice_entries=64, cache_entries=32)
    for _ in range(20):
        predictor.update(7, True)
    assert predictor.lookups == 20
    assert 0.0 <= predictor.accuracy <= 1.0
    assert predictor.accuracy > 0.7


def test_yags_biased_loop_branch_high_accuracy():
    """A loop-closing branch (taken N-1 of N) should predict well."""
    predictor = YagsPredictor()
    pattern = ([True] * 9 + [False]) * 50
    for outcome in pattern:
        predictor.update(99, outcome)
    assert predictor.accuracy > 0.85
