"""Unit tests for the deterministic fault-injection layer."""

import errno

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset()
    yield
    faults.reset()


class TestParsePlan:
    def test_disabled_specs_return_none(self):
        for spec in ("", "0", "off", "false", "  "):
            assert faults.parse_plan(spec) is None

    def test_rates_only_spec(self):
        plan = faults.parse_plan("crash=0.5")
        assert plan.rate("crash") == 0.5
        assert plan.rate("hang") == 0.0
        assert plan.seed == 0 and plan.times == 1

    def test_full_spec_with_semicolons(self):
        plan = faults.parse_plan(
            "seed=7; times=2; hang_seconds=12.5; crash=1.0; enospc=0.25"
        )
        assert plan.seed == 7
        assert plan.times == 2
        assert plan.hang_seconds == 12.5
        assert plan.rate("crash") == 1.0
        assert plan.rate("enospc") == 0.25

    def test_spec_with_no_rates_is_disabled(self):
        assert faults.parse_plan("seed=3,times=2") is None

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown key"):
            faults.parse_plan("explode=1.0")

    def test_out_of_range_rate_raises(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            faults.parse_plan("crash=1.5")

    def test_missing_equals_raises(self):
        with pytest.raises(ValueError, match="key=value"):
            faults.parse_plan("crash")


class TestDecide:
    def test_pure_and_deterministic(self):
        plan = faults.FaultPlan(
            seed=42, rates=faults.MappingProxyType({"crash": 0.5}),
        )
        draws = [plan.decide("crash", f"job{i}") for i in range(200)]
        assert draws == [
            plan.decide("crash", f"job{i}") for i in range(200)
        ]
        # A 0.5 rate should fire for roughly half the identities.
        assert 50 < sum(draws) < 150

    def test_seed_changes_decisions(self):
        a = faults.FaultPlan(
            seed=1, rates=faults.MappingProxyType({"crash": 0.5}),
        )
        b = faults.FaultPlan(
            seed=2, rates=faults.MappingProxyType({"crash": 0.5}),
        )
        assert [a.decide("crash", f"j{i}") for i in range(100)] != [
            b.decide("crash", f"j{i}") for i in range(100)
        ]

    def test_rate_one_always_fires_within_times(self):
        plan = faults.FaultPlan(
            times=2, rates=faults.MappingProxyType({"hang": 1.0}),
        )
        assert plan.decide("hang", "x", attempt=0)
        assert plan.decide("hang", "x", attempt=1)
        assert not plan.decide("hang", "x", attempt=2)

    def test_rate_zero_never_fires(self):
        plan = faults.FaultPlan(
            rates=faults.MappingProxyType({"hang": 1.0}),
        )
        assert not plan.decide("crash", "x", attempt=0)


class TestGetPlan:
    def test_no_env_means_disabled(self):
        assert faults.get_plan() is None
        assert not faults.enabled()

    def test_env_plan_is_memoized_per_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash=1.0")
        first = faults.get_plan()
        assert first is not None and faults.enabled()
        assert faults.get_plan() is first
        monkeypatch.setenv("REPRO_FAULTS", "hang=1.0")
        second = faults.get_plan()
        assert second is not first and second.rate("hang") == 1.0

    def test_malformed_env_warns_once_and_disables(self, monkeypatch, caplog):
        import logging

        monkeypatch.setenv("REPRO_FAULTS", "bogus=1.0")
        # The repro logger does not propagate to the root logger, so
        # attach caplog's handler to it directly.
        logger = logging.getLogger("repro")
        logger.addHandler(caplog.handler)
        try:
            # (earlier tests may have left the level at ERROR)
            with caplog.at_level("WARNING", logger="repro"):
                assert faults.get_plan() is None
                # Memoized as disabled; asking again must not warn twice.
                assert faults.get_plan() is None
        finally:
            logger.removeHandler(caplog.handler)
        assert sum(
            "malformed REPRO_FAULTS" in record.message
            for record in caplog.records
        ) == 1
        assert not faults.enabled()


class TestFire:
    def test_occurrence_counter_consumes_times(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt_cache=1.0,times=1")
        assert faults.fire("corrupt_cache", "entry")
        # Second occurrence of the same identity is past `times`.
        assert not faults.fire("corrupt_cache", "entry")
        # A different identity has its own counter.
        assert faults.fire("corrupt_cache", "other")

    def test_explicit_attempt_does_not_consume(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash=1.0,times=1")
        assert faults.fire("crash", "job", attempt=0)
        assert faults.fire("crash", "job", attempt=0)  # pure, re-askable
        assert not faults.fire("crash", "job", attempt=1)

    def test_disabled_never_fires(self):
        assert not faults.fire("crash", "job", attempt=0)


class TestSiteHelpers:
    def test_crash_point_raises_in_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash=1.0")
        with pytest.raises(faults.InjectedFault):
            faults.crash_point("job", attempt=0, allow_exit=False)

    def test_interrupt_point_raises_keyboard_interrupt(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "interrupt=1.0")
        with pytest.raises(KeyboardInterrupt):
            faults.interrupt_point("job", attempt=0)

    def test_enospc_point_raises_enospc(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "enospc=1.0")
        with pytest.raises(OSError) as excinfo:
            faults.enospc_point("manifest")
        assert excinfo.value.errno == errno.ENOSPC

    def test_corrupt_text_truncates_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt_cache=1.0,times=1")
        text = "x" * 300
        corrupted = faults.corrupt_text("corrupt_cache", "key", text)
        assert corrupted != text and len(corrupted) == 100
        # Occurrence consumed: the rewrite goes through clean.
        assert faults.corrupt_text("corrupt_cache", "key", text) == text

    def test_corrupt_bytes_truncates(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "truncate_trace=1.0")
        data = b"y" * 90
        assert faults.corrupt_bytes("truncate_trace", "key", data) == b"y" * 30

    def test_injected_fault_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(faults.InjectedFault, ReproError)
