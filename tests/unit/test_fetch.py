"""Unit tests for the trace-driven front end."""

from repro.frontend.fetch import FrontEnd
from repro.isa.assembler import assemble
from repro.vm.machine import run_program


def make_frontend(source, **kwargs):
    trace = run_program(assemble(source))
    return FrontEnd(trace, **kwargs), trace


def drain(frontend, start=0, limit=10_000):
    """Pull everything, returning (dyn, dispatch_cycle) pairs."""
    out = []
    now = start
    while not frontend.exhausted():
        for fetched in frontend.pull(now, 16):
            out.append((fetched, now))
        now += 1
        if now > limit:
            raise AssertionError("front end did not drain")
    return out


def test_straight_line_respects_front_depth():
    frontend, trace = make_frontend("nop\nnop\nhalt", front_depth=11)
    items = drain(frontend)
    assert len(items) == len(trace)
    first_fetched, cycle = items[0]
    assert cycle == 11  # fetched at 0, available after the front depth


def test_fetch_width_limits_per_cycle():
    source = "\n".join(["nop"] * 20) + "\nhalt"
    frontend, _ = make_frontend(source, fetch_width=8, front_depth=0,
                                icache=None)
    items = drain(frontend)
    by_cycle = {}
    for fetched, cycle in items:
        by_cycle.setdefault(cycle, 0)
        by_cycle[cycle] += 1
    assert max(by_cycle.values()) <= 8


def test_taken_branch_ends_fetch_block():
    frontend, _ = make_frontend("""
        beq r0, r0, target
    target:
        nop
        halt
    """, front_depth=0)
    items = drain(frontend)
    # The always-taken branch is fetched alone in its block; the next
    # instruction comes at least one cycle later.
    assert items[1][1] > items[0][1]


def test_mispredict_stalls_fetch_until_resume():
    # A data-dependent branch direction the predictor cannot know cold:
    # first encounter of a taken branch (bimodal initializes weakly
    # taken, so use a not-taken... train with an alternating pattern is
    # complex; instead check the mispredicted flag wiring directly).
    frontend, trace = make_frontend("""
        addi r1, r0, 1
        beq r1, r0, skip    # not taken; cold YAGS predicts taken -> wrong?
        nop
    skip:
        halt
    """, front_depth=0)
    # Walk manually: pull until we see a mispredicted branch.
    now = 0
    saw_mispredict = False
    pulled = []
    while not frontend.exhausted() and now < 1000:
        for fetched in frontend.pull(now, 16):
            pulled.append(fetched)
            if fetched.mispredicted:
                saw_mispredict = True
                stall_cycle = now
                frontend.resume(now + 5)
        now += 1
    if saw_mispredict:
        assert frontend.mispredicts >= 1
    # All instructions must eventually be delivered exactly once.
    assert len(pulled) == len(trace)


def test_resume_restarts_fetch_after_cycle():
    frontend, trace = make_frontend("""
        addi r1, r0, 1
    loop:
        addi r1, r1, 1
        addi r2, r1, 0
        beq r1, r2, end     # always taken; cold predictor may miss
    end:
        halt
    """, front_depth=0)
    now = 0
    delivered = 0
    while not frontend.exhausted() and now < 1000:
        for fetched in frontend.pull(now, 16):
            delivered += 1
            if fetched.mispredicted:
                frontend.resume(now + 3)
        now += 1
    assert delivered == len(trace)


def test_peek_does_not_consume():
    frontend, _ = make_frontend("nop\nhalt", front_depth=0)
    first = frontend.peek(0)
    assert first is not None
    again = frontend.peek(0)
    assert again is first
    pulled = frontend.pull(0, 1)
    assert pulled[0] is first


def test_pull_respects_max_count():
    source = "\n".join(["nop"] * 8) + "\nhalt"
    frontend, _ = make_frontend(source, front_depth=0)
    got = frontend.pull(5, 3)
    assert len(got) <= 3


def test_icache_miss_stalls_fetch():
    class StallingICache:
        def __init__(self):
            self.calls = 0

        def access(self, line):
            self.calls += 1
            return 12 if self.calls == 1 else 0

    source = "\n".join(["nop"] * 4) + "\nhalt"
    icache = StallingICache()
    trace = run_program(assemble(source))
    frontend = FrontEnd(trace, front_depth=0, icache=icache)
    items = drain(frontend)
    # First instruction delayed by the 12-cycle icache miss.
    assert items[0][1] >= 12
    assert icache.calls >= 1
