"""Unit tests for the differential oracle."""

import pytest

from repro.core.config import (
    lru_config,
    monolithic_config,
    two_level_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline
from repro.testing import oracle
from repro.workloads.suite import load_trace

SCALE = 0.06


@pytest.fixture(scope="module")
def trace():
    return load_trace("compress", scale=SCALE)


def _run(trace, config):
    return Pipeline(trace, config).run()


class TestReplay:
    def test_replay_counts_match_trace(self, trace):
        replay = oracle.replay_trace(trace)
        assert replay.retired == len(trace.records)
        assert replay.source_operands == sum(
            len(inst.sources) for inst in trace.records
        )
        assert replay.dest_writes == sum(
            1 for inst in trace.records if inst.dest is not None
        )
        assert 0 < replay.dest_writes <= replay.retired


class TestValidateStats:
    def test_clean_run_passes(self, trace):
        stats = _run(trace, use_based_config())
        assert oracle.validate_stats(stats) == []

    def test_negative_counter_flagged(self, trace):
        stats = _run(trace, use_based_config())
        stats.retired = -stats.retired
        violations = oracle.validate_stats(stats)
        assert any("retired is negative" in v for v in violations)

    def test_broken_cache_conservation_flagged(self, trace):
        stats = _run(trace, use_based_config())
        stats.cache.hits += 7
        violations = oracle.validate_stats(stats)
        assert any("cache reads" in v for v in violations)

    def test_bypass_first_bound_flagged(self, trace):
        stats = _run(trace, use_based_config())
        stats.operands_bypass_first = stats.operands_bypass + 1
        violations = oracle.validate_stats(stats)
        assert any("operands_bypass_first" in v for v in violations)

    def test_predictor_ordering_flagged(self, trace):
        stats = _run(trace, use_based_config())
        stats.predictor_correct = stats.predictor_supplied + 1
        violations = oracle.validate_stats(stats)
        assert any("predictor_correct" in v for v in violations)


class TestCheckRun:
    @pytest.mark.parametrize("config_factory", [
        use_based_config, lru_config,
        lambda: monolithic_config(3), two_level_config,
    ])
    def test_every_scheme_conserves(self, trace, config_factory):
        stats = _run(trace, config_factory())
        assert oracle.check_run(trace, stats) == []

    def test_retired_mismatch_flagged(self, trace):
        stats = _run(trace, use_based_config())
        stats.retired += 1
        violations = oracle.check_run(trace, stats)
        assert any("trace length" in v for v in violations)

    def test_operand_conservation_flagged(self, trace):
        stats = _run(trace, use_based_config())
        stats.operands_storage += 1
        violations = oracle.check_run(trace, stats)
        assert violations  # breaks bypass+storage and storage==reads

    def test_rf_write_mismatch_flagged(self, trace):
        stats = _run(trace, use_based_config())
        stats.rf_writes += 1
        violations = oracle.check_run(trace, stats)
        assert any("rf_writes" in v for v in violations)

    def test_wrong_trace_is_detected(self, trace):
        stats = _run(trace, use_based_config())
        other = load_trace("pointer_chase", scale=SCALE)
        assert oracle.check_run(other, stats) != []


class TestCheckResults:
    def test_clean_sweep_has_no_violations(self, trace):
        stats = _run(trace, use_based_config())
        assert oracle.check_results({"compress": trace},
                                    {"compress": stats}) == {}

    def test_holes_are_skipped(self, trace):
        class Hole:
            def __bool__(self):
                return False

        assert oracle.check_results(
            {"compress": trace}, {"compress": Hole()},
        ) == {}

    def test_missing_trace_still_validates_internally(self, trace):
        stats = _run(trace, use_based_config())
        stats.cache.hits += 3
        violations = oracle.check_results({}, {"compress": stats})
        assert "compress" in violations
