"""Unit tests for trace records and trace-level statistics."""

from repro.isa.assembler import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.vm.machine import run_program
from repro.vm.trace import DynamicInst, Trace


def test_dynamic_inst_strips_zero_sources():
    inst = Instruction(Opcode.ADD, dest=3, src1=0, src2=2)
    dyn = DynamicInst(0, 0, inst)
    assert dyn.sources == (2,)


def test_dynamic_inst_zero_dest_is_none():
    inst = Instruction(Opcode.ADDI, dest=0, src1=1, imm=1)
    dyn = DynamicInst(0, 0, inst)
    assert dyn.dest is None
    assert not dyn.writes_register


def test_dynamic_inst_caches_spec_flags():
    inst = Instruction(Opcode.LW, dest=2, src1=1, imm=0)
    dyn = DynamicInst(0, 0, inst, mem_addr=5)
    assert dyn.is_load and not dyn.is_store
    assert dyn.op_class is OpClass.LOAD
    assert dyn.latency == 4


def test_trace_counts():
    trace = run_program(assemble("""
        addi r1, r0, 2
    loop:
        sw r1, 0(r1)
        lw r2, 0(r1)
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    """))
    assert trace.branch_count() == 2
    assert trace.load_count() == 2
    assert trace.store_count() == 2


def test_mix_sums_to_length():
    trace = run_program(assemble("""
        addi r1, r0, 3
        mul r2, r1, r1
        halt
    """))
    assert sum(trace.mix().values()) == len(trace)


def test_degree_of_use_histogram_single_use():
    trace = run_program(assemble("""
        addi r1, r0, 1
        addi r2, r1, 1
        halt
    """))
    hist = trace.degree_of_use_histogram()
    # r1 used once (by the second addi); r2 never used.
    assert hist.get(1) == 1
    assert hist.get(0) == 1


def test_degree_of_use_histogram_redefinition_closes_value():
    trace = run_program(assemble("""
        addi r1, r0, 1
        add r2, r1, r1
        addi r1, r0, 5
        halt
    """))
    hist = trace.degree_of_use_histogram()
    # First r1: two reads, then redefined. r2 and second r1: zero reads.
    assert hist.get(2) == 1
    assert hist.get(0) == 2


def test_trace_indexing_and_iteration():
    trace = run_program(assemble("nop\nhalt"))
    assert len(trace) == 2
    assert trace[0].pc == 0
    assert [r.pc for r in trace] == [0, 1]
