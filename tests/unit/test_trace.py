"""Unit tests for trace records, trace-level statistics, and the
trace factory's precompute + packed-serialization layer."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.vm.machine import run_program
from repro.vm.trace import (
    DynamicInst,
    Trace,
    TraceAnalysis,
    compute_fcf,
    pack_trace,
    unpack_trace,
)


def test_dynamic_inst_strips_zero_sources():
    inst = Instruction(Opcode.ADD, dest=3, src1=0, src2=2)
    dyn = DynamicInst(0, 0, inst)
    assert dyn.sources == (2,)


def test_dynamic_inst_zero_dest_is_none():
    inst = Instruction(Opcode.ADDI, dest=0, src1=1, imm=1)
    dyn = DynamicInst(0, 0, inst)
    assert dyn.dest is None
    assert not dyn.writes_register


def test_dynamic_inst_caches_spec_flags():
    inst = Instruction(Opcode.LW, dest=2, src1=1, imm=0)
    dyn = DynamicInst(0, 0, inst, mem_addr=5)
    assert dyn.is_load and not dyn.is_store
    assert dyn.op_class is OpClass.LOAD
    assert dyn.latency == 4


def test_trace_counts():
    trace = run_program(assemble("""
        addi r1, r0, 2
    loop:
        sw r1, 0(r1)
        lw r2, 0(r1)
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    """))
    assert trace.branch_count() == 2
    assert trace.load_count() == 2
    assert trace.store_count() == 2


def test_mix_sums_to_length():
    trace = run_program(assemble("""
        addi r1, r0, 3
        mul r2, r1, r1
        halt
    """))
    assert sum(trace.mix().values()) == len(trace)


def test_degree_of_use_histogram_single_use():
    trace = run_program(assemble("""
        addi r1, r0, 1
        addi r2, r1, 1
        halt
    """))
    hist = trace.degree_of_use_histogram()
    # r1 used once (by the second addi); r2 never used.
    assert hist.get(1) == 1
    assert hist.get(0) == 1


def test_degree_of_use_histogram_redefinition_closes_value():
    trace = run_program(assemble("""
        addi r1, r0, 1
        add r2, r1, r1
        addi r1, r0, 5
        halt
    """))
    hist = trace.degree_of_use_histogram()
    # First r1: two reads, then redefined. r2 and second r1: zero reads.
    assert hist.get(2) == 1
    assert hist.get(0) == 2


def test_trace_indexing_and_iteration():
    trace = run_program(assemble("nop\nhalt"))
    assert len(trace) == 2
    assert trace[0].pc == 0
    assert [r.pc for r in trace] == [0, 1]


# ----------------------------------------------------------------------
# TraceAnalysis: trace-invariant precompute, computed once.

LOOPY = """
    addi r1, r0, 3
    addi r3, r0, 1000
loop:
    sw r1, 0(r3)
    lw r2, 0(r3)
    add r4, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    out r4
    halt
"""


def test_analysis_computed_once_and_cached():
    trace = run_program(assemble(LOOPY))
    first = trace.analysis()
    assert trace.analysis() is first  # memoized, not recomputed
    assert first.branch_count == trace.branch_count()


def test_analysis_matches_summary_methods():
    trace = run_program(assemble(LOOPY))
    analysis = trace.analysis()
    assert analysis.mix == trace.mix()
    assert analysis.histogram == trace.degree_of_use_histogram()
    assert analysis.fcf == compute_fcf(trace)
    assert (analysis.branch_count, analysis.load_count,
            analysis.store_count) == (
        trace.branch_count(), trace.load_count(), trace.store_count())


def test_analysis_use_counts_align_with_histogram():
    trace = run_program(assemble(LOOPY))
    analysis = trace.analysis()
    assert len(analysis.use_counts) == len(trace)
    histogram = {}
    for record, uses in zip(trace, analysis.use_counts):
        if record.dest is None:
            assert uses == -1
        else:
            assert uses >= 0
            histogram[uses] = histogram.get(uses, 0) + 1
    assert histogram == analysis.histogram


def test_analysis_register_read_write_totals():
    trace = run_program(assemble(LOOPY))
    analysis = trace.analysis()
    assert sum(analysis.reg_writes) == sum(
        1 for r in trace if r.dest is not None
    )
    assert sum(analysis.reg_reads) == sum(len(r.sources) for r in trace)


def test_summary_methods_return_copies():
    trace = run_program(assemble(LOOPY))
    trace.mix().clear()
    trace.degree_of_use_histogram().clear()
    assert trace.mix()  # internal state untouched
    assert trace.degree_of_use_histogram()


# ----------------------------------------------------------------------
# Packed serialization.


def _roundtrip(source):
    program = assemble(source)
    trace = run_program(program)
    restored = unpack_trace(pack_trace(trace, trace.analysis()), program)
    return trace, restored


def test_pack_unpack_roundtrip_bit_identical():
    trace, restored = _roundtrip(LOOPY)
    assert [r.signature() for r in restored] == [
        r.signature() for r in trace
    ]
    assert restored.name == trace.name


def test_pack_unpack_preserves_analysis():
    trace, restored = _roundtrip(LOOPY)
    packed_analysis = restored._analysis
    assert packed_analysis is not None  # restored, not lazily recomputed
    fresh = trace.analysis()
    assert packed_analysis.fcf == fresh.fcf
    assert packed_analysis.use_counts == fresh.use_counts
    assert packed_analysis.histogram == fresh.histogram
    assert packed_analysis.mix == fresh.mix
    assert packed_analysis.reg_reads == fresh.reg_reads


def test_pack_without_analysis_recomputes_lazily():
    program = assemble(LOOPY)
    trace = run_program(program)
    restored = unpack_trace(pack_trace(trace), program)
    assert restored._analysis is None
    assert restored.degree_of_use_histogram() == trace.degree_of_use_histogram()


def test_pack_unpack_preserves_provenance():
    program = assemble(LOOPY)
    trace = run_program(program)
    trace.provenance = ("loopy", 1.0, 7)
    restored = unpack_trace(pack_trace(trace), program)
    assert restored.provenance == ("loopy", 1.0, 7)


def test_unpack_rejects_garbage_and_truncation():
    program = assemble(LOOPY)
    data = pack_trace(run_program(program))
    with pytest.raises(ValueError):
        unpack_trace(b"not a trace", program)
    with pytest.raises(ValueError):
        unpack_trace(data[: len(data) // 2], program)


def test_unpack_rejects_mismatched_program():
    program = assemble(LOOPY)
    data = pack_trace(run_program(program))
    other = assemble("nop\nhalt")
    with pytest.raises(ValueError):
        unpack_trace(data, other)
