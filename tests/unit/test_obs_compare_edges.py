"""Edge-case tests for the ``analysis.obs compare`` gate.

Covers the corners a real CI baseline hits: an empty baseline artifact,
NaN / zero-denominator rates, and a baseline covering fewer benchmarks
than the candidate (only the intersection may gate).
"""

import json
import math

from repro.analysis.obs import Thresholds, compare_metrics, main


class TestEmptyBaseline:
    def test_empty_baseline_compares_nothing(self):
        regressions, compared = compare_metrics(
            {}, {"suite.ipc": 1.2, "errors": 3},
        )
        assert regressions == []
        assert compared == 0

    def test_empty_candidate_compares_nothing(self):
        regressions, compared = compare_metrics({"suite.ipc": 1.2}, {})
        assert regressions == []
        assert compared == 0

    def test_cli_with_empty_baseline_exits_zero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps({}))
        current.write_text(json.dumps({"suite.ipc": 0.5, "errors": 9}))
        assert main(["compare", str(baseline), str(current)]) == 0
        out = capsys.readouterr().out
        assert "0 metric" in out or "compared" in out


class TestNonFiniteValues:
    def test_nan_rate_is_skipped_not_passed_silently(self):
        # NaN comparisons are all False; without the isfinite guard a
        # NaN baseline would "pass" any candidate and vice versa. The
        # gate must skip the metric entirely (not count it compared).
        regressions, compared = compare_metrics(
            {"bench.gcc.miss_rate": float("nan"), "suite.ipc": 1.0},
            {"bench.gcc.miss_rate": 0.5, "suite.ipc": 1.0},
        )
        assert regressions == []
        assert compared == 1  # only suite.ipc

    def test_nan_candidate_is_skipped(self):
        regressions, compared = compare_metrics(
            {"suite.ipc": 1.0}, {"suite.ipc": float("nan")},
        )
        assert regressions == []
        assert compared == 0

    def test_infinite_time_is_skipped(self):
        regressions, compared = compare_metrics(
            {"wall_seconds": 1.0}, {"wall_seconds": math.inf},
        )
        assert regressions == []
        assert compared == 0

    def test_zero_denominator_rate_baseline_uses_floor(self):
        # A 0.0 rate from an idle denominator is a legitimate value:
        # tiny candidate rates sit under the absolute floor...
        thresholds = Thresholds()
        regressions, compared = compare_metrics(
            {"bench.gcc.miss_rate": 0.0},
            {"bench.gcc.miss_rate": thresholds.rate_floor / 2},
        )
        assert compared == 1
        assert regressions == []

    def test_zero_denominator_rate_still_gates_real_rises(self):
        # ...but a rise past the floor still trips the gate.
        thresholds = Thresholds()
        regressions, _ = compare_metrics(
            {"bench.gcc.miss_rate": 0.0},
            {"bench.gcc.miss_rate": thresholds.rate_floor * 3},
        )
        assert [r.metric for r in regressions] == ["bench.gcc.miss_rate"]


class TestAsymmetricCoverage:
    def test_baseline_with_fewer_benchmarks_gates_intersection_only(self):
        baseline = {"bench.gcc.ipc": 1.0}
        candidate = {
            "bench.gcc.ipc": 1.0,
            "bench.mcf.ipc": 0.01,     # new benchmark, however bad,
            "bench.mcf.errors": 40.0,  # cannot regress the gate
        }
        regressions, compared = compare_metrics(baseline, candidate)
        assert regressions == []
        assert compared == 1

    def test_shared_benchmark_still_gates(self):
        baseline = {"bench.gcc.ipc": 1.0, "bench.mcf.ipc": 1.0}
        candidate = {"bench.gcc.ipc": 0.5}
        regressions, compared = compare_metrics(baseline, candidate)
        assert compared == 1
        assert [r.metric for r in regressions] == ["bench.gcc.ipc"]

    def test_cli_intersection_exit_codes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps({"bench.gcc.ipc": 1.0}))
        current.write_text(json.dumps(
            {"bench.gcc.ipc": 1.0, "bench.mcf.ipc": 0.1},
        ))
        assert main(["compare", str(baseline), str(current)]) == 0
        current.write_text(json.dumps({"bench.gcc.ipc": 0.2}))
        assert main(["compare", str(baseline), str(current)]) == 1
