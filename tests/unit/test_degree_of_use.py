"""Unit tests for the degree-of-use predictor."""

import pytest

from repro.isa.assembler import assemble
from repro.predict.degree_of_use import (
    FCF_BITS,
    DegreeOfUsePredictor,
    compute_fcf,
)
from repro.vm.machine import run_program


def test_cold_predictor_returns_none():
    predictor = DegreeOfUsePredictor()
    assert predictor.predict(100, 0) is None


def test_prediction_requires_confidence():
    predictor = DegreeOfUsePredictor(confidence_threshold=1)
    predictor.train(100, 0, 2)
    # One training: entry exists but confidence 0 -> no prediction.
    assert predictor.predict(100, 0) is None
    predictor.train(100, 0, 2)
    assert predictor.predict(100, 0) == 2


def test_misprediction_resets_confidence():
    predictor = DegreeOfUsePredictor(confidence_threshold=1)
    predictor.train(100, 0, 2)
    predictor.train(100, 0, 2)
    assert predictor.predict(100, 0) == 2
    predictor.train(100, 0, 5)  # change of behaviour
    assert predictor.predict(100, 0) is None
    predictor.train(100, 0, 5)
    assert predictor.predict(100, 0) == 5


def test_prediction_saturates_at_max():
    predictor = DegreeOfUsePredictor(prediction_bits=4,
                                     confidence_threshold=1)
    for _ in range(3):
        predictor.train(100, 0, 500)
    assert predictor.predict(100, 0) == 15


def test_fcf_distinguishes_paths():
    predictor = DegreeOfUsePredictor(confidence_threshold=1)
    for _ in range(3):
        predictor.train(100, 0b001, 1)
        predictor.train(100, 0b111, 4)
    assert predictor.predict(100, 0b001) == 1
    assert predictor.predict(100, 0b111) == 4


def test_set_conflict_eviction_lru():
    predictor = DegreeOfUsePredictor(entries=4, assoc=2, tag_bits=10,
                                     confidence_threshold=0)
    # Fill one set beyond capacity with distinct tags; oldest evicted.
    # With 2 sets, pcs mapping to set 0 differ by multiples of 2.
    pcs = [0, 4, 8]
    for pc in pcs:
        predictor.train(pc, 0, 3)
    # The structure must never exceed its associativity.
    for entries in predictor._sets:
        assert len(entries) <= 2


def test_entries_must_divide_by_assoc():
    with pytest.raises(ValueError):
        DegreeOfUsePredictor(entries=10, assoc=4)


def test_accuracy_accounting():
    predictor = DegreeOfUsePredictor(confidence_threshold=1)
    for _ in range(5):
        predictor.train(7, 0, 1)
    supplied = predictor.predict(7, 0)
    assert supplied == 1
    predictor.record_outcome(supplied, 1)
    assert predictor.correct == 1
    assert predictor.accuracy == 1.0


def test_record_outcome_ignores_none():
    predictor = DegreeOfUsePredictor()
    predictor.record_outcome(None, 3)
    assert predictor.correct == 0


def test_wrongpath_noise_perturbs_training():
    noisy = DegreeOfUsePredictor(wrongpath_noise=1.0, seed=3,
                                 confidence_threshold=0)
    noisy.train(5, 0, 3)
    # The stored prediction differs from 3 by exactly 1.
    entries, tag = noisy._locate(5, 0)
    value = next(e.prediction for e in entries if e.tag == tag)
    assert value in (2, 4)


def test_compute_fcf_encodes_upcoming_branches():
    trace = run_program(assemble("""
        addi r1, r0, 2
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    """))
    fcf = compute_fcf(trace)
    assert len(fcf) == len(trace.records)
    # The first instruction sees both upcoming branch outcomes; the
    # most imminent branch (taken=1) lands in the least-significant bit
    # and the farther one (not taken=0) one bit up: 0b01.
    mask = (1 << FCF_BITS) - 1
    assert fcf[0] == 0b01 & mask
    # The final instruction has no upcoming branches.
    assert fcf[-1] == 0


def test_coverage_property():
    predictor = DegreeOfUsePredictor(confidence_threshold=1)
    predictor.predict(1, 0)
    predictor.train(1, 0, 2)
    predictor.train(1, 0, 2)
    predictor.predict(1, 0)
    assert predictor.queries == 2
    assert predictor.supplied == 1
    assert predictor.coverage == 0.5
