"""Unit tests for lifetime analysis (Figures 1 and 2 machinery)."""

import pytest

from repro.core.lifetimes import (
    allocated_cdf,
    live_cdf,
    mean_phase_summary,
    occupancy_cdf,
    phase_summary,
)
from repro.core.stats import LifetimeRecord


def rec(alloc, write, last_read, free):
    return LifetimeRecord(alloc, write, last_read, free)


def test_record_phase_lengths():
    record = rec(0, 5, 9, 20)
    assert record.empty_time == 5
    assert record.live_time == 4
    assert record.dead_time == 11


def test_record_phases_never_negative():
    record = rec(10, 5, 3, 1)
    assert record.empty_time == 0
    assert record.live_time == 0
    assert record.dead_time == 0


def test_phase_summary_medians():
    records = [rec(0, 1, 2, 10), rec(0, 3, 6, 10), rec(0, 5, 10, 30)]
    summary = phase_summary(records)
    assert summary.empty == 3
    assert summary.live == 3
    assert summary.dead == 8


def test_phase_summary_empty_input():
    summary = phase_summary([])
    assert summary.total == 0


def test_mean_phase_summary():
    a = phase_summary([rec(0, 2, 4, 10)])
    b = phase_summary([rec(0, 4, 8, 10)])
    mean = mean_phase_summary([a, b])
    assert mean.empty == 3
    assert mean.live == 3


def test_occupancy_cdf_single_interval():
    cdf = occupancy_cdf([(0, 10)])
    assert cdf.levels == (1,)
    assert cdf.cumulative == (1.0,)
    assert cdf.median == 1


def test_occupancy_cdf_overlapping_intervals():
    # Two intervals overlap for half the time: levels 1 and 2 each for
    # half of the occupied span.
    cdf = occupancy_cdf([(0, 10), (5, 15)])
    assert cdf.levels == (1, 2)
    assert cdf.cumulative[0] == pytest.approx(10 / 15)
    assert cdf.percentile(0.9) == 2


def test_occupancy_cdf_gap_counts_zero_level():
    cdf = occupancy_cdf([(0, 5), (10, 15)])
    assert 0 in cdf.levels


def test_occupancy_cdf_empty():
    cdf = occupancy_cdf([])
    assert cdf.percentile(0.9) == 0


def test_occupancy_cdf_ignores_empty_intervals():
    cdf = occupancy_cdf([(5, 5), (3, 2)])
    assert cdf.percentile(0.5) == 0


def test_allocated_exceeds_live():
    records = [rec(0, 10, 12, 40), rec(5, 20, 22, 45)]
    alloc = allocated_cdf(records)
    live = live_cdf(records)
    # Allocation spans dominate live spans.
    assert alloc.percentile(0.9) >= live.percentile(0.9)


def test_live_cdf_skips_never_read():
    records = [rec(0, 10, 10, 40)]  # never read: zero live span
    cdf = live_cdf(records)
    assert cdf.percentile(0.99) == 0


def test_percentile_monotone():
    cdf = occupancy_cdf([(0, 10), (2, 8), (4, 6)])
    values = [cdf.percentile(f) for f in (0.1, 0.5, 0.9, 1.0)]
    assert values == sorted(values)
