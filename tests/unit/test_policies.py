"""Unit tests for insertion and replacement policies."""

import pytest

from repro.regfile.insertion import (
    AlwaysInsert,
    NonBypassInsert,
    UseBasedInsert,
    WriteContext,
    make_insertion_policy,
)
from repro.regfile.register_cache import CacheEntry
from repro.regfile.replacement import (
    LRUReplacement,
    UseBasedReplacement,
    make_replacement_policy,
)


def ctx(pred=1, bypassed=0, pinned=False):
    return WriteContext(pred_uses=pred, bypassed_first_stage=bypassed,
                        pinned=pinned)


# ----------------------------------------------------------------------
# Insertion


def test_always_insert():
    policy = AlwaysInsert()
    assert policy.should_insert(ctx(pred=0, bypassed=5))


def test_non_bypass_skips_any_bypassed():
    policy = NonBypassInsert()
    assert policy.should_insert(ctx(pred=3, bypassed=0))
    # Even a multi-use value is filtered after one bypass — the paper's
    # criticism of the heuristic.
    assert not policy.should_insert(ctx(pred=3, bypassed=1))


def test_use_based_inserts_remaining_uses():
    policy = UseBasedInsert()
    assert policy.should_insert(ctx(pred=3, bypassed=1))
    assert not policy.should_insert(ctx(pred=1, bypassed=1))
    assert not policy.should_insert(ctx(pred=0, bypassed=0))


def test_use_based_always_inserts_pinned():
    policy = UseBasedInsert()
    assert policy.should_insert(ctx(pred=7, bypassed=7, pinned=True))


def test_insertion_registry():
    assert isinstance(make_insertion_policy("always"), AlwaysInsert)
    assert isinstance(make_insertion_policy("non_bypass"), NonBypassInsert)
    assert isinstance(make_insertion_policy("use_based"), UseBasedInsert)
    with pytest.raises(ValueError):
        make_insertion_policy("sometimes")


# ----------------------------------------------------------------------
# Replacement


def entry(preg, remaining=0, pinned=False, last_access=0):
    e = CacheEntry(preg, remaining, pinned, last_access, is_fill=False)
    return e


def test_lru_picks_oldest():
    policy = LRUReplacement()
    entries = [entry(1, last_access=5), entry(2, last_access=3),
               entry(3, last_access=9)]
    assert policy.select_victim(entries) == 1


def test_use_based_picks_fewest_remaining():
    policy = UseBasedReplacement()
    entries = [entry(1, remaining=2), entry(2, remaining=0),
               entry(3, remaining=5)]
    assert policy.select_victim(entries) == 1


def test_use_based_tie_breaks_lru():
    policy = UseBasedReplacement()
    entries = [entry(1, remaining=1, last_access=9),
               entry(2, remaining=1, last_access=2)]
    assert policy.select_victim(entries) == 1


def test_use_based_avoids_pinned():
    policy = UseBasedReplacement()
    entries = [entry(1, remaining=0, pinned=True),
               entry(2, remaining=4, pinned=False)]
    # The unpinned entry is evicted despite having more remaining uses.
    assert policy.select_victim(entries) == 1


def test_use_based_all_pinned_falls_back():
    policy = UseBasedReplacement()
    entries = [entry(1, remaining=7, pinned=True, last_access=4),
               entry(2, remaining=7, pinned=True, last_access=1)]
    assert policy.select_victim(entries) == 1  # LRU among pinned


def test_replacement_registry():
    assert isinstance(make_replacement_policy("lru"), LRUReplacement)
    assert isinstance(
        make_replacement_policy("use_based"), UseBasedReplacement
    )
    with pytest.raises(ValueError):
        make_replacement_policy("fifo")
