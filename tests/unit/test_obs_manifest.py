"""Unit tests for JSONL run manifests (write, read, summarize)."""

from repro.obs.manifest import (
    MANIFEST_NAME,
    ManifestWriter,
    manifest_path_for,
    read_manifest,
    summarize_manifest,
)


class TestWriterAndReader:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        writer = ManifestWriter(path)
        assert writer.append({"kind": "job", "job": "a", "status": "ok"})
        assert writer.append({"kind": "job", "job": "b", "status": "error"})
        records = read_manifest(path)
        assert [r["job"] for r in records] == ["a", "b"]

    def test_append_all_writes_one_line_per_record(self, tmp_path):
        path = tmp_path / "m.jsonl"
        ManifestWriter(path).append_all([
            {"kind": "job", "job": "a"},
            {"kind": "run", "jobs": 1},
        ])
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2

    def test_append_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "m.jsonl"
        assert ManifestWriter(path).append({"kind": "job"})
        assert path.exists()

    def test_append_is_best_effort_on_bad_path(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        # Parent "directory" is a regular file -> OSError -> False.
        writer = ManifestWriter(blocker / "sub" / "m.jsonl")
        assert writer.append({"kind": "job"}) is False

    def test_non_json_values_serialized_via_str(self, tmp_path):
        path = tmp_path / "m.jsonl"
        ManifestWriter(path).append({"kind": "job", "path": tmp_path})
        [record] = read_manifest(path)
        assert record["path"] == str(tmp_path)

    def test_reader_skips_corrupt_and_non_dict_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            '{"kind": "job", "job": "a"}\n'
            "{truncated...\n"
            "[1, 2, 3]\n"
            "\n"
            '{"kind": "job", "job": "b"}\n'
        )
        records = read_manifest(path)
        assert [r["job"] for r in records] == ["a", "b"]

    def test_reader_returns_empty_for_missing_file(self, tmp_path):
        assert read_manifest(tmp_path / "nope.jsonl") == []


class TestPathResolution:
    def test_default_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_MANIFEST", raising=False)
        assert manifest_path_for(tmp_path) == tmp_path / MANIFEST_NAME

    def test_disable_values(self, tmp_path, monkeypatch):
        for value in ("0", "false", "off"):
            monkeypatch.setenv("REPRO_MANIFEST", value)
            assert manifest_path_for(tmp_path) is None

    def test_explicit_path_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST", str(tmp_path / "elsewhere.jsonl"))
        assert manifest_path_for(tmp_path) == tmp_path / "elsewhere.jsonl"


class TestSummary:
    def _records(self):
        return [
            {"kind": "run", "run": "r1", "jobs": 3},
            {"kind": "job", "run": "r1", "job": "a", "status": "ok",
             "cached": False, "wall": 1.0},
            {"kind": "job", "run": "r1", "job": "b", "status": "ok",
             "cached": True, "wall": 0.0},
            {"kind": "job", "run": "r2", "job": "c", "status": "error",
             "cached": False, "wall": 3.0, "error": "Boom\n  trace"},
        ]

    def test_summary_counts(self):
        summary = summarize_manifest(self._records())
        assert summary["kind"] == "manifest_summary"
        assert summary["jobs"] == 3
        assert summary["runs"] == 2
        assert summary["ok"] == 2
        assert summary["errors"] == 1
        assert summary["cache_hits"] == 1
        assert summary["cache_misses"] == 2

    def test_summary_wall_excludes_cached_jobs(self):
        summary = summarize_manifest(self._records())
        assert summary["wall_seconds"] == 4.0
        assert summary["wall_p50"] == 1.0
        assert summary["wall_p95"] == 3.0

    def test_summary_failures_carry_error_text(self):
        summary = summarize_manifest(self._records())
        assert summary["failures"] == [
            {"job": "c", "run": "r2", "error": "Boom\n  trace"},
        ]

    def test_summary_of_empty_manifest(self):
        summary = summarize_manifest([])
        assert summary["jobs"] == 0
        assert summary["wall_p95"] == 0.0
        assert summary["failures"] == []
