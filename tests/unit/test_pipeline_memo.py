"""Unit tests for the ``Pipeline._earliest`` readiness memo.

The memo caches, per op, the earliest first-stage-bypass cycle over the
op's issued producers, keyed by the producer-state epoch
(``Pipeline._pepoch``): while the epoch is unchanged no producer's
``exec_end`` has moved, so a cached value is exact and repeated queries
must not rescan the sources. During a normal run the scheduler buckets
each op exactly at its computed cycle, so in-run queries are dominated
by misses (each op is evaluated at a fresh epoch); the hit path is the
guard that makes early re-examinations — e.g. after a load-miss
extension moved a producer — free instead of a rescan.
"""

from repro.core.config import use_based_config
from repro.core.pipeline import Pipeline
from repro.workloads.suite import load_trace


def _run_pipeline():
    trace = load_trace("crc", scale=0.1)
    pipeline = Pipeline(trace, use_based_config(record_timing=True))
    pipeline.run()
    return pipeline


def test_memo_exercised_during_run():
    pipeline = _run_pipeline()
    assert pipeline.earliest_memo_misses > 0


def test_memo_hit_rate_within_epoch():
    """Repeated same-epoch queries hit; the rate reflects one fill."""
    pipeline = _run_pipeline()
    op = next(
        op for op in pipeline.issue_log.values()
        if any(preg >= 0 for preg, _assigned in op.sources)
    )
    op.earliest_epoch = -1  # force one fresh computation
    hits0 = pipeline.earliest_memo_hits
    misses0 = pipeline.earliest_memo_misses

    first = pipeline._earliest(op)
    repeats = 4
    for _ in range(repeats):
        assert pipeline._earliest(op) == first

    hits = pipeline.earliest_memo_hits - hits0
    misses = pipeline.earliest_memo_misses - misses0
    assert (hits, misses) == (repeats, 1)
    assert hits / (hits + misses) >= 0.8


def test_memo_invalidated_by_epoch_bump():
    """A producer-state change (new epoch) forces a recomputation."""
    pipeline = _run_pipeline()
    op = next(
        op for op in pipeline.issue_log.values()
        if any(preg >= 0 for preg, _assigned in op.sources)
    )
    op.earliest_epoch = -1
    value = pipeline._earliest(op)
    misses0 = pipeline.earliest_memo_misses
    pipeline._pepoch += 1  # simulate a producer's exec_end moving
    assert pipeline._earliest(op) == value  # nothing actually moved
    assert pipeline.earliest_memo_misses == misses0 + 1
