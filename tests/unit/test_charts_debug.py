"""Unit tests for ASCII charts and the pipeline debug viewer."""

import pytest

from repro.analysis.charts import bar_chart, line_chart
from repro.core.config import use_based_config
from repro.core.debug import dependence_report, render_timeline
from repro.core.pipeline import Pipeline
from repro.isa.assembler import assemble
from repro.vm.machine import run_program


def test_line_chart_contains_markers_and_legend():
    text = line_chart(
        {"a": [(0, 1.0), (1, 2.0)], "b": [(0, 2.0), (1, 1.0)]},
        title="T",
    )
    assert "T" in text
    assert "*" in text and "o" in text
    assert "*=a" in text and "o=b" in text


def test_line_chart_axis_labels():
    text = line_chart({"s": [(10, 0.5), (20, 1.5)]})
    assert "10" in text and "20" in text
    assert "0.5" in text and "1.5" in text


def test_line_chart_flat_series():
    text = line_chart({"s": [(0, 1.0), (5, 1.0)]})
    assert "*" in text  # degenerate y-span must not divide by zero


def test_line_chart_empty():
    assert "(no data)" in line_chart({}, title="x")


def test_bar_chart_scales_bars():
    text = bar_chart({"big": 1.0, "small": 0.5})
    lines = text.splitlines()
    big = next(line for line in lines if line.startswith("big"))
    small = next(line for line in lines if line.startswith("small"))
    assert big.count("#") > small.count("#")


def test_bar_chart_empty():
    assert "(no data)" in bar_chart({})


@pytest.fixture
def timed_run():
    trace = run_program(assemble("""
        addi r1, r0, 1
        addi r2, r1, 1
        mul  r3, r2, r2
        halt
    """))
    config = use_based_config(
        record_timing=True, model_memory=False, predictor_enabled=False,
    )
    pipeline = Pipeline(trace, config)
    pipeline.run()
    return pipeline


def test_render_timeline_shows_stages(timed_run):
    text = render_timeline(timed_run, first_seq=0, count=4)
    assert "I" in text and "E" in text
    assert "addi" in text and "mul" in text


def test_render_timeline_requires_recording():
    trace = run_program(assemble("halt"))
    pipeline = Pipeline(trace, use_based_config(model_memory=False))
    pipeline.run()
    with pytest.raises(ValueError, match="record_timing"):
        render_timeline(pipeline)


def test_render_timeline_empty_window(timed_run):
    assert "no instructions" in render_timeline(
        timed_run, first_seq=1000, count=5
    )


def test_dependence_report(timed_run):
    text = dependence_report(timed_run, 2)
    assert "mul" in text and "issued@" in text


def test_dependence_report_missing(timed_run):
    assert "never issued" in dependence_report(timed_run, 99)
