"""Unit tests for the static instruction representation."""

import pytest

from repro.isa.instruction import (
    NUM_ARCH_REGS,
    ZERO_REG,
    Instruction,
    validate,
)
from repro.isa.opcodes import Opcode


def test_sources_includes_both():
    inst = Instruction(Opcode.ADD, dest=3, src1=1, src2=2)
    assert inst.sources() == (1, 2)


def test_sources_single():
    inst = Instruction(Opcode.ADDI, dest=3, src1=1, imm=5)
    assert inst.sources() == (1,)


def test_sources_includes_zero_reads():
    inst = Instruction(Opcode.ADD, dest=3, src1=0, src2=2)
    assert inst.sources() == (0, 2)


def test_writes_register_true():
    assert Instruction(Opcode.ADDI, dest=3, src1=0, imm=1).writes_register()


def test_zero_dest_does_not_write():
    inst = Instruction(Opcode.ADDI, dest=ZERO_REG, src1=0, imm=1)
    assert not inst.writes_register()


def test_no_dest_does_not_write():
    inst = Instruction(Opcode.SW, src1=1, src2=2, imm=0)
    assert not inst.writes_register()


def test_str_contains_mnemonic_and_registers():
    inst = Instruction(Opcode.ADD, dest=3, src1=1, src2=2)
    text = str(inst)
    assert "add" in text
    assert "r3" in text and "r1" in text and "r2" in text


def test_validate_accepts_well_formed():
    validate(Instruction(Opcode.ADD, dest=3, src1=1, src2=2))
    validate(Instruction(Opcode.HALT))
    validate(Instruction(Opcode.BEQ, src1=1, src2=2, imm=7))


def test_validate_rejects_missing_source():
    with pytest.raises(ValueError, match="sources"):
        validate(Instruction(Opcode.ADD, dest=3, src1=1))


def test_validate_rejects_unexpected_dest():
    with pytest.raises(ValueError, match="destination"):
        validate(Instruction(Opcode.HALT, dest=1))


def test_validate_rejects_missing_dest():
    with pytest.raises(ValueError, match="destination"):
        validate(Instruction(Opcode.ADD, src1=1, src2=2))


def test_validate_rejects_out_of_range_register():
    with pytest.raises(ValueError, match="out of range"):
        validate(
            Instruction(Opcode.ADD, dest=NUM_ARCH_REGS, src1=1, src2=2)
        )


def test_instructions_are_hashable_and_comparable():
    a = Instruction(Opcode.ADD, dest=3, src1=1, src2=2)
    b = Instruction(Opcode.ADD, dest=3, src1=1, src2=2)
    assert a == b
    assert hash(a) == hash(b)


def test_label_excluded_from_equality():
    a = Instruction(Opcode.NOP, label="x")
    b = Instruction(Opcode.NOP, label="y")
    assert a == b
