"""Unit tests for ASCII rendering edge cases and engine/failure notes."""

from repro.analysis.report import ExperimentResult, _format_cell, render


class TestFormatCell:
    def test_bool_before_float_and_int(self):
        # bool is an int subclass; it must not hit the numeric branches.
        assert _format_cell(True) == "yes"
        assert _format_cell(False) == "no"

    def test_float_zero(self):
        assert _format_cell(0.0) == "0"
        assert _format_cell(-0.0) == "0"

    def test_float_magnitude_buckets(self):
        assert _format_cell(123.456) == "123.5"
        assert _format_cell(-123.456) == "-123.5"
        assert _format_cell(1.23456) == "1.235"
        assert _format_cell(0.123456) == "0.1235"

    def test_int_passes_through(self):
        assert _format_cell(42) == "42"
        assert _format_cell(0) == "0"

    def test_strings_and_none(self):
        assert _format_cell("gcc") == "gcc"
        assert _format_cell(None) == "None"


class TestRender:
    def _result(self, **overrides):
        fields = dict(
            experiment_id="fig0",
            title="Test",
            headers=["config", "ipc"],
            rows=[["base", 1.25]],
        )
        fields.update(overrides)
        return ExperimentResult(**fields)

    def test_empty_rows_renders_header_only(self):
        text = render(self._result(rows=[]))
        assert "== fig0: Test ==" in text
        assert "config" in text
        # Header + separator + title, no data lines.
        assert len(text.splitlines()) == 3

    def test_bool_and_zero_cells_in_table(self):
        text = render(self._result(
            headers=["config", "ok", "rate"],
            rows=[["base", True, 0.0], ["alt", False, 0.5]],
        ))
        assert "yes" in text and "no" in text
        lines = text.splitlines()
        assert any(line.endswith("0") for line in lines)

    def test_engine_meta_becomes_activity_note(self):
        text = render(self._result(meta={"engine": {
            "jobs": 12, "cache_hits": 9, "executed": 3,
            "engine_seconds": 1.5, "job_seconds_p95": 0.42,
        }}))
        assert "engine: 12 jobs, 9 cached, 3 run, 1.50s" in text
        assert "job p95 0.420s" in text

    def test_engine_meta_with_failures(self):
        text = render(self._result(meta={
            "engine": {"jobs": 2, "cache_hits": 0, "executed": 2,
                       "errors": 1},
            "failures": [
                {"job": "fig11/gcc", "error":
                 "Traceback ...\nSimulationError: deadlock"},
                "plain-string failure",
            ],
        }))
        assert "1 FAILED" in text
        # Only the last traceback line surfaces.
        assert "failed: fig11/gcc: SimulationError: deadlock" in text
        assert "failed: plain-string failure" in text

    def test_no_engine_meta_no_note(self):
        text = render(self._result())
        assert "engine:" not in text

    def test_empty_engine_meta_ignored(self):
        text = render(self._result(meta={"engine": {"jobs": 0}}))
        assert "engine:" not in text
