"""Unit tests for register-cache set-assignment policies."""

import pytest

from repro.regfile.indexing import (
    FilteredRoundRobinIndexing,
    MinimumIndexing,
    RoundRobinIndexing,
    StandardIndexing,
    make_index_policy,
)


def test_standard_derives_from_preg():
    policy = StandardIndexing(8)
    assert not policy.decoupled
    assert policy.assign(3) == -1
    assert policy.set_for(17, -1) == 1
    assert policy.set_for(24, -1) == 0


def test_round_robin_cycles():
    policy = RoundRobinIndexing(3)
    assert [policy.assign(1) for _ in range(6)] == [0, 1, 2, 0, 1, 2]


def test_decoupled_set_for_uses_assignment():
    policy = RoundRobinIndexing(4)
    assigned = policy.assign(1)
    assert policy.set_for(999, assigned) == assigned


def test_minimum_picks_least_loaded():
    policy = MinimumIndexing(3)
    a = policy.assign(5)   # set 0, sum 5
    b = policy.assign(2)   # set 1, sum 2
    c = policy.assign(1)   # set 2, sum 1
    assert {a, b, c} == {0, 1, 2}
    # Next assignment goes to the set with the smallest sum (set 2).
    assert policy.assign(1) == c


def test_minimum_release_decrements():
    policy = MinimumIndexing(2)
    s = policy.assign(10)
    policy.assign(1)
    policy.release(s, 10)
    # Set s now has sum 0 again and is picked next.
    assert policy.assign(1) == s


def test_minimum_release_clamps_at_zero():
    policy = MinimumIndexing(2)
    policy.release(0, 100)
    assert policy._sums[0] == 0


def test_filtered_rr_skips_crowded_sets():
    policy = FilteredRoundRobinIndexing(
        4, assoc=2, high_use_threshold=5, skip_threshold=1
    )
    crowded = policy.assign(9)  # high-use value -> its set becomes crowded
    following = [policy.assign(1) for _ in range(6)]
    assert crowded not in following


def test_filtered_rr_release_uncrowds():
    policy = FilteredRoundRobinIndexing(
        2, assoc=2, high_use_threshold=5, skip_threshold=1
    )
    crowded = policy.assign(9)
    policy.release(crowded, 9)
    # After release the set re-enters the rotation.
    assigned = {policy.assign(1) for _ in range(4)}
    assert crowded in assigned


def test_filtered_rr_falls_back_when_all_crowded():
    policy = FilteredRoundRobinIndexing(
        2, assoc=2, high_use_threshold=5, skip_threshold=1
    )
    policy.assign(9)
    policy.assign(9)
    # Both sets crowded: assignment still succeeds.
    assert policy.assign(9) in (0, 1)


def test_filtered_rr_low_use_values_do_not_crowd():
    policy = FilteredRoundRobinIndexing(
        2, assoc=2, high_use_threshold=5, skip_threshold=1
    )
    for _ in range(10):
        policy.assign(1)
    assert policy._high_counts == [0, 0]


def test_make_index_policy_registry():
    assert isinstance(make_index_policy("preg", 4, 2), StandardIndexing)
    assert isinstance(
        make_index_policy("round_robin", 4, 2), RoundRobinIndexing
    )
    assert isinstance(make_index_policy("minimum", 4, 2), MinimumIndexing)
    filtered = make_index_policy("filtered_rr", 4, 4)
    assert isinstance(filtered, FilteredRoundRobinIndexing)
    assert filtered.skip_threshold == 2  # half the associativity


def test_make_index_policy_unknown():
    with pytest.raises(ValueError, match="unknown index policy"):
        make_index_policy("hash", 4, 2)


def test_zero_sets_rejected():
    with pytest.raises(ValueError):
        RoundRobinIndexing(0)
