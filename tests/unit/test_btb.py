"""Unit tests for the return address stack and indirect predictor."""

from repro.frontend.btb import IndirectPredictor, ReturnAddressStack


def test_ras_push_pop_lifo():
    ras = ReturnAddressStack(depth=4)
    ras.push(10)
    ras.push(20)
    assert ras.pop() == 20
    assert ras.pop() == 10


def test_ras_empty_pop_returns_none():
    ras = ReturnAddressStack()
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(depth=2)
    ras.push(1)
    ras.push(2)
    ras.push(3)
    assert len(ras) == 2
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_indirect_cold_predicts_none():
    predictor = IndirectPredictor()
    assert predictor.predict(50) is None


def test_indirect_learns_stable_target():
    predictor = IndirectPredictor()
    for _ in range(5):
        predictor.update(50, 123)
    assert predictor.predict(50) == 123


def test_indirect_adapts_to_new_target():
    predictor = IndirectPredictor()
    predictor.update(50, 100)
    for _ in range(8):
        predictor.update(50, 200)
    assert predictor.predict(50) == 200


def test_indirect_path_correlation():
    """With path history, a dispatch-loop jump alternating between two
    targets in a fixed sequence becomes predictable."""
    predictor = IndirectPredictor(history_bits=6)
    sequence = [111, 222, 111, 222] * 100
    for target in sequence:
        predictor.update(77, target)
    # Accuracy tracked internally; the tail should be well predicted.
    assert predictor.accuracy > 0.6


def test_indirect_accuracy_counts():
    predictor = IndirectPredictor()
    for _ in range(10):
        predictor.update(5, 42)
    assert predictor.lookups == 10
    assert predictor.correct >= 8
