"""Unit tests for JSON serialization of experiment results."""

from repro.analysis.report import ExperimentResult, from_json, to_json


def sample():
    return ExperimentResult(
        experiment_id="figX",
        title="Title",
        headers=["a", "b"],
        rows=[["x", 1.5], ["y", 2]],
        notes="note text",
        meta={"k": 3},
    )


def test_round_trip():
    result = sample()
    clone = from_json(to_json(result))
    assert clone.experiment_id == result.experiment_id
    assert clone.headers == result.headers
    assert clone.rows == result.rows
    assert clone.notes == result.notes
    assert clone.meta == result.meta


def test_json_is_parseable():
    import json
    data = json.loads(to_json(sample()))
    assert data["experiment_id"] == "figX"
    assert data["rows"][0] == ["x", 1.5]


def test_from_json_defaults_optional_fields():
    import json
    minimal = json.dumps({
        "experiment_id": "e", "title": "t", "headers": ["h"],
        "rows": [[1]],
    })
    result = from_json(minimal)
    assert result.notes == ""
    assert result.meta == {}
