"""Unit tests for the windowed event tracer and its Chrome export."""

import json

from repro.obs.tracer import (
    DEFAULT_HEAD_CYCLES,
    DEFAULT_TAIL_EVENTS,
    EventTracer,
    trace_events_enabled,
    trace_file_for,
    tracer_from_env,
)


class TestWindowing:
    def test_head_events_kept_in_full(self):
        tracer = EventTracer(head_cycles=10, tail_events=4)
        for cycle in range(10):
            tracer.emit("fetch", "pipeline", cycle)
        assert len(tracer) == 10
        assert tracer.dropped == 0

    def test_tail_is_a_ring_buffer(self):
        tracer = EventTracer(head_cycles=0, tail_events=4)
        for cycle in range(10):
            tracer.emit("fetch", "pipeline", cycle)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # The retained tail is the most recent events.
        cycles = [event[3] for event in tracer.events()]
        assert cycles == [6, 7, 8, 9]

    def test_head_and_tail_combine_in_order(self):
        tracer = EventTracer(head_cycles=3, tail_events=2)
        for cycle in range(8):
            tracer.emit("e", "c", cycle)
        cycles = [event[3] for event in tracer.events()]
        assert cycles == [0, 1, 2, 6, 7]

    def test_names_reports_distinct_event_names(self):
        tracer = EventTracer()
        tracer.emit("rc_hit", "cache", 1)
        tracer.emit("rc_miss", "cache", 2)
        tracer.emit("rc_hit", "cache", 3)
        assert tracer.names() == {"rc_hit", "rc_miss"}


class TestChromeExport:
    def test_chrome_schema_shape(self):
        tracer = EventTracer()
        tracer.emit("rc_hit", "cache", 5, args={"preg": 3})
        tracer.emit("issue", "pipeline", 7, duration=4)
        tracer.counter("occupancy", 9, used=12.0)
        doc = tracer.to_chrome()
        assert isinstance(doc["traceEvents"], list)
        assert len(doc["traceEvents"]) == 3
        for event in doc["traceEvents"]:
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert event["ph"] in ("i", "X", "C")
            assert isinstance(event["ts"], float)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        instant, span, counter = doc["traceEvents"]
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert instant["args"] == {"preg": 3}
        assert span["ph"] == "X" and span["dur"] == 4.0
        assert counter["ph"] == "C" and counter["args"] == {"used": 12.0}
        # Categories become distinct lanes.
        assert doc["otherData"]["lanes"].keys() == {
            "cache", "pipeline", "counter",
        }

    def test_chrome_doc_is_json_serializable(self):
        tracer = EventTracer()
        tracer.emit("fetch", "pipeline", 0, args={"pc": 64})
        parsed = json.loads(json.dumps(tracer.to_chrome()))
        assert parsed["traceEvents"][0]["name"] == "fetch"

    def test_write_roundtrip(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("fetch", "pipeline", 0)
        out = tmp_path / "trace.json"
        tracer.write(out)
        parsed = json.loads(out.read_text())
        assert parsed["otherData"]["source"] == "repro.obs.tracer"

    def test_write_is_best_effort(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("fetch", "pipeline", 0)
        tracer.write(tmp_path / "no" / "such" / "dir" / "t.json")  # no raise


class TestEnvWiring:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_EVENTS", raising=False)
        assert trace_events_enabled() is False
        assert tracer_from_env() is None

    def test_enabled_values(self, monkeypatch):
        for value in ("1", "true", "on", "yes", "TRUE"):
            monkeypatch.setenv("REPRO_TRACE_EVENTS", value)
            assert trace_events_enabled() is True
        monkeypatch.setenv("REPRO_TRACE_EVENTS", "0")
        assert trace_events_enabled() is False

    def test_tracer_from_env_reads_window_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_EVENTS", "1")
        monkeypatch.setenv("REPRO_TRACE_HEAD", "123")
        monkeypatch.setenv("REPRO_TRACE_TAIL", "456")
        tracer = tracer_from_env()
        assert tracer.head_cycles == 123
        assert tracer.tail_events == 456

    def test_tracer_from_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_EVENTS", "1")
        monkeypatch.delenv("REPRO_TRACE_HEAD", raising=False)
        monkeypatch.delenv("REPRO_TRACE_TAIL", raising=False)
        tracer = tracer_from_env()
        assert tracer.head_cycles == DEFAULT_HEAD_CYCLES
        assert tracer.tail_events == DEFAULT_TAIL_EVENTS

    def test_trace_file_for_sanitizes_and_overrides(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
        assert trace_file_for("gcc/2", "use based") == (
            "repro-trace-gcc_2-use_based.json"
        )
        monkeypatch.setenv("REPRO_TRACE_FILE", "/tmp/my.json")
        assert trace_file_for("gcc", "base") == "/tmp/my.json"
