"""Repository quality gates: docstrings, exports, and error hierarchy."""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors

PACKAGES = [
    "repro", "repro.isa", "repro.vm", "repro.workloads", "repro.frontend",
    "repro.predict", "repro.rename", "repro.regfile", "repro.memory",
    "repro.core", "repro.analysis",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name == "__main__":
                continue
            yield importlib.import_module(f"{package_name}.{info.name}")


@pytest.mark.parametrize(
    "module", list(iter_modules()), ids=lambda m: m.__name__
)
def test_every_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize(
    "module", list(iter_modules()), ids=lambda m: m.__name__
)
def test_public_callables_documented(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            assert member.__doc__, (
                f"{module.__name__}.{name} lacks a docstring"
            )


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name}"


def test_error_hierarchy():
    assert issubclass(errors.AssemblyError, errors.ReproError)
    assert issubclass(errors.ExecutionError, errors.ReproError)
    assert issubclass(errors.ExecutionLimitExceeded, errors.ExecutionError)
    assert issubclass(errors.ConfigError, errors.ReproError)
    assert issubclass(errors.SimulationError, errors.ReproError)
    assert issubclass(errors.RenameError, errors.SimulationError)
    assert issubclass(errors.RegisterFileError, errors.SimulationError)


def test_assembly_error_carries_line_number():
    error = errors.AssemblyError("bad", line_number=7)
    assert error.line_number == 7
    assert "line 7" in str(error)


def test_version_string():
    assert repro.__version__
