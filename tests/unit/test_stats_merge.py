"""Tests for :meth:`SimStats.merge` and the zero-denominator contract.

The merge path feeds the observability suite summary
(:func:`repro.analysis.obs.suite_summary`); the zero-on-empty rate
properties are what let report code format fresh or merged-empty
instances without guards.
"""

import pytest

from repro.core.stats import SimStats
from repro.regfile.register_cache import CacheStats


class TestZeroDenominators:
    def test_all_rates_zero_on_fresh_instance(self):
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.bypass_fraction == 0.0
        assert stats.predictor_accuracy == 0.0
        assert stats.cache_read_bandwidth == 0.0
        assert stats.cache_write_bandwidth == 0.0
        assert stats.rf_read_bandwidth == 0.0
        assert stats.rf_write_bandwidth == 0.0

    def test_summary_of_fresh_instance_is_formattable(self):
        summary = SimStats().summary()
        assert summary["ipc"] == 0.0
        assert summary["predictor_accuracy"] == 0.0

    def test_cache_bandwidths_zero_without_cache(self):
        stats = SimStats(cycles=100, cache=None)
        assert stats.cache_read_bandwidth == 0.0
        assert stats.cache_write_bandwidth == 0.0


class TestMerge:
    def _run(self, benchmark, cycles, retired, **kwargs):
        return SimStats(
            benchmark=benchmark, scheme="use_based",
            cycles=cycles, retired=retired, **kwargs,
        )

    def test_counters_add(self):
        merged = SimStats.merge([
            self._run("gcc", 100, 150, rf_reads=10),
            self._run("mcf", 300, 150, rf_reads=5),
        ])
        assert merged.cycles == 400
        assert merged.retired == 300
        assert merged.rf_reads == 15

    def test_rates_are_traffic_weighted(self):
        merged = SimStats.merge([
            self._run("gcc", 100, 200),   # ipc 2.0
            self._run("mcf", 300, 100),   # ipc 0.33
        ])
        assert merged.ipc == pytest.approx(300 / 400)

    def test_benchmark_and_scheme_labels(self):
        merged = SimStats.merge([
            self._run("gcc", 1, 1), self._run("mcf", 1, 1),
        ])
        assert merged.benchmark == "gcc+mcf"
        assert merged.scheme == "use_based"

    def test_mixed_schemes_labelled_mixed(self):
        a = self._run("gcc", 1, 1)
        b = SimStats(benchmark="mcf", scheme="base", cycles=1, retired=1)
        assert SimStats.merge([a, b]).scheme == "mixed"

    def test_merge_of_nothing_is_empty(self):
        merged = SimStats.merge([])
        assert merged.cycles == 0
        assert merged.ipc == 0.0
        assert merged.benchmark == ""
        assert merged.cache is None

    def test_cache_stats_merge(self):
        cache_a = CacheStats(reads=10, hits=8)
        cache_a.misses["capacity"] = 2
        cache_b = CacheStats(reads=10, hits=2)
        cache_b.misses["capacity"] = 5
        cache_b.misses["conflict"] = 3
        a = self._run("gcc", 10, 10, cache=cache_a)
        b = self._run("mcf", 10, 10, cache=cache_b)
        merged = SimStats.merge([a, b])
        assert merged.cache.reads == 20
        assert merged.cache.hits == 10
        assert merged.cache.misses["capacity"] == 7
        assert merged.cache.miss_rate == pytest.approx(0.5)

    def test_cache_none_runs_do_not_block_merge(self):
        a = self._run("gcc", 10, 10, cache=CacheStats(reads=4, hits=4))
        b = self._run("mcf", 10, 10, cache=None)
        merged = SimStats.merge([a, b])
        assert merged.cache is not None
        assert merged.cache.reads == 4

    def test_merge_concatenates_lifetimes(self):
        from repro.core.stats import LifetimeRecord

        a = self._run("gcc", 10, 10)
        a.lifetimes.append(LifetimeRecord(0, 1, 2, 3))
        b = self._run("mcf", 10, 10)
        b.lifetimes.append(LifetimeRecord(4, 5, 6, 7))
        merged = SimStats.merge([a, b])
        assert len(merged.lifetimes) == 2
        assert merged.lifetimes[1].alloc == 4

    def test_merge_does_not_mutate_inputs(self):
        a = self._run("gcc", 100, 100)
        SimStats.merge([a, self._run("mcf", 1, 1)])
        assert a.cycles == 100
        assert a.benchmark == "gcc"
