"""Resource-limit tests for the timing model: structure sizes, widths,
stalls, and configuration variants not covered by the cycle-exact tests.
"""

from repro.core.config import (
    monolithic_config,
    two_level_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline
from repro.isa.assembler import assemble
from repro.vm.machine import run_program
from repro.workloads.suite import load_trace


def run_source(source, config):
    trace = run_program(assemble(source))
    pipeline = Pipeline(trace, config)
    return pipeline, pipeline.run()


BASE = dict(model_memory=False, model_icache=False, predictor_enabled=False)


def test_retire_width_bounds_throughput():
    # 64 independent nops retire at most 8 per cycle.
    source = "\n".join(["nop"] * 64) + "\nhalt"
    _, stats = run_source(source, use_based_config(**BASE))
    assert stats.cycles >= 64 // 8


def test_tiny_rob_throttles():
    source = "\n".join(f"addi r{1 + i % 8}, r0, {i}" for i in range(64))
    source += "\nhalt"
    big, stats_big = run_source(source, use_based_config(**BASE))
    small, stats_small = run_source(
        source, use_based_config(rob_size=8, **BASE)
    )
    assert stats_small.cycles > stats_big.cycles
    assert stats_small.dispatch_stall_cycles > 0


def test_tiny_window_throttles():
    source = "\n".join(f"addi r{1 + i % 8}, r0, {i}" for i in range(64))
    source += "\nhalt"
    _, stats = run_source(source, use_based_config(window_size=4, **BASE))
    _, wide = run_source(source, use_based_config(**BASE))
    assert stats.cycles >= wide.cycles


def test_preg_exhaustion_stalls_dispatch():
    # 80 writers with a barely-sufficient register file: dispatch must
    # stall until retirement frees registers, but the run completes.
    source = "\n".join(f"addi r{1 + i % 40}, r0, {i}" for i in range(80))
    source += "\nhalt"
    config = use_based_config(num_pregs=72, wrongpath_alloc=0, **BASE)
    _, stats = run_source(source, config)
    assert stats.retired == 81
    assert stats.dispatch_stall_cycles > 0


def test_store_retire_limit():
    # Ten independent stores: at most two may retire per cycle.
    setup = "addi r1, r0, 100\naddi r2, r0, 7\n"
    stores = "\n".join(f"sw r2, {i}(r1)" for i in range(10))
    source = setup + stores + "\nhalt"
    config = use_based_config(
        model_memory=False, model_icache=False, predictor_enabled=False,
    )
    _, stats = run_source(source, config)
    assert stats.retired == 13


def test_store_buffer_backpressure_with_memory():
    # With the memory system on, a burst of stores to distinct lines
    # must drain through the 16-entry store buffer without deadlock.
    setup = "addi r1, r0, 4096\naddi r2, r0, 7\n"
    stores = "\n".join(f"sw r2, {i * 16}(r1)" for i in range(40))
    source = setup + stores + "\nhalt"
    config = use_based_config(predictor_enabled=False)
    _, stats = run_source(source, config)
    assert stats.retired == 43


def test_fully_associative_machine_runs():
    trace = load_trace("crc", scale=0.12)
    config = use_based_config(
        cache_entries=32, cache_assoc=0, indexing="round_robin"
    )
    stats = Pipeline(trace, config).run()
    assert stats.retired == len(trace)
    assert stats.cache.misses["conflict"] == 0  # one set: no conflicts


def test_minimum_indexing_machine_runs():
    trace = load_trace("strmatch", scale=0.12)
    stats = Pipeline(trace, use_based_config(indexing="minimum")).run()
    assert stats.retired == len(trace)


def test_non_power_of_two_cache_with_decoupled_indexing():
    trace = load_trace("crc", scale=0.12)
    config = use_based_config(cache_entries=48, cache_assoc=2)
    stats = Pipeline(trace, config).run()
    assert stats.retired == len(trace)


def test_wrongpath_reservation_restored_after_resolve():
    # A mispredicted branch reserves registers; after resolution the
    # reservation is released and the program completes normally.
    source = """
        addi r1, r0, 1
        beq  r1, r0, skip
        addi r2, r0, 2
    skip:
        addi r3, r0, 3
        halt
    """
    pipeline, stats = run_source(
        source, use_based_config(wrongpath_alloc=24, **BASE)
    )
    assert stats.branch_mispredicts == 1
    assert pipeline._wrongpath_reserved == 0
    assert stats.retired == 5


def test_issue_blocked_cycles_counted_for_rc_misses():
    filler = "\n".join(["nop"] * 50)
    source = f"""
        addi r1, r0, 1
        addi r2, r1, 1
        {filler}
        addi r3, r1, 1
        halt
    """
    _, stats = run_source(source, use_based_config(**BASE))
    assert stats.issue_blocked_cycles >= stats.rc_miss_events > 0


def test_backing_ports_two_reduces_serialization():
    # Two backing read ports should never be slower than one.
    trace = load_trace("hash_dict", scale=0.12)
    one = Pipeline(trace, use_based_config(backing_read_ports=1)).run()
    two = Pipeline(trace, use_based_config(backing_read_ports=2)).run()
    # Fill-time shifts can perturb scheduling slightly; allow 5%.
    assert two.cycles <= one.cycles * 1.05


def test_monolithic_wider_bypass_helps():
    # Four bypass stages cover the monolithic dead window entirely.
    trace = load_trace("compress", scale=0.12)
    narrow = Pipeline(trace, monolithic_config(3, bypass_stages=2)).run()
    wide = Pipeline(trace, monolithic_config(3, bypass_stages=4)).run()
    assert wide.cycles <= narrow.cycles


def test_two_level_bandwidth_matters_under_pressure():
    trace = load_trace("compress", scale=0.2)
    fast = Pipeline(trace, two_level_config(
        cache_entries=16, two_level_bandwidth=4
    )).run()
    slow = Pipeline(trace, two_level_config(
        cache_entries=16, two_level_bandwidth=1
    )).run()
    assert slow.cycles >= fast.cycles


def test_disable_icache_model():
    trace = load_trace("crc", scale=0.12)
    stats = Pipeline(trace, use_based_config(model_icache=False)).run()
    assert stats.retired == len(trace)


def test_max_cycles_guard():
    import pytest

    from repro.errors import SimulationError
    trace = load_trace("crc", scale=0.12)
    with pytest.raises(SimulationError, match="exceeded"):
        Pipeline(trace, use_based_config(max_cycles=10)).run()
