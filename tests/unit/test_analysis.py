"""Unit tests for metrics aggregation, reports, and sweeps."""

import pytest

from repro.analysis.metrics import aggregate_cache_metrics
from repro.analysis.report import ExperimentResult, render, render_all
from repro.analysis.sweeps import ipc_curve, load_traces, run_config, sweep
from repro.core.config import monolithic_config, use_based_config
from repro.core.simulator import mean_ipc, simulate


def small_results(config=None):
    traces = load_traces(("crc", "strmatch"), scale=0.12)
    return run_config(traces, config or use_based_config())


def test_aggregate_cache_metrics_basic():
    results = small_results()
    row = aggregate_cache_metrics("use_based", results)
    assert row.scheme == "use_based"
    assert 0.0 <= row.miss_rate <= 1.0
    assert row.miss_rate == pytest.approx(
        row.miss_filtered + row.miss_conflict + row.miss_capacity, abs=1e-6
    )
    assert row.occupancy > 0
    assert row.cache_read_bw > 0


def test_aggregate_rejects_non_cache_results():
    results = small_results(monolithic_config(3))
    with pytest.raises(ValueError, match="no register cache"):
        aggregate_cache_metrics("mono", results)


def test_aggregate_rejects_empty():
    with pytest.raises(ValueError):
        aggregate_cache_metrics("x", {})


def test_sweep_runs_all_configs():
    traces = load_traces(("crc",), scale=0.12)
    results = sweep(traces, {
        "a": use_based_config(),
        "b": monolithic_config(1),
    })
    assert set(results) == {"a", "b"}
    assert set(results["a"]) == {"crc"}


def test_ipc_curve_shape():
    traces = load_traces(("crc",), scale=0.12)
    curve = ipc_curve(
        traces,
        lambda size: use_based_config(cache_entries=size),
        (16, 64),
    )
    assert [point for point, _ in curve] == [16, 64]
    assert all(ipc > 0 for _, ipc in curve)


def test_mean_ipc_geometric():
    traces = load_traces(("crc", "strmatch"), scale=0.12)
    results = run_config(traces, use_based_config())
    ipcs = [s.ipc for s in results.values()]
    expected = (ipcs[0] * ipcs[1]) ** 0.5
    assert mean_ipc(results) == pytest.approx(expected)


def test_mean_ipc_empty_is_zero():
    assert mean_ipc({}) == 0.0


def test_render_alignment_and_notes():
    result = ExperimentResult(
        experiment_id="figX",
        title="A title",
        headers=["name", "value"],
        rows=[["alpha", 0.5], ["b", 123.456]],
        notes="First line.\nSecond line.",
    )
    text = render(result)
    assert "figX" in text and "A title" in text
    assert "alpha" in text
    assert "123.5" in text  # large floats get one decimal
    assert text.count("note:") == 2


def test_render_formats_small_floats():
    result = ExperimentResult("x", "t", ["v"], [[0.123456]])
    assert "0.1235" in render(result)


def test_render_formats_bools_and_zero():
    result = ExperimentResult("x", "t", ["a", "b"], [[True, 0.0]])
    text = render(result)
    assert "yes" in text and " 0" in text


def test_render_all_joins():
    a = ExperimentResult("a", "t", ["h"], [[1]])
    b = ExperimentResult("b", "t", ["h"], [[2]])
    assert render(a) in render_all([a, b])
    assert render(b) in render_all([a, b])
