"""Unit tests for freelist, map table, and renamer."""

import pytest

from repro.errors import RenameError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.rename.freelist import FreeList
from repro.rename.map_table import MapTable
from repro.rename.renamer import Renamer
from repro.vm.trace import DynamicInst


# ----------------------------------------------------------------------
# FreeList


def test_freelist_counts():
    freelist = FreeList(8)
    assert freelist.free_count == 8
    preg = freelist.allocate()
    assert freelist.free_count == 7
    assert freelist.allocated_count == 1
    assert freelist.is_allocated(preg)


def test_freelist_exhaustion_raises():
    freelist = FreeList(2)
    freelist.allocate()
    freelist.allocate()
    with pytest.raises(RenameError, match="exhausted"):
        freelist.allocate()


def test_freelist_release_and_reuse():
    freelist = FreeList(2)
    a = freelist.allocate()
    freelist.release(a)
    assert freelist.free_count == 2
    assert not freelist.is_allocated(a)


def test_freelist_double_free_raises():
    freelist = FreeList(4)
    preg = freelist.allocate()
    freelist.release(preg)
    with pytest.raises(RenameError, match="unallocated"):
        freelist.release(preg)


def test_freelist_lifo_reuses_recent():
    freelist = FreeList(8, policy="lifo")
    a = freelist.allocate()
    b = freelist.allocate()
    freelist.release(a)
    freelist.release(b)
    assert freelist.allocate() == b  # most recently freed first


def test_freelist_fifo_round_robins():
    freelist = FreeList(4, policy="fifo")
    first = [freelist.allocate() for _ in range(4)]
    for preg in first:
        freelist.release(preg)
    assert freelist.allocate() == first[0]


def test_freelist_rejects_bad_policy():
    with pytest.raises(ValueError):
        FreeList(4, policy="random")


def test_freelist_reserved_range():
    freelist = FreeList(8, reserved=4)
    assert freelist.free_count == 4
    assert freelist.allocate() >= 4


# ----------------------------------------------------------------------
# MapTable


def test_map_table_define_and_lookup():
    table = MapTable()
    assert table.lookup(5) is None
    table.define(5, preg=100, cache_set=3)
    mapping = table.lookup(5)
    assert mapping.preg == 100 and mapping.cache_set == 3


def test_map_table_define_returns_displaced():
    table = MapTable()
    table.define(5, 100)
    displaced = table.define(5, 101)
    assert displaced.preg == 100


def test_map_table_checkpoint_restore():
    table = MapTable()
    table.define(1, 10)
    snapshot = table.checkpoint()
    table.define(1, 20)
    table.define(2, 30)
    table.restore(snapshot)
    assert table.lookup(1).preg == 10
    assert table.lookup(2) is None


def test_map_table_restore_size_mismatch():
    table = MapTable()
    with pytest.raises(RenameError):
        table.restore((None,))


def test_map_table_out_of_range():
    table = MapTable(num_arch_regs=8)
    with pytest.raises(RenameError):
        table.lookup(8)
    with pytest.raises(RenameError):
        table.define(-1, 0)


def test_map_table_live_mappings():
    table = MapTable()
    table.define(1, 10)
    table.define(2, 11)
    assert {m.preg for m in table.live_mappings()} == {10, 11}


# ----------------------------------------------------------------------
# Renamer


def _dyn(inst, seq=0):
    return DynamicInst(seq, 0, inst)


def test_renamer_allocates_dest_and_tracks_prev():
    renamer = Renamer(FreeList(16), MapTable())
    first = renamer.rename(
        _dyn(Instruction(Opcode.ADDI, dest=5, src1=0, imm=1)), None
    )
    assert first.dest_preg >= 0
    assert first.prev_preg == -1
    second = renamer.rename(
        _dyn(Instruction(Opcode.ADDI, dest=5, src1=0, imm=2)), None
    )
    assert second.prev_preg == first.dest_preg


def test_renamer_resolves_sources_through_map():
    renamer = Renamer(FreeList(16), MapTable())
    producer = renamer.rename(
        _dyn(Instruction(Opcode.ADDI, dest=3, src1=0, imm=1)), None
    )
    consumer = renamer.rename(
        _dyn(Instruction(Opcode.ADD, dest=4, src1=3, src2=3)), None
    )
    assert consumer.sources == (
        (producer.dest_preg, producer.dest_set),
        (producer.dest_preg, producer.dest_set),
    )


def test_renamer_unmapped_source_is_free():
    renamer = Renamer(FreeList(16), MapTable())
    op = renamer.rename(
        _dyn(Instruction(Opcode.ADD, dest=4, src1=7, src2=8)), None
    )
    assert op.sources == ((-1, -1), (-1, -1))


def test_renamer_uses_set_assignment():
    assigned = []

    def assign(pred):
        assigned.append(pred)
        return 9

    renamer = Renamer(FreeList(16), MapTable(), assign_set=assign)
    op = renamer.rename(
        _dyn(Instruction(Opcode.ADDI, dest=3, src1=0, imm=1)), 4
    )
    assert op.dest_set == 9
    assert assigned == [4]


def test_renamer_no_dest_allocates_nothing():
    freelist = FreeList(16)
    renamer = Renamer(freelist, MapTable())
    op = renamer.rename(
        _dyn(Instruction(Opcode.SW, src1=1, src2=2, imm=0)), None
    )
    assert op.dest_preg == -1
    assert freelist.free_count == 16


def test_renamer_can_rename_gates_on_freelist():
    freelist = FreeList(1)
    renamer = Renamer(freelist, MapTable())
    dyn = _dyn(Instruction(Opcode.ADDI, dest=3, src1=0, imm=1))
    assert renamer.can_rename(dyn)
    renamer.rename(dyn, None)
    assert not renamer.can_rename(dyn)
    # Non-writing instructions are always renameable.
    store = _dyn(Instruction(Opcode.SW, src1=1, src2=2, imm=0))
    assert renamer.can_rename(store)
