"""Unit tests for the statistical trace synthesizer."""

from repro.core.config import use_based_config
from repro.core.pipeline import Pipeline
from repro.workloads.synthetic import (
    SyntheticSpec,
    generate,
    high_use_trace,
    single_use_trace,
)


def test_generated_length():
    trace = generate(SyntheticSpec(length=500))
    assert len(trace) == 501  # +1 for the terminating halt


def test_dataflow_consistency():
    """Every read register was written earlier or is preinitialized."""
    trace = generate(SyntheticSpec(length=2_000, seed=42))
    written = set(range(1, 16))
    for record in trace:
        for src in record.sources:
            assert src in written, f"seq {record.seq} reads unwritten r{src}"
        if record.dest is not None:
            written.add(record.dest)


def test_branch_fraction_approximate():
    spec = SyntheticSpec(length=5_000, branch_fraction=0.2, seed=1)
    trace = generate(spec)
    fraction = trace.branch_count() / len(trace)
    assert 0.15 < fraction < 0.25


def test_load_store_have_addresses():
    trace = generate(SyntheticSpec(length=2_000, seed=3))
    for record in trace:
        if record.is_load or record.is_store:
            assert record.mem_addr is not None


def test_single_use_trace_degree():
    trace = single_use_trace(length=1_500)
    hist = trace.degree_of_use_histogram()
    assert hist.get(1, 0) > 0
    # No value may have more than one consumer by construction
    # (modulo register-recycling noise from forced source picks).
    high = sum(v for k, v in hist.items() if k > 3)
    assert high / sum(hist.values()) < 0.05


def test_high_use_trace_degree():
    trace = high_use_trace(length=1_500)
    hist = trace.degree_of_use_histogram()
    multi = sum(v for k, v in hist.items() if k >= 3)
    assert multi / sum(hist.values()) > 0.2


def test_deterministic_per_seed():
    a = generate(SyntheticSpec(length=300, seed=9))
    b = generate(SyntheticSpec(length=300, seed=9))
    assert [(r.pc, r.dest, r.sources) for r in a] == [
        (r.pc, r.dest, r.sources) for r in b
    ]


def test_different_seeds_differ():
    a = generate(SyntheticSpec(length=300, seed=1))
    b = generate(SyntheticSpec(length=300, seed=2))
    assert [(r.pc, r.dest) for r in a] != [(r.pc, r.dest) for r in b]


def test_synthetic_trace_simulates():
    """A synthetic trace drives the full timing model."""
    trace = generate(SyntheticSpec(length=1_000, seed=5))
    stats = Pipeline(trace, use_based_config()).run()
    assert stats.retired == len(trace)
    assert stats.ipc > 0
