"""Unit tests for the register cache structure."""

import pytest

from repro.errors import RegisterFileError
from repro.regfile.indexing import RoundRobinIndexing, StandardIndexing
from repro.regfile.register_cache import (
    MISS_CAPACITY,
    MISS_COLD,
    MISS_CONFLICT,
    MISS_FILTERED,
    RegisterCache,
)
from repro.regfile.replacement import LRUReplacement, UseBasedReplacement


def make_cache(entries=4, assoc=2, replacement=None, indexing=None):
    assoc_eff = assoc or entries
    num_sets = entries // assoc_eff
    return RegisterCache(
        entries, assoc,
        replacement or UseBasedReplacement(),
        indexing or StandardIndexing(num_sets),
    )


def test_write_then_hit():
    cache = make_cache()
    cache.write(10, -1, remaining=2, pinned=False, now=0)
    assert cache.contains(10)
    assert cache.lookup(10, -1, now=1)
    assert cache.stats.hits == 1


def test_hit_decrements_remaining():
    cache = make_cache()
    cache.write(10, -1, remaining=2, pinned=False, now=0)
    cache.lookup(10, -1, now=1)
    assert cache.remaining_uses(10) == 1
    cache.lookup(10, -1, now=2)
    cache.lookup(10, -1, now=3)
    assert cache.remaining_uses(10) == 0  # floors at zero


def test_pinned_entry_never_decrements():
    cache = make_cache()
    cache.write(10, -1, remaining=7, pinned=True, now=0)
    for t in range(5):
        cache.lookup(10, -1, now=t)
    assert cache.remaining_uses(10) == 7


def test_cold_miss_classification():
    cache = make_cache()
    assert not cache.lookup(99, -1, now=0)
    assert cache.stats.misses[MISS_COLD] == 1


def test_filtered_miss_classification():
    cache = make_cache()
    cache.record_filtered_write(42)
    assert not cache.lookup(42, -1, now=0)
    assert cache.stats.misses[MISS_FILTERED] == 1
    assert cache.stats.writes_filtered == 1


def test_conflict_miss_classification():
    # Direct-mapped, 2 sets: pregs 0 and 2 collide in set 0 while the
    # cache as a whole still has room -> conflict.
    cache = make_cache(entries=2, assoc=1)
    cache.write(0, -1, 1, False, now=0)
    cache.write(2, -1, 1, False, now=1)  # evicts preg 0
    assert not cache.lookup(0, -1, now=2)
    assert cache.stats.misses[MISS_CONFLICT] == 1


def test_capacity_miss_classification():
    # Fully-associative cache of 2: a third value evicts from a full
    # cache -> capacity.
    cache = make_cache(entries=2, assoc=0)
    cache.write(0, -1, 1, False, now=0)
    cache.write(1, -1, 1, False, now=1)
    cache.write(2, -1, 1, False, now=2)
    victim = next(p for p in (0, 1) if not cache.contains(p))
    assert not cache.lookup(victim, -1, now=3)
    assert cache.stats.misses[MISS_CAPACITY] == 1


def test_eviction_prefers_fewest_remaining():
    cache = make_cache(entries=2, assoc=2)
    cache.write(1, -1, remaining=0, pinned=False, now=0)
    cache.write(2, -1, remaining=5, pinned=False, now=1)
    cache.write(3, -1, remaining=1, pinned=False, now=2)
    assert not cache.contains(1)
    assert cache.contains(2)
    assert cache.stats.zero_use_victims == 1


def test_eviction_with_uses_counted():
    cache = make_cache(entries=2, assoc=2)
    cache.write(1, -1, remaining=3, pinned=False, now=0)
    cache.write(2, -1, remaining=5, pinned=False, now=1)
    cache.write(3, -1, remaining=1, pinned=False, now=2)
    assert cache.stats.evictions_with_uses == 1


def test_lru_replacement_in_cache():
    cache = make_cache(entries=2, assoc=2, replacement=LRUReplacement())
    cache.write(1, -1, 9, False, now=0)
    cache.write(2, -1, 0, False, now=1)
    cache.lookup(1, -1, now=2)  # refresh preg 1
    cache.write(3, -1, 0, False, now=3)
    assert not cache.contains(2)  # LRU ignored use counts
    assert cache.contains(1)


def test_invalidate_removes_and_counts():
    cache = make_cache()
    cache.write(5, -1, 1, False, now=0)
    cache.invalidate(5, now=4)
    assert not cache.contains(5)
    assert cache.stats.invalidations == 1
    assert cache.stats.values_freed == 1


def test_invalidate_uncached_counts_never_cached():
    cache = make_cache()
    cache.invalidate(7, now=1)
    assert cache.stats.values_never_cached == 1
    assert cache.stats.values_freed == 1


def test_never_read_instances_tracked():
    cache = make_cache()
    cache.write(5, -1, 1, False, now=0)
    cache.invalidate(5, now=10)
    assert cache.stats.instances_never_read == 1
    cache.write(6, -1, 1, False, now=10)
    cache.lookup(6, -1, now=11)
    cache.invalidate(6, now=12)
    assert cache.stats.instances_never_read == 1


def test_entry_lifetime_accumulates():
    cache = make_cache()
    cache.write(5, -1, 1, False, now=2)
    cache.invalidate(5, now=12)
    assert cache.stats.lifetime_sum == 10
    assert cache.stats.average_lifetime == 10


def test_occupancy_integral():
    cache = make_cache()
    cache.write(5, -1, 1, False, now=0)
    cache.write(6, -1, 1, False, now=10)   # 10 cycles at occupancy 1
    cache.finalize(20)                     # 10 cycles at occupancy 2
    assert cache.stats.average_occupancy(20) == pytest.approx(1.5)


def test_fill_write_counted_separately():
    cache = make_cache()
    cache.write(5, -1, 0, False, now=0, is_fill=True)
    assert cache.stats.writes_fill == 1
    assert cache.stats.writes_initial == 0


def test_rewrite_refreshes_in_place():
    cache = make_cache()
    cache.write(5, -1, 1, False, now=0)
    cache.write(5, -1, 4, False, now=3)
    assert cache.remaining_uses(5) == 4
    assert cache.occupancy == 1


def test_wrong_set_access_raises():
    cache = make_cache(entries=4, assoc=2, indexing=RoundRobinIndexing(2))
    cache.write(5, 0, 1, False, now=0)
    with pytest.raises(RegisterFileError):
        cache.lookup(5, 1, now=1)


def test_non_multiple_assoc_rejected():
    with pytest.raises(ValueError):
        make_cache(entries=5, assoc=2)


def test_index_policy_set_count_must_match():
    with pytest.raises(ValueError):
        RegisterCache(8, 2, UseBasedReplacement(), StandardIndexing(2))


def test_fully_associative_single_set():
    cache = make_cache(entries=4, assoc=0)
    assert cache.num_sets == 1
    assert cache.assoc == 4


def test_non_power_of_two_sets_supported():
    # Decoupled indexing makes 3-set caches legal (paper §4.1).
    cache = RegisterCache(6, 2, UseBasedReplacement(),
                          RoundRobinIndexing(3))
    for preg, set_index in ((1, 0), (2, 1), (3, 2)):
        cache.write(preg, set_index, 1, False, now=0)
    assert cache.occupancy == 3


def test_check_invariants_clean():
    cache = make_cache()
    for preg in range(8):
        cache.write(preg, -1, 1, False, now=preg)
    cache.check_invariants()


def test_miss_rate_property():
    cache = make_cache()
    cache.write(1, -1, 1, False, now=0)
    cache.lookup(1, -1, now=1)
    cache.lookup(99, -1, now=2)
    assert cache.stats.miss_rate == pytest.approx(0.5)
