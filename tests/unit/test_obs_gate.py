"""Unit tests for the regression gate (``repro.analysis.obs``)."""

import json

import pytest

from repro.analysis.obs import (
    Thresholds,
    compare_files,
    compare_metrics,
    extract_metrics,
    main,
    suite_summary,
)
from repro.core.stats import SimStats
from repro.obs.manifest import ManifestWriter


class TestClassification:
    def test_identical_metrics_pass(self):
        metrics = {"suite.ipc": 1.2, "bench.gcc.seconds": 3.0}
        regressions, compared = compare_metrics(metrics, dict(metrics))
        assert regressions == []
        assert compared == 2

    def test_quality_drop_beyond_tolerance_fails(self):
        regressions, _ = compare_metrics(
            {"suite.ipc": 1.00}, {"suite.ipc": 0.90},
        )
        assert len(regressions) == 1
        assert regressions[0].metric == "suite.ipc"
        assert "REGRESSION" in str(regressions[0])

    def test_quality_drop_within_tolerance_passes(self):
        regressions, _ = compare_metrics(
            {"suite.ipc": 1.00}, {"suite.ipc": 0.99},
        )
        assert regressions == []

    def test_quality_improvement_passes(self):
        regressions, _ = compare_metrics(
            {"dou.accuracy": 0.80}, {"dou.accuracy": 0.95},
        )
        assert regressions == []

    def test_miss_rate_rise_fails(self):
        regressions, _ = compare_metrics(
            {"bench.gcc.miss_rate": 0.10}, {"bench.gcc.miss_rate": 0.12},
        )
        assert len(regressions) == 1

    def test_miss_rate_noise_floor(self):
        # +0.001 absolute on a tiny base is under the 0.002 floor.
        regressions, _ = compare_metrics(
            {"bench.gcc.miss_rate": 0.0005}, {"bench.gcc.miss_rate": 0.0015},
        )
        assert regressions == []

    def test_time_needs_relative_and_absolute_growth(self):
        # +60% but only +0.03s absolute: under the floor, passes.
        regressions, _ = compare_metrics(
            {"bench.gcc.seconds": 0.05}, {"bench.gcc.seconds": 0.08},
        )
        assert regressions == []
        # +60% and +0.6s absolute: fails.
        regressions, _ = compare_metrics(
            {"bench.gcc.seconds": 1.0}, {"bench.gcc.seconds": 1.6},
        )
        assert len(regressions) == 1

    def test_error_count_must_never_increase(self):
        regressions, _ = compare_metrics({"errors": 0}, {"errors": 1})
        assert len(regressions) == 1
        regressions, _ = compare_metrics({"errors": 2}, {"errors": 0})
        assert regressions == []

    def test_only_shared_metrics_compared(self):
        regressions, compared = compare_metrics(
            {"suite.ipc": 1.0, "old.metric.seconds": 9.0},
            {"suite.ipc": 1.0, "new.metric.seconds": 0.1},
        )
        assert regressions == []
        assert compared == 1

    def test_contextual_metrics_not_gated(self):
        # Cache warmth fluctuates run to run; hit counts must not gate.
        regressions, _ = compare_metrics(
            {"cache_hits": 100, "jobs": 10}, {"cache_hits": 0, "jobs": 10},
        )
        assert regressions == []

    def test_custom_thresholds(self):
        thresholds = Thresholds(rel_quality=0.5)
        regressions, _ = compare_metrics(
            {"suite.ipc": 1.0}, {"suite.ipc": 0.6}, thresholds,
        )
        assert regressions == []


class TestExtraction:
    def test_flat_dict_keeps_numbers_only(self):
        metrics = extract_metrics(
            {"ipc": 1.5, "name": "gcc", "ok": True, "jobs": 3},
        )
        assert metrics == {"ipc": 1.5, "jobs": 3.0}

    def test_benchmark_json(self, tmp_path):
        data = {
            "benchmarks": [{
                "name": "test_bench_fig11",
                "stats": {"mean": 2.5},
                "extra_info": {"engine": {
                    "job_seconds": 1.25, "errors": 0,
                }},
            }],
        }
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(data))
        metrics = extract_metrics(path)
        assert metrics["bench.test_bench_fig11.seconds"] == 2.5
        assert metrics["bench.test_bench_fig11.job_seconds"] == 1.25
        assert metrics["bench.test_bench_fig11.errors"] == 0.0

    def test_experiment_json(self):
        data = {
            "experiment_id": "fig11",
            "headers": ["config", "ipc", "miss_rate"],
            "rows": [["16-entry", 1.2, 0.05], ["64-entry", 1.4, 0.01]],
            "meta": {"engine": {"errors": 0}},
        }
        metrics = extract_metrics(data)
        assert metrics["fig11.16-entry.ipc"] == 1.2
        assert metrics["fig11.64-entry.miss_rate"] == 0.01
        assert metrics["fig11.engine.errors"] == 0.0

    def test_manifest_jsonl(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        ManifestWriter(path).append_all([
            {"kind": "job", "run": "r", "job": "a", "status": "ok",
             "cached": False, "wall": 1.0},
            {"kind": "job", "run": "r", "job": "b", "status": "error",
             "cached": False, "wall": 2.0, "error": "boom"},
        ])
        metrics = extract_metrics(path)
        assert metrics["jobs"] == 2.0
        assert metrics["errors"] == 1.0
        assert metrics["wall_seconds"] == 3.0

    def test_non_dict_artifact_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            extract_metrics(path)

    def test_suite_summary_merges_and_flattens(self):
        results = {
            "gcc": SimStats(benchmark="gcc", scheme="use_based",
                            cycles=100, retired=150),
            "mcf": SimStats(benchmark="mcf", scheme="use_based",
                            cycles=100, retired=50),
        }
        summary = suite_summary(results)
        assert summary["suite.ipc"] == pytest.approx(1.0)
        assert summary["bench.gcc.ipc"] == pytest.approx(1.5)
        assert summary["bench.mcf.ipc"] == pytest.approx(0.5)


class TestCli:
    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_compare_clean_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"suite.ipc": 1.0})
        cur = self._write(tmp_path / "cur.json", {"suite.ipc": 1.0})
        assert main(["compare", base, cur]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_compare_injected_ipc_regression_exits_nonzero(
        self, tmp_path, capsys,
    ):
        base = self._write(tmp_path / "base.json", {"suite.ipc": 1.0})
        cur = self._write(tmp_path / "cur.json", {"suite.ipc": 0.8})
        assert main(["compare", base, cur]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION suite.ipc" in out

    def test_compare_missing_file_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"suite.ipc": 1.0})
        assert main(["compare", base, str(tmp_path / "nope.json")]) == 2
        assert "obs compare" in capsys.readouterr().err

    def test_compare_threshold_flags(self, tmp_path):
        base = self._write(tmp_path / "base.json", {"suite.ipc": 1.0})
        cur = self._write(tmp_path / "cur.json", {"suite.ipc": 0.8})
        assert main([
            "compare", base, cur, "--rel-tol-quality", "0.5", "--quiet",
        ]) == 0

    def test_summarize_then_compare_roundtrip(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.jsonl"
        ManifestWriter(manifest).append_all([
            {"kind": "job", "run": "r", "job": "a", "status": "ok",
             "cached": True, "wall": 0.0},
            {"kind": "job", "run": "r", "job": "b", "status": "ok",
             "cached": False, "wall": 1.0},
        ])
        summary_path = tmp_path / "summary.json"
        assert main([
            "summarize", str(manifest), "-o", str(summary_path),
        ]) == 0
        summary = json.loads(summary_path.read_text())
        assert summary["jobs"] == 2
        assert summary["cache_hits"] == 1
        # The written summary is itself a valid gate artifact — against
        # the live manifest it is identical, so the gate passes...
        assert main([
            "compare", str(summary_path), str(manifest), "--quiet",
        ]) == 0
        # ...and a new failure in the manifest trips the errors gate.
        ManifestWriter(manifest).append(
            {"kind": "job", "run": "r2", "job": "c", "status": "error",
             "cached": False, "wall": 0.5, "error": "Traceback..."},
        )
        assert main([
            "compare", str(summary_path), str(manifest), "--quiet",
        ]) == 1
