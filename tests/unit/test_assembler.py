"""Unit tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.instruction import LINK_REG
from repro.isa.opcodes import Opcode


def test_three_register_alu():
    program = assemble("add r3, r1, r2\nhalt")
    inst = program[0]
    assert inst.opcode is Opcode.ADD
    assert (inst.dest, inst.src1, inst.src2) == (3, 1, 2)


def test_immediate_alu():
    program = assemble("addi r3, r1, -42\nhalt")
    inst = program[0]
    assert inst.opcode is Opcode.ADDI
    assert inst.imm == -42


def test_hex_immediate():
    program = assemble("andi r3, r1, 0xff\nhalt")
    assert program[0].imm == 255


def test_load_syntax():
    program = assemble("lw r5, 8(r2)\nhalt")
    inst = program[0]
    assert inst.opcode is Opcode.LW
    assert inst.dest == 5 and inst.src1 == 2 and inst.imm == 8


def test_store_syntax():
    program = assemble("sw r5, -4(r2)\nhalt")
    inst = program[0]
    assert inst.opcode is Opcode.SW
    # Store: src1 = base, src2 = data.
    assert inst.src1 == 2 and inst.src2 == 5 and inst.imm == -4
    assert inst.dest is None


def test_branch_to_label():
    program = assemble("""
    loop:
        addi r1, r1, 1
        bne r1, r2, loop
        halt
    """)
    branch = program[1]
    assert branch.opcode is Opcode.BNE
    assert branch.imm == program.labels["loop"] == 0


def test_forward_label_reference():
    program = assemble("""
        beq r0, r0, end
        nop
    end:
        halt
    """)
    assert program[0].imm == 2


def test_label_on_same_line_as_instruction():
    program = assemble("start: addi r1, r0, 1\nhalt")
    assert program.labels["start"] == 0


def test_jal_implicit_link_register():
    program = assemble("""
        jal func
        halt
    func:
        ret
    """)
    assert program[0].dest == LINK_REG
    assert program[0].imm == 2


def test_ret_defaults_to_link_register():
    program = assemble("ret\nhalt")
    assert program[0].src1 == LINK_REG


def test_jalr_single_operand():
    program = assemble("jalr r9\nhalt")
    inst = program[0]
    assert inst.dest == LINK_REG and inst.src1 == 9


def test_label_as_addi_immediate():
    program = assemble("""
        addi r5, r0, target
        halt
    target:
        nop
        halt
    """)
    assert program[0].imm == program.labels["target"]


def test_data_section():
    program = assemble(".data 100: 1 2 0x10\nhalt")
    assert program.data == {100: 1, 101: 2, 102: 16}


def test_comments_ignored():
    program = assemble("# a comment\nadd r3, r1, r2  # trailing\nhalt")
    assert len(program) == 2


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError, match="duplicate"):
        assemble("x:\nnop\nx:\nhalt")


def test_undefined_label_rejected():
    with pytest.raises(AssemblyError, match="undefined"):
        assemble("beq r0, r0, nowhere\nhalt")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError, match="unknown mnemonic"):
        assemble("frobnicate r1, r2\nhalt")


def test_bad_register_rejected():
    with pytest.raises(AssemblyError):
        assemble("add r3, rx, r2\nhalt")


def test_bad_operand_count_rejected():
    with pytest.raises(AssemblyError):
        assemble("add r3, r1\nhalt")


def test_bad_memory_operand_rejected():
    with pytest.raises(AssemblyError, match="memory operand"):
        assemble("lw r3, r2\nhalt")


def test_error_reports_line_number():
    with pytest.raises(AssemblyError, match="line 3"):
        assemble("nop\nnop\nbogus\nhalt")


def test_register_out_of_range_rejected():
    with pytest.raises(AssemblyError):
        assemble("add r99, r1, r2\nhalt")


def test_mov_two_operands():
    program = assemble("mov r4, r7\nhalt")
    inst = program[0]
    assert inst.opcode is Opcode.MOV
    assert inst.dest == 4 and inst.src1 == 7


def test_lui():
    program = assemble("lui r4, 0x12\nhalt")
    assert program[0].imm == 0x12


def test_program_name_recorded():
    program = assemble("halt", name="bench")
    assert program.name == "bench"
