"""Canonical configuration keys (engine cache identity, sweep labels)."""

import json

import pytest

from repro.core.config import (
    MachineConfig,
    lru_config,
    monolithic_config,
    use_based_config,
)
from repro.isa.opcodes import OpClass


def test_equal_configs_built_differently_hash_identically():
    """Field order, dict insertion order, and int/float spelling must
    not change the key: the cache would otherwise resimulate (or worse,
    alias) identical machines."""
    counts_a = {
        OpClass.INT_ALU: 6,
        OpClass.BRANCH: 2,
        OpClass.INT_MUL: 2,
        OpClass.FP_ALU: 4,
        OpClass.FP_MUL: 2,
        OpClass.FP_DIV: 2,
        OpClass.LOAD: 4,
        OpClass.STORE: 2,
        OpClass.SYSTEM: 8,
    }
    # Same mapping, reversed insertion order.
    counts_b = dict(reversed(list(counts_a.items())))
    assert list(counts_a) != list(counts_b)

    a = MachineConfig(
        cache_entries=64,
        backing_read_latency=2,
        fu_counts=counts_a,
        wrongpath_use_noise=0.0,
    )
    b = MachineConfig(
        wrongpath_use_noise=0,  # int spelling of the same value
        fu_counts=counts_b,
        backing_read_latency=2.0,  # float spelling of the same value
        cache_entries=64,
    )
    assert a.config_key() == b.config_key()
    assert a.config_hash() == b.config_hash()


def test_distinct_configs_hash_differently():
    base = use_based_config()
    assert base.config_hash() != lru_config().config_hash()
    assert base.config_hash() != monolithic_config(3).config_hash()
    assert (
        base.config_hash()
        != use_based_config(cache_entries=32).config_hash()
    )


def test_bool_and_int_stay_distinct():
    """pin_at_max=True must not collide with a hypothetical 1-valued
    numeric field; bools keep their own identity in the key."""
    on = use_based_config(pin_at_max=True)
    off = use_based_config(pin_at_max=False)
    assert on.config_hash() != off.config_hash()
    key = dict(on.config_key())
    assert key["pin_at_max"] is True


def test_config_hash_shape_and_stability():
    config = use_based_config()
    digest = config.config_hash()
    assert len(digest) == 64
    int(digest, 16)  # valid hex
    assert digest == config.config_hash()  # deterministic


def test_config_key_is_json_serializable():
    payload = json.dumps(use_based_config().config_key(), sort_keys=True)
    assert "fu_counts" in payload


def test_unknown_field_types_rejected():
    from repro.core.config import _normalize

    with pytest.raises(Exception):
        _normalize(object())
