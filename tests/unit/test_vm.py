"""Unit tests for the functional VM."""

import pytest

from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.assembler import assemble
from repro.vm.machine import Machine, run_program


def run_asm(source, **kwargs):
    return Machine(assemble(source), **kwargs)


def final_regs(source):
    machine = run_asm(source)
    machine.run()
    return machine.regs


def test_addi_and_add():
    regs = final_regs("""
        addi r1, r0, 5
        addi r2, r0, 7
        add r3, r1, r2
        halt
    """)
    assert regs[3] == 12


def test_sub_negative_result():
    regs = final_regs("""
        addi r1, r0, 5
        addi r2, r0, 7
        sub r3, r1, r2
        halt
    """)
    assert regs[3] == -2


def test_logic_ops():
    regs = final_regs("""
        addi r1, r0, 12
        addi r2, r0, 10
        and r3, r1, r2
        or  r4, r1, r2
        xor r5, r1, r2
        halt
    """)
    assert regs[3] == 8 and regs[4] == 14 and regs[5] == 6


def test_shifts():
    regs = final_regs("""
        addi r1, r0, 1
        slli r2, r1, 4
        srli r3, r2, 2
        addi r4, r0, -8
        sra  r5, r4, r1
        halt
    """)
    assert regs[2] == 16 and regs[3] == 4 and regs[5] == -4


def test_slt_comparisons():
    regs = final_regs("""
        addi r1, r0, -1
        addi r2, r0, 1
        slt  r3, r1, r2
        sltu r4, r1, r2
        slti r5, r2, 100
        halt
    """)
    assert regs[3] == 1
    assert regs[4] == 0  # -1 unsigned is huge
    assert regs[5] == 1


def test_lui():
    regs = final_regs("lui r1, 2\nhalt")
    assert regs[1] == 2 << 16


def test_mul_div_rem():
    regs = final_regs("""
        addi r1, r0, -7
        addi r2, r0, 2
        mul r3, r1, r2
        div r4, r1, r2
        rem r5, r1, r2
        halt
    """)
    assert regs[3] == -14
    assert regs[4] == -3  # truncation toward zero
    assert regs[5] == -1


def test_div_by_zero_is_defined():
    regs = final_regs("""
        addi r1, r0, 5
        div r3, r1, r0
        rem r4, r1, r0
        halt
    """)
    assert regs[3] == -1
    assert regs[4] == 5


def test_load_store_roundtrip():
    regs = final_regs("""
        addi r1, r0, 1000
        addi r2, r0, 77
        sw r2, 4(r1)
        lw r3, 4(r1)
        halt
    """)
    assert regs[3] == 77


def test_load_from_data_section():
    regs = final_regs("""
        addi r1, r0, 100
        lw r2, 0(r1)
        lw r3, 1(r1)
        halt
    .data 100: 11 22
    """)
    assert regs[2] == 11 and regs[3] == 22


def test_uninitialized_memory_reads_zero():
    regs = final_regs("""
        addi r1, r0, 5000
        lw r2, 0(r1)
        halt
    """)
    assert regs[2] == 0


def test_lb_masks_to_byte():
    regs = final_regs("""
        addi r1, r0, 100
        lb r2, 0(r1)
        halt
    .data 100: 511
    """)
    assert regs[2] == 255


def test_branch_taken_and_not_taken():
    machine = run_asm("""
        addi r1, r0, 3
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        out r1
        halt
    """)
    trace = machine.run()
    branches = [r for r in trace if r.is_conditional]
    assert [b.taken for b in branches] == [True, True, False]
    assert machine.output == [0]


def test_branch_targets_recorded():
    machine = run_asm("""
        beq r0, r0, skip
        nop
    skip:
        halt
    """)
    trace = machine.run()
    assert trace[0].taken and trace[0].target == 2


def test_jal_and_ret():
    machine = run_asm("""
        jal func
        out r5
        halt
    func:
        addi r5, r0, 9
        ret
    """)
    machine.run()
    assert machine.output == [9]


def test_jalr_indirect():
    machine = run_asm("""
        addi r9, r0, target
        jalr r10, r9, 0
        halt
    target:
        out r9
        halt
    """)
    machine.run()
    assert len(machine.output) == 1


def test_zero_register_writes_discarded():
    regs = final_regs("""
        addi r0, r0, 99
        halt
    """)
    assert regs[0] == 0


def test_halt_stops_execution():
    machine = run_asm("halt\nnop")
    trace = machine.run()
    assert len(trace) == 1
    assert machine.halted


def test_step_after_halt_raises():
    machine = run_asm("halt")
    machine.run()
    with pytest.raises(ExecutionError):
        machine.step()


def test_pc_out_of_range_raises():
    machine = run_asm("beq r0, r0, 99\nnop\nhalt")
    # Branch target 99 is within imm range but outside the program.
    machine.program.labels.clear()
    with pytest.raises(ExecutionError, match="out of range"):
        machine.run()


def test_instruction_budget_enforced():
    machine = run_asm("""
    loop:
        beq r0, r0, loop
    """, max_instructions=100)
    with pytest.raises(ExecutionLimitExceeded):
        machine.run()


def test_trace_sequence_numbers_monotonic():
    trace = run_program(assemble("nop\nnop\nnop\nhalt"))
    assert [r.seq for r in trace] == [0, 1, 2, 3]


def test_mem_addr_recorded_for_loads_and_stores():
    trace = run_program(assemble("""
        addi r1, r0, 500
        sw r1, 2(r1)
        lw r2, 2(r1)
        halt
    """))
    store = trace[1]
    load = trace[2]
    assert store.mem_addr == 502
    assert load.mem_addr == 502


def test_64bit_wraparound():
    regs = final_regs("""
        addi r1, r0, 1
        slli r2, r1, 63
        add r3, r2, r2
        halt
    """)
    assert regs[3] == 0


# ----------------------------------------------------------------------
# DIV/REM at 64-bit extremes (regression: the float-division shortcut
# silently lost precision for operands beyond 2^53) — exercised on both
# execution paths.

BOTH_PATHS = pytest.mark.parametrize("predecode", [True, False],
                                     ids=["predecoded", "interpreted"])


def _divrem_regs(source, predecode):
    machine = Machine(assemble(source), predecode=predecode)
    machine.run()
    return machine.regs


@BOTH_PATHS
def test_div_rem_exact_beyond_float_precision(predecode):
    # r1 = 2^62 + 3: far beyond the 2^53 float mantissa, so the old
    # int(a / b) implementation truncated to the wrong quotient.
    regs = _divrem_regs("""
        addi r1, r0, 1
        slli r1, r1, 62
        addi r1, r1, 3
        addi r2, r0, 3
        div r3, r1, r2
        rem r4, r1, r2
        halt
    """, predecode)
    assert regs[3] == (2**62 + 3) // 3
    assert regs[4] == (2**62 + 3) % 3


@BOTH_PATHS
def test_div_rem_negative_truncates_toward_zero(predecode):
    # Truncating semantics, not Python floor semantics: the quotient
    # magnitude is |a| // |b| and the remainder takes the dividend sign.
    regs = _divrem_regs("""
        addi r1, r0, 1
        slli r1, r1, 62
        addi r1, r1, 5
        sub r1, r0, r1
        addi r2, r0, 3
        div r3, r1, r2
        rem r4, r1, r2
        halt
    """, predecode)
    a = -(2**62 + 5)
    assert regs[3] == -(abs(a) // 3)
    assert regs[4] == -(abs(a) % 3)


@BOTH_PATHS
def test_div_int_min_by_minus_one_wraps(predecode):
    # The one overflowing case: -2^63 / -1 wraps to -2^63 like two's
    # complement hardware; the matching remainder is zero.
    regs = _divrem_regs("""
        addi r1, r0, 1
        slli r1, r1, 63
        addi r2, r0, -1
        div r3, r1, r2
        rem r4, r1, r2
        halt
    """, predecode)
    assert regs[1] == -(2**63)
    assert regs[3] == -(2**63)
    assert regs[4] == 0


@BOTH_PATHS
def test_div_rem_by_zero_defined_at_extremes(predecode):
    regs = _divrem_regs("""
        addi r1, r0, 1
        slli r1, r1, 63
        div r3, r1, r0
        rem r4, r1, r0
        halt
    """, predecode)
    assert regs[3] == -1
    assert regs[4] == -(2**63)  # remainder-by-zero preserves the dividend


# ----------------------------------------------------------------------
# Predecoded fast path vs. reference interpreter.


def _full_state(machine):
    return (machine.regs, machine.memory, machine.output, machine.pc,
            machine.halted)


def assert_paths_identical(program, max_instructions=5_000_000):
    fast = Machine(program, max_instructions=max_instructions)
    slow = Machine(program, max_instructions=max_instructions,
                   predecode=False)
    fast_trace = fast.run()
    slow_trace = slow.run()
    assert len(fast_trace) == len(slow_trace)
    for a, b in zip(fast_trace, slow_trace):
        assert a.signature() == b.signature()
    assert _full_state(fast) == _full_state(slow)


def test_predecode_matches_interpreter_on_control_flow():
    # r1 stays free: the assembler's bare jal/ret use it as link register.
    assert_paths_identical(assemble("""
        addi r6, r0, 4
        addi r3, r0, 1000
    loop:
        sw r6, 0(r3)
        lb r2, 0(r3)
        jal helper
        addi r6, r6, -1
        bne r6, r0, loop
        out r2
        halt
    helper:
        addi r2, r2, 1
        ret
    """))


def test_predecode_matches_interpreter_on_full_suite():
    """Bit-identical traces on every kernel in the registry."""
    from repro.workloads.suite import benchmark_names, build_program

    for name in benchmark_names():
        assert_paths_identical(build_program(name, scale=0.05))


def test_predecode_budget_and_pc_guards_match():
    looping = assemble("loop:\n  beq r0, r0, loop")
    with pytest.raises(ExecutionLimitExceeded):
        Machine(looping, max_instructions=50).run()
    escaping = assemble("beq r0, r0, 99\nnop\nhalt")
    escaping.labels.clear()
    with pytest.raises(ExecutionError, match="out of range"):
        Machine(escaping).run()
