"""Unit tests for the :mod:`repro.obs.metrics` registry."""

import pytest

from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    get_metrics,
    percentile,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_holds_last_value(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(-1)
        assert gauge.value == -1

    def test_histogram_summary(self):
        hist = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == pytest.approx(4.0)
        # Nearest-rank with banker's rounding: round(0.5 * 3) == 2.
        assert summary["p50"] == pytest.approx(3.0)
        assert summary["p95"] == pytest.approx(4.0)

    def test_histogram_empty_summary_is_zeros(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p95"] == 0.0

    def test_histogram_caps_samples_but_keeps_totals(self):
        hist = Histogram()
        n = HISTOGRAM_SAMPLE_CAP + 100
        for value in range(n):
            hist.observe(float(value))
        assert hist.count == n
        assert hist.max == float(n - 1)
        assert len(hist._samples) == HISTOGRAM_SAMPLE_CAP

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.95) == 7.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 3.0
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0


class TestRegistry:
    def test_enabled_registry_returns_live_instruments(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("jobs").inc(2)
        registry.gauge("ipc").set(1.25)
        registry.histogram("wall").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["jobs"] == 2
        assert snapshot["ipc"] == 1.25
        assert snapshot["wall"]["count"] == 1

    def test_same_name_and_labels_share_instrument(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("hits", bench="gcc").inc()
        registry.counter("hits", bench="gcc").inc()
        registry.counter("hits", bench="mcf").inc()
        snapshot = registry.snapshot()
        assert snapshot["hits{bench=gcc}"] == 2
        assert snapshot["hits{bench=mcf}"] == 1

    def test_label_keys_are_sorted_in_flat_key(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("x", b="2", a="1").inc()
        assert "x{a=1,b=2}" in registry.snapshot()

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("jobs") is NULL_COUNTER
        assert registry.gauge("ipc") is NULL_GAUGE
        assert registry.histogram("wall") is NULL_HISTOGRAM
        registry.counter("jobs").inc(100)
        registry.publish("sim", {"cycles": 5})
        assert registry.snapshot() == {}

    def test_publish_folds_numeric_dict(self):
        registry = MetricsRegistry(enabled=True)
        registry.publish(
            "sim",
            {"cycles": 100, "ipc": 1.5, "benchmark": "gcc", "flag": True},
            bench="gcc",
        )
        snapshot = registry.snapshot()
        assert snapshot["sim.cycles{bench=gcc}"] == 100
        assert snapshot["sim.ipc{bench=gcc}"] == 1.5
        # Strings and bools are not metrics.
        assert not any("benchmark" in key for key in snapshot)
        assert not any("flag" in key for key in snapshot)

    def test_publish_accumulates_across_runs(self):
        registry = MetricsRegistry(enabled=True)
        registry.publish("sim", {"cycles": 100})
        registry.publish("sim", {"cycles": 50})
        assert registry.snapshot()["sim.cycles"] == 150

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("jobs").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestModuleLevel:
    def test_configure_metrics_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "0")
        assert configure_metrics().enabled is False
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert configure_metrics().enabled is True
        monkeypatch.delenv("REPRO_METRICS")
        assert configure_metrics().enabled is True  # default on

    def test_get_metrics_returns_registry(self):
        registry = configure_metrics()
        assert get_metrics() is registry
