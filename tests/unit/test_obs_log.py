"""Unit tests for logging setup and the rate-limited progress reporter."""

import io
import logging

from repro.obs.log import ProgressReporter, get_logger, setup_logging


class TestLoggerNamespace:
    def test_get_logger_prefixes_repro(self):
        assert get_logger("engine").name == "repro.engine"

    def test_get_logger_keeps_existing_prefix(self):
        assert get_logger("repro.engine").name == "repro.engine"


class TestSetup:
    def test_level_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        root = setup_logging(stream=io.StringIO(), force=True)
        assert root.level == logging.DEBUG

    def test_explicit_level_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        root = setup_logging(level="ERROR", stream=io.StringIO(), force=True)
        assert root.level == logging.ERROR

    def test_unknown_level_falls_back_to_warning(self):
        root = setup_logging(level="NOPE", stream=io.StringIO(), force=True)
        assert root.level == logging.WARNING

    def test_idempotent_without_force(self):
        setup_logging(stream=io.StringIO(), force=True)
        root = setup_logging(stream=io.StringIO())
        assert len(root.handlers) == 1


class TestProgressReporter:
    def _reporter(self, total, interval=0.0):
        stream = io.StringIO()
        setup_logging(level="INFO", stream=stream, force=True)
        return ProgressReporter(total, interval=interval), stream

    def test_final_update_always_logs(self):
        reporter, stream = self._reporter(total=2, interval=9999.0)
        reporter.update()
        reporter.update()
        text = stream.getvalue()
        assert "2/2 jobs (100%)" in text

    def test_rate_limit_suppresses_intermediate_lines(self):
        reporter, stream = self._reporter(total=100, interval=9999.0)
        for _ in range(99):
            reporter.update()
        # First update emits (last_emit starts at 0), the rest are
        # suppressed by the huge interval.
        lines = [l for l in stream.getvalue().splitlines() if "jobs" in l]
        assert len(lines) == 1

    def test_context_kwargs_appear_in_line(self):
        reporter, stream = self._reporter(total=1)
        reporter.update(hit_rate="50%")
        assert "hit_rate 50%" in stream.getvalue()

    def test_explicit_done_value(self):
        reporter, stream = self._reporter(total=10)
        reporter.update(done=10)
        assert "10/10 jobs (100%)" in stream.getvalue()
