"""Unit tests for the memory hierarchy."""

import pytest

from repro.memory.cache import MemoryCache
from repro.memory.hierarchy import (
    L1_LINE_WORDS,
    HierarchyConfig,
    MemoryHierarchy,
)
from repro.memory.store_buffer import StoreBuffer


# ----------------------------------------------------------------------
# MemoryCache


def test_cache_miss_then_hit():
    cache = MemoryCache(4, 2)
    assert not cache.access(10)
    assert cache.access(10)
    assert cache.hits == 1 and cache.misses == 1


def test_cache_lru_eviction():
    cache = MemoryCache(2, 2)  # one set, two ways
    cache.access(0)
    cache.access(2)
    cache.access(0)      # refresh 0
    cache.access(4)      # evicts 2 (LRU)
    assert cache.probe(0)
    assert not cache.probe(2)


def test_cache_probe_does_not_fill():
    cache = MemoryCache(4, 2)
    assert not cache.probe(7)
    assert not cache.probe(7)
    assert cache.misses == 0  # probe is side-effect free


def test_cache_fill_returns_victim():
    cache = MemoryCache(2, 2)
    assert cache.fill(1) is None
    assert cache.fill(3) is None
    assert cache.fill(5) == 1


def test_cache_sets_isolated():
    cache = MemoryCache(4, 1)  # 4 direct-mapped sets
    cache.access(0)
    cache.access(1)
    assert cache.probe(0) and cache.probe(1)


def test_cache_miss_rate():
    cache = MemoryCache(4, 2)
    cache.access(1)
    cache.access(1)
    assert cache.miss_rate == pytest.approx(0.5)


def test_cache_rejects_bad_geometry():
    with pytest.raises(ValueError):
        MemoryCache(5, 2)
    with pytest.raises(ValueError):
        MemoryCache(0, 1)


# ----------------------------------------------------------------------
# StoreBuffer


def test_store_buffer_insert_and_forward():
    buffer = StoreBuffer(capacity=2)
    assert buffer.insert(100, now=0)
    assert buffer.forward(100)
    assert not buffer.forward(200)


def test_store_buffer_coalesces():
    buffer = StoreBuffer(capacity=1)
    buffer.insert(100, now=0)
    assert buffer.insert(100, now=1)  # coalesces, still succeeds
    assert buffer.coalesced == 1
    assert len(buffer) == 1


def test_store_buffer_full_rejects():
    buffer = StoreBuffer(capacity=1)
    buffer.insert(100, now=0)
    assert not buffer.insert(200, now=0)


def test_store_buffer_drains_over_time():
    buffer = StoreBuffer(capacity=2, drain_interval=4)
    buffer.insert(100, now=0)
    buffer.insert(200, now=1)
    drained = buffer.drain(now=10)
    assert 100 in drained
    assert not buffer.forward(100)


# ----------------------------------------------------------------------
# MemoryHierarchy


def test_l1_hit_costs_nothing_extra():
    hierarchy = MemoryHierarchy(HierarchyConfig(prefetch=False))
    first = hierarchy.load(100, pc=1, now=0)
    second = hierarchy.load(100, pc=1, now=1)
    assert first > 0       # cold miss
    assert second == 0     # L1 hit


def test_l2_hit_latency():
    config = HierarchyConfig(l1d_lines=2, l1d_assoc=1, prefetch=False)
    hierarchy = MemoryHierarchy(config)
    hierarchy.load(0, pc=1, now=0)            # memory miss, fills L1+L2
    # Evict line 0 from the tiny L1 by touching a conflicting line.
    hierarchy.load(2 * L1_LINE_WORDS, pc=2, now=1)
    extra = hierarchy.load(0, pc=3, now=2)
    assert extra == config.l2_latency


def test_memory_latency_on_cold_access():
    config = HierarchyConfig(prefetch=False)
    hierarchy = MemoryHierarchy(config)
    assert hierarchy.load(0, pc=1, now=0) == config.memory_latency


def test_store_buffer_forwarding_path():
    hierarchy = MemoryHierarchy(HierarchyConfig(prefetch=False))
    hierarchy.store(500, now=0)
    assert hierarchy.load(500, pc=1, now=1) == 0


def test_stride_prefetcher_hides_next_line():
    config = HierarchyConfig(prefetch=True)
    hierarchy = MemoryHierarchy(config)
    pc = 7
    # Walk sequentially; after training, line-crossing loads hit.
    extras = [
        hierarchy.load(addr, pc=pc, now=addr)
        for addr in range(0, 8 * L1_LINE_WORDS)
    ]
    cold = extras[0]
    later_line_boundaries = extras[4 * L1_LINE_WORDS:]
    assert cold > 0
    assert sum(later_line_boundaries) == 0  # prefetched ahead
    assert hierarchy.prefetches > 0


def test_ifetch_latencies():
    config = HierarchyConfig(prefetch=False)
    hierarchy = MemoryHierarchy(config)
    assert hierarchy.ifetch(5) == config.memory_latency
    assert hierarchy.ifetch(5) == 0  # now in L1I


def test_store_full_buffer_backpressure():
    config = HierarchyConfig(store_buffer_entries=1, prefetch=False)
    hierarchy = MemoryHierarchy(config)
    assert hierarchy.store(1, now=0)
    assert not hierarchy.store(5000, now=0)  # buffer full, no drain yet
