"""SimStats travels: compact dict form, JSON, and cheap pickling."""

import json
import pickle

from repro.core.config import monolithic_config, use_based_config
from repro.core.pipeline import Pipeline
from repro.core.stats import (
    LifetimeRecord,
    SimStats,
    pack_lifetimes,
    unpack_lifetimes,
)
from repro.workloads.suite import load_trace


def _small_stats(config=None):
    trace = load_trace("compress", scale=0.05)
    return Pipeline(trace, config or use_based_config()).run()


def test_lifetime_record_tuple_round_trip():
    record = LifetimeRecord(3, 7, 20, 31)
    assert LifetimeRecord.from_tuple(record.to_tuple()) == record


def test_pack_unpack_lifetimes():
    records = [LifetimeRecord(0, 1, 2, 3), LifetimeRecord(10, 12, 30, 44)]
    flat = pack_lifetimes(records)
    assert flat == [0, 1, 2, 3, 10, 12, 30, 44]
    assert unpack_lifetimes(flat) == records
    assert unpack_lifetimes([]) == []


def test_to_dict_round_trips_through_json():
    stats = _small_stats()
    data = json.loads(json.dumps(stats.to_dict()))
    rebuilt = SimStats.from_dict(data)
    assert rebuilt.to_dict() == stats.to_dict()
    assert rebuilt.cycles == stats.cycles
    assert rebuilt.lifetimes == stats.lifetimes
    assert rebuilt.cache is not None
    assert rebuilt.cache.misses == stats.cache.misses
    assert rebuilt.ipc == stats.ipc


def test_to_dict_round_trip_without_cache():
    stats = _small_stats(monolithic_config(3))
    assert stats.cache is None
    rebuilt = SimStats.from_dict(stats.to_dict())
    assert rebuilt.cache is None
    assert rebuilt.to_dict() == stats.to_dict()


def test_to_dict_can_drop_lifetimes():
    stats = _small_stats()
    assert stats.lifetimes  # the run produced some
    slim = stats.to_dict(include_lifetimes=False)
    assert slim["lifetimes"] == []
    rebuilt = SimStats.from_dict(slim)
    assert rebuilt.lifetimes == []
    assert rebuilt.retired == stats.retired


def test_pickle_round_trip_is_exact_and_compact():
    stats = _small_stats()
    payload = pickle.dumps(stats)
    rebuilt = pickle.loads(payload)
    assert rebuilt.to_dict() == stats.to_dict()
    # The reduce hook flattens the lifetime log: the pickle must not
    # grow a per-record object graph.
    assert b"LifetimeRecord" not in payload
