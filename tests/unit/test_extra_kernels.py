"""Unit tests for the extra (non-default-suite) kernels."""

import random

from repro.core.config import use_based_config
from repro.core.pipeline import Pipeline
from repro.isa.assembler import assemble
from repro.vm.machine import Machine
from repro.workloads.kernels import KERNELS, tree_walk
from repro.workloads.suite import DEFAULT_SUITE, load_trace


def test_extra_kernels_not_in_default_suite():
    assert "bitpack" not in DEFAULT_SUITE
    assert "tree_walk" not in DEFAULT_SUITE
    assert set(DEFAULT_SUITE) <= set(KERNELS)


def test_bitpack_runs_and_is_deterministic():
    a = Machine(assemble(KERNELS["bitpack"](0.15), name="bitpack"))
    b = Machine(assemble(KERNELS["bitpack"](0.15), name="bitpack"))
    a.run()
    b.run()
    assert a.output == b.output
    assert a.halted


def test_tree_walk_hit_count_matches_reference():
    """The BST lookup hit count equals a Python recount of the probes."""
    seed = 41
    source = tree_walk(0.15, seed)
    program = assemble(source, name="tree_walk")
    machine = Machine(program)
    machine.run()

    # Reconstruct the key set and probes exactly as the builder does.
    rng = random.Random(seed)
    scale = 0.15
    num_keys = max(64, int(1200 * scale))
    lookups = max(64, int(500 * scale))
    lookups -= lookups % 2
    keys = rng.sample(range(1, 1 << 20), num_keys)
    # Consume the same RNG stream the builder uses for the tree build
    # (build() itself draws nothing), then regenerate the probes.
    probes = [
        rng.choice(keys) if rng.random() < 0.5
        else rng.randrange(1, 1 << 20)
        for _ in range(lookups)
    ]
    key_set = set(keys)
    expected = sum(1 for probe in probes if probe in key_set)
    assert machine.output[0] == expected


def test_tree_walk_simulates_under_cache():
    trace = load_trace("tree_walk", scale=0.12)
    stats = Pipeline(trace, use_based_config()).run()
    assert stats.retired == len(trace)
    assert stats.cache.reads > 0


def test_bitpack_simulates_under_cache():
    trace = load_trace("bitpack", scale=0.12)
    stats = Pipeline(trace, use_based_config()).run()
    assert stats.retired == len(trace)
