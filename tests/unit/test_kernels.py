"""Unit tests for the SPECint-like kernels.

Each kernel is checked for: assembling cleanly, running to completion,
producing deterministic output, and exhibiting the register-use
character it was designed for.
"""

import pytest

from repro.isa.assembler import assemble
from repro.vm.machine import Machine
from repro.workloads.kernels import KERNELS
from repro.workloads.suite import build_program, load_trace

SCALE = 0.15


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_assembles(name):
    program = build_program(name, scale=SCALE)
    assert len(program) > 10
    program.validate()


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_runs_to_halt(name):
    machine = Machine(build_program(name, scale=SCALE))
    machine.run()
    assert machine.halted
    assert machine.output, f"{name} produced no output"


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_deterministic(name):
    a = Machine(build_program(name, scale=SCALE))
    b = Machine(build_program(name, scale=SCALE))
    a.run()
    b.run()
    assert a.output == b.output


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_scales_dynamic_length(name):
    short = load_trace(name, scale=0.12)
    long = load_trace(name, scale=0.35)
    assert len(long) > len(short)


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_low_degree_values_dominate(name):
    """Degree-of-use distributions match the paper's premise: low-degree
    values dominate (the modal nonzero degree is 1 or 2)."""
    trace = load_trace(name, scale=SCALE)
    hist = trace.degree_of_use_histogram()
    nonzero = {k: v for k, v in hist.items() if k > 0}
    assert max(nonzero, key=nonzero.get) in (1, 2)


def test_suite_aggregate_mostly_single_use():
    """Across the whole suite, degree 1 is the most common (paper §3.3:
    'the majority of values are used once')."""
    aggregate: dict[int, int] = {}
    for name in KERNELS:
        for degree, count in load_trace(
            name, scale=SCALE
        ).degree_of_use_histogram().items():
            aggregate[degree] = aggregate.get(degree, 0) + count
    nonzero = {k: v for k, v in aggregate.items() if k > 0}
    assert max(nonzero, key=nonzero.get) == 1


def test_kernels_have_high_use_values_somewhere():
    """At least some kernels produce the long-lived high-use values the
    pinning mechanism targets (degree > 7)."""
    found = False
    for name in KERNELS:
        hist = load_trace(name, scale=SCALE).degree_of_use_histogram()
        if any(k > 7 for k in hist):
            found = True
            break
    assert found


def test_compress_counts_runs():
    """The compress kernel's output equals a Python recount of runs."""
    source = KERNELS["compress"](SCALE)
    program = assemble(source, name="compress")
    machine = Machine(program)
    machine.run()
    # Reconstruct the input buffer from the data section.
    base = 0x1000
    data = []
    addr = base
    while addr in program.data:
        data.append(program.data[addr])
        addr += 1
    # The kernel scans len(data) rounded down to a multiple of 8 bytes.
    scanned = len(data) - len(data) % 8
    runs = sum(
        1 for i in range(1, scanned) if data[i] != data[i - 1]
    )
    assert machine.output[0] == runs


def test_sort_checksum_matches_python_sort():
    source = KERNELS["sort"](SCALE)
    program = assemble(source, name="sort")
    base = 0x1000
    values = []
    addr = base
    while addr in program.data:
        values.append(program.data[addr])
        addr += 1
    machine = Machine(program)
    machine.run()
    expected = sum(v * i for i, v in enumerate(sorted(values)))
    assert machine.output[0] == expected


def test_strmatch_counts_matches():
    source = KERNELS["strmatch"](SCALE)
    program = assemble(source, name="strmatch")
    machine = Machine(program)
    machine.run()
    text_base, pat_base = 0x1000, 0x9000
    text = []
    addr = text_base
    while addr in program.data:
        text.append(program.data[addr])
        addr += 1
    pattern = [program.data[pat_base + i] for i in range(4)]
    limit = len(text) - 4
    limit -= limit % 4
    expected = sum(
        1 for i in range(limit) if text[i:i + 4] == pattern
    )
    assert machine.output[0] == expected


def test_pointer_chase_visits_expected_count():
    """The chase output is the sum of values along three chains; verify
    against a Python walk of the same node graph."""
    source = KERNELS["pointer_chase"](SCALE)
    program = assemble(source, name="pointer_chase")
    machine = Machine(program)
    machine.run()
    # Replicate: three heads are the first three addi immediates.
    heads = [program[i].imm for i in range(3)]
    iterations = program[6].imm
    total = 0
    for head in heads:
        ptr = head
        for _ in range(iterations):
            ptr = program.data.get(ptr, 0)
            total += ptr
    # Sum is modulo 2^64 signed in the VM; small enough to compare.
    assert machine.output[0] == total


def test_unknown_kernel_rejected():
    from repro.errors import ReproError
    with pytest.raises(ReproError, match="unknown benchmark"):
        build_program("nonesuch")
