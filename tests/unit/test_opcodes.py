"""Unit tests for the opcode tables."""

import pytest

from repro.isa.opcodes import (
    CLASS_LATENCY,
    MNEMONICS,
    OP_CLASS,
    SPECS,
    OpClass,
    Opcode,
    spec_for,
)


def test_every_opcode_has_a_class():
    for op in Opcode:
        assert op in OP_CLASS


def test_every_opcode_has_a_spec():
    for op in Opcode:
        assert op in SPECS
        assert SPECS[op].opcode is op


def test_every_class_has_a_latency():
    for cls in OpClass:
        assert CLASS_LATENCY[cls] >= 1


def test_mnemonics_roundtrip():
    for op in Opcode:
        assert MNEMONICS[op.value] is op


def test_table1_latencies():
    """Execution latencies match Table 1 of the paper."""
    assert CLASS_LATENCY[OpClass.INT_ALU] == 1
    assert CLASS_LATENCY[OpClass.BRANCH] == 2
    assert CLASS_LATENCY[OpClass.INT_MUL] == 4
    assert CLASS_LATENCY[OpClass.FP_ALU] == 3
    assert CLASS_LATENCY[OpClass.FP_MUL] == 4
    assert CLASS_LATENCY[OpClass.FP_DIV] == 18
    assert CLASS_LATENCY[OpClass.LOAD] == 4


def test_spec_latency_property():
    assert spec_for(Opcode.MUL).latency == 4
    assert spec_for(Opcode.ADD).latency == 1


def test_branch_flags():
    assert spec_for(Opcode.BEQ).is_branch
    assert spec_for(Opcode.BEQ).is_conditional
    assert not spec_for(Opcode.JAL).is_conditional
    assert spec_for(Opcode.JAL).is_branch
    assert spec_for(Opcode.JALR).is_indirect
    assert spec_for(Opcode.RET).is_indirect
    assert not spec_for(Opcode.ADD).is_branch


def test_memory_flags():
    assert spec_for(Opcode.LW).is_load
    assert spec_for(Opcode.SW).is_store
    assert not spec_for(Opcode.LW).is_store
    assert not spec_for(Opcode.SW).is_load
    assert not spec_for(Opcode.SW).has_dest


def test_store_reads_two_sources():
    assert spec_for(Opcode.SW).num_sources == 2


def test_conditional_branches_read_two_sources():
    for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        spec = spec_for(op)
        assert spec.num_sources == 2
        assert not spec.has_dest


@pytest.mark.parametrize("op", [Opcode.ADD, Opcode.XOR, Opcode.MUL])
def test_three_reg_alu_shape(op):
    spec = spec_for(op)
    assert spec.num_sources == 2
    assert spec.has_dest
    assert not spec.has_imm


@pytest.mark.parametrize("op", [Opcode.ADDI, Opcode.SLLI, Opcode.ANDI])
def test_imm_alu_shape(op):
    spec = spec_for(op)
    assert spec.num_sources == 1
    assert spec.has_dest
    assert spec.has_imm


def test_system_ops():
    assert spec_for(Opcode.NOP).num_sources == 0
    assert spec_for(Opcode.HALT).num_sources == 0
    assert spec_for(Opcode.OUT).num_sources == 1
    assert not spec_for(Opcode.OUT).has_dest
