"""Unit tests for the physical, backing, and two-level register files."""

import pytest

from repro.errors import RegisterFileError
from repro.regfile.backing import BackingFile
from repro.regfile.physical import PhysicalRegisterFile
from repro.regfile.two_level import TwoLevelRegisterFile


# ----------------------------------------------------------------------
# PhysicalRegisterFile


def test_physical_defaults_match_paper():
    rf = PhysicalRegisterFile()
    assert rf.num_registers == 512
    assert rf.read_latency == 3
    assert rf.write_latency == 3
    assert rf.bypass_stages == 2


def test_physical_write_latency_defaults_to_read():
    rf = PhysicalRegisterFile(read_latency=2)
    assert rf.write_latency == 2


def test_physical_storage_ready_formula():
    rf = PhysicalRegisterFile(read_latency=3, write_latency=3)
    # With R == W, a consumer may issue from the producer's completion.
    assert rf.storage_ready_time(producer_complete=10) == 10


def test_physical_bandwidth_accounting():
    rf = PhysicalRegisterFile()
    rf.record_read(2)
    rf.record_write()
    assert rf.reads == 2 and rf.writes == 1


def test_physical_rejects_zero_latency():
    with pytest.raises(ValueError):
        PhysicalRegisterFile(read_latency=0)


# ----------------------------------------------------------------------
# BackingFile


def test_backing_read_latency():
    backing = BackingFile(read_latency=2)
    available = backing.schedule_read(earliest=10, value_written_at=0)
    assert available == 12


def test_backing_waits_for_write():
    backing = BackingFile(read_latency=2)
    available = backing.schedule_read(earliest=5, value_written_at=9)
    assert available == 11  # start pushed to the write-complete cycle


def test_backing_single_port_serializes():
    backing = BackingFile(read_latency=2, read_ports=1)
    first = backing.schedule_read(10, 0)
    second = backing.schedule_read(10, 0)
    assert second == first + 1  # second read waits one cycle for the port


def test_backing_two_ports_share_cycle():
    backing = BackingFile(read_latency=2, read_ports=2)
    first = backing.schedule_read(10, 0)
    second = backing.schedule_read(10, 0)
    third = backing.schedule_read(10, 0)
    assert first == second
    assert third == first + 1


def test_backing_counts_traffic():
    backing = BackingFile()
    backing.record_write()
    backing.schedule_read(0, 0)
    assert backing.writes == 1 and backing.reads == 1


def test_backing_rejects_bad_params():
    with pytest.raises(ValueError):
        BackingFile(read_latency=0)
    with pytest.raises(ValueError):
        BackingFile(read_ports=0)


# ----------------------------------------------------------------------
# TwoLevelRegisterFile


def test_two_level_allocate_and_free():
    tl = TwoLevelRegisterFile(4)
    tl.allocate(1)
    tl.allocate(2)
    assert tl.free_slots == 2
    tl.free(1)
    assert tl.free_slots == 3


def test_two_level_exhaustion():
    tl = TwoLevelRegisterFile(1)
    tl.allocate(1)
    assert not tl.can_allocate()
    with pytest.raises(RegisterFileError):
        tl.allocate(2)


def test_two_level_double_allocate_rejected():
    tl = TwoLevelRegisterFile(4)
    tl.allocate(1)
    with pytest.raises(RegisterFileError):
        tl.allocate(1)


def test_move_requires_reassignment_and_no_pending():
    tl = TwoLevelRegisterFile(4, free_threshold=10)
    tl.allocate(1)
    tl.add_pending_consumer(1)
    tl.reassigned(1, now=0)
    assert tl.tick(0) == 0  # pending consumer blocks the move
    tl.consumer_executed(1, now=1)
    assert tl.tick(1) == 1
    assert tl.free_slots == 4


def test_move_requires_reassignment():
    tl = TwoLevelRegisterFile(4, free_threshold=10)
    tl.allocate(1)
    assert tl.tick(0) == 0  # not reassigned -> architecturally current


def test_move_engine_respects_threshold():
    tl = TwoLevelRegisterFile(8, free_threshold=2)
    for vid in range(3):
        tl.allocate(vid)
        tl.reassigned(vid, now=0)
    # free_slots = 5 >= threshold 2: no moves performed.
    assert tl.tick(0) == 0


def test_move_bandwidth_limit():
    tl = TwoLevelRegisterFile(8, free_threshold=20, move_bandwidth=2)
    for vid in range(6):
        tl.allocate(vid)
        tl.reassigned(vid, now=0)
    assert tl.tick(0) == 2
    assert tl.tick(1) == 2


def test_free_after_move_does_not_double_credit():
    tl = TwoLevelRegisterFile(4, free_threshold=10)
    tl.allocate(1)
    tl.reassigned(1, now=0)
    tl.tick(0)
    slots_after_move = tl.free_slots
    tl.free(1)
    assert tl.free_slots == slots_after_move


def test_recovery_restores_recent_moves():
    tl = TwoLevelRegisterFile(8, free_threshold=10, recovery_window=50,
                              move_bandwidth=1, l2_latency=4)
    for vid in range(4):
        tl.allocate(vid)
        tl.reassigned(vid, now=0)
    for cycle in range(4):
        tl.tick(cycle)
    assert tl.moves == 4
    extra = tl.on_mispredict(resolve_cycle=5, refill_cycles=2)
    # Transfer = l2_latency + ceil(4/1) = 8 > refill 2 -> 6 extra stalls.
    assert extra == 6
    assert tl.restores == 4
    # Restored values occupy L1 slots again.
    assert tl.l1_occupancy == 4


def test_recovery_ignores_old_moves():
    tl = TwoLevelRegisterFile(8, free_threshold=10, recovery_window=4)
    tl.allocate(1)
    tl.reassigned(1, now=0)
    tl.tick(0)
    assert tl.on_mispredict(resolve_cycle=100, refill_cycles=11) == 0
    assert tl.restores == 0


def test_rename_stall_accounting():
    tl = TwoLevelRegisterFile(4)
    tl.note_rename_stall()
    tl.note_rename_stall(3)
    assert tl.rename_stall_cycles == 4
