"""Property-based tests for the VM and trace layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import use_based_config
from repro.core.pipeline import Pipeline
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.vm.machine import Machine

ALU_OPS = [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
           Opcode.SLT, Opcode.MUL]


@st.composite
def straight_line_programs(draw):
    """Random straight-line ALU/memory programs ending in HALT."""
    length = draw(st.integers(min_value=1, max_value=60))
    instructions = []
    for _ in range(length):
        kind = draw(st.integers(min_value=0, max_value=3))
        dest = draw(st.integers(min_value=1, max_value=15))
        src1 = draw(st.integers(min_value=0, max_value=15))
        src2 = draw(st.integers(min_value=0, max_value=15))
        imm = draw(st.integers(min_value=-64, max_value=64))
        if kind == 0:
            op = draw(st.sampled_from(ALU_OPS))
            instructions.append(
                Instruction(op, dest=dest, src1=src1, src2=src2)
            )
        elif kind == 1:
            instructions.append(
                Instruction(Opcode.ADDI, dest=dest, src1=src1, imm=imm)
            )
        elif kind == 2:
            instructions.append(
                Instruction(Opcode.LW, dest=dest, src1=src1,
                            imm=abs(imm) + 1000)
            )
        else:
            instructions.append(
                Instruction(Opcode.SW, src1=src1, src2=src2,
                            imm=abs(imm) + 1000)
            )
    instructions.append(Instruction(Opcode.HALT))
    return Program(instructions=instructions, name="random")


@settings(max_examples=60, deadline=None)
@given(program=straight_line_programs())
def test_predecoded_path_matches_interpreter(program):
    """The fast dispatch path commits exactly what the reference
    interpreter commits, record for record and state for state."""
    fast = Machine(program, max_instructions=1_000)
    slow = Machine(program, max_instructions=1_000, predecode=False)
    fast_trace = fast.run()
    slow_trace = slow.run()
    assert [r.signature() for r in fast_trace] == [
        r.signature() for r in slow_trace
    ]
    assert fast.regs == slow.regs
    assert fast.memory == slow.memory


@settings(max_examples=60, deadline=None)
@given(program=straight_line_programs())
def test_vm_executes_random_programs(program):
    machine = Machine(program, max_instructions=1_000)
    trace = machine.run()
    assert len(trace) == len(program.instructions)
    assert machine.halted
    # Zero register never corrupted.
    assert machine.regs[0] == 0


@settings(max_examples=30, deadline=None)
@given(program=straight_line_programs())
def test_trace_dataflow_is_consistent(program):
    trace = Machine(program).run()
    for record in trace:
        for src in record.sources:
            assert 0 < src < 64


@settings(max_examples=20, deadline=None)
@given(program=straight_line_programs())
def test_pipeline_retires_random_traces(program):
    """The timing model completes any well-formed straight-line trace
    and respects basic accounting identities."""
    trace = Machine(program).run()
    config = use_based_config(model_memory=False, model_icache=False)
    stats = Pipeline(trace, config).run()
    assert stats.retired == len(trace)
    assert stats.cycles >= (len(trace) - 1) // 8
    cache = stats.cache
    assert cache.hits + cache.miss_count == cache.reads


@settings(max_examples=20, deadline=None)
@given(program=straight_line_programs())
def test_pipeline_deterministic(program):
    trace = Machine(program).run()
    config = use_based_config(model_memory=False)
    a = Pipeline(trace, config).run()
    b = Pipeline(trace, config).run()
    assert a.cycles == b.cycles
    assert a.cache.miss_count == b.cache.miss_count
