"""Property-based tests for the freelist."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rename.freelist import FreeList


@settings(max_examples=60, deadline=None)
@given(
    actions=st.lists(st.booleans(), min_size=1, max_size=300),
    policy=st.sampled_from(["lifo", "fifo"]),
    size=st.integers(min_value=1, max_value=32),
)
def test_freelist_conservation(actions, policy, size):
    """allocate/release sequences conserve the register population and
    never hand out an allocated register twice."""
    freelist = FreeList(size, policy=policy)
    held: list[int] = []
    for allocate in actions:
        if allocate and freelist.free_count:
            preg = freelist.allocate()
            assert preg not in held
            held.append(preg)
        elif held:
            freelist.release(held.pop())
        assert freelist.free_count + freelist.allocated_count == size
        assert len(held) == freelist.allocated_count
    # Full drain restores everything.
    while held:
        freelist.release(held.pop())
    assert freelist.free_count == size


@settings(max_examples=30, deadline=None)
@given(size=st.integers(min_value=2, max_value=64))
def test_all_registers_reachable(size):
    freelist = FreeList(size)
    pregs = {freelist.allocate() for _ in range(size)}
    assert pregs == set(range(size))
