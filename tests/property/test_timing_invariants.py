"""Property tests: dataflow-timing invariants across storage schemes.

Every completed run must satisfy operand-before-execute ordering and the
issue bandwidth limits — for random programs and for real kernels, under
every register-storage scheme. This is the net that catches scheduling
bugs that silently inflate IPC.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    lru_config,
    monolithic_config,
    non_bypass_config,
    two_level_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline
from repro.core.validate import check_dataflow_timing, check_issue_bandwidth
from repro.vm.machine import Machine
from repro.workloads.suite import load_trace

from tests.property.test_vm_properties import straight_line_programs

ALL_CONFIGS = [
    use_based_config, lru_config, non_bypass_config,
    lambda **kw: monolithic_config(3, **kw),
    lambda **kw: monolithic_config(4, **kw),
    two_level_config,
]


def run_validated(trace, config_factory):
    config = config_factory(record_timing=True)
    pipeline = Pipeline(trace, config)
    pipeline.run()
    assert check_dataflow_timing(pipeline) == []
    assert check_issue_bandwidth(pipeline) == []


@settings(max_examples=15, deadline=None)
@given(
    program=straight_line_programs(),
    config_index=st.integers(min_value=0, max_value=len(ALL_CONFIGS) - 1),
)
def test_random_programs_respect_dataflow_timing(program, config_index):
    trace = Machine(program).run()
    run_validated(trace, ALL_CONFIGS[config_index])


@pytest.mark.parametrize("config_factory", ALL_CONFIGS,
                         ids=["use_based", "lru", "non_bypass",
                              "mono3", "mono4", "two_level"])
@pytest.mark.parametrize("bench", ["pointer_chase", "interp", "compress"])
def test_kernels_respect_dataflow_timing(bench, config_factory):
    trace = load_trace(bench, scale=0.12)
    run_validated(trace, config_factory)


def test_validator_requires_recording():
    trace = load_trace("crc", scale=0.12)
    pipeline = Pipeline(trace, use_based_config())
    pipeline.run()
    with pytest.raises(ValueError):
        check_dataflow_timing(pipeline)
    with pytest.raises(ValueError):
        check_issue_bandwidth(pipeline)


def test_validator_detects_planted_violation():
    trace = load_trace("crc", scale=0.12)
    pipeline = Pipeline(trace, use_based_config(record_timing=True))
    pipeline.run()
    # Corrupt one op's timing and confirm detection.
    for op in pipeline.issue_log.values():
        if op.src_producer_seqs and any(
            s >= 0 for s in op.src_producer_seqs
        ):
            op.exec_start = -100
            break
    assert check_dataflow_timing(pipeline)
