"""Property test: both timing cores agree on random programs.

For arbitrary small traces the event-driven core must reproduce the
per-cycle reference loop's ``SimStats.to_dict()`` bit for bit, under
every register-storage scheme. This is the randomized counterpart of
the kernel-based equivalence suite in
``tests/integration/test_core_equivalence.py``.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402

from repro.core.config import (  # noqa: E402
    monolithic_config,
    two_level_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline  # noqa: E402
from repro.vm.machine import Machine  # noqa: E402

from tests.property.test_vm_properties import (  # noqa: E402
    straight_line_programs,
)

SCHEMES = [
    use_based_config,
    lambda **kw: monolithic_config(3, **kw),
    two_level_config,
]


@settings(max_examples=20, deadline=None)
@given(program=straight_line_programs())
def test_event_core_bit_identical_on_random_traces(program):
    trace = Machine(program).run()
    for factory in SCHEMES:
        config = factory()
        cycle_stats = Pipeline(trace, config, core="cycle").run()
        event_stats = Pipeline(trace, config, core="event").run()
        assert event_stats.to_dict() == cycle_stats.to_dict()
