"""Property tests for replacement-policy tie-breaking (paper §4.2).

The use-based policy's victim ordering is a strict three-level key:
pinned status (saturated entries are the last resort), then remaining
uses, then LRU recency. These properties pin the tie-breaking rules the
figures depend on: among equal-remaining-use entries eviction is true
LRU, and a pinned entry is never evicted while any free entry exists.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regfile.register_cache import CacheEntry
from repro.regfile.replacement import (
    LRUReplacement,
    UseBasedReplacement,
    make_replacement_policy,
)


def _entry(preg, remaining, pinned, last_access):
    entry = CacheEntry(
        preg, remaining, pinned, now=last_access, is_fill=False,
    )
    entry.last_access = last_access
    return entry


#: One cache-set entry: (remaining uses, pinned, LRU timestamp). Unique
#: timestamps make LRU order total, so expectations are unambiguous.
entry_fields = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.booleans(),
    st.integers(min_value=0, max_value=10_000),
)


def _build(fields):
    seen = set()
    entries = []
    for index, (remaining, pinned, last_access) in enumerate(fields):
        while last_access in seen:  # force distinct LRU stamps
            last_access += 1
        seen.add(last_access)
        entries.append(_entry(index, remaining, pinned, last_access))
    return entries


sets_of_entries = st.lists(entry_fields, min_size=1, max_size=8).map(_build)


class TestLRUReplacement:
    @given(sets_of_entries)
    @settings(max_examples=200)
    def test_always_selects_minimum_timestamp(self, entries):
        victim = LRUReplacement().select_victim(entries)
        oldest = min(e.last_access for e in entries)
        assert entries[victim].last_access == oldest


class TestUseBasedReplacement:
    @given(sets_of_entries)
    @settings(max_examples=300)
    def test_pinned_never_evicted_before_free(self, entries):
        victim = UseBasedReplacement().select_victim(entries)
        if entries[victim].pinned:
            assert all(e.pinned for e in entries), (
                "a pinned entry was chosen while an unpinned entry "
                "was available"
            )

    @given(sets_of_entries)
    @settings(max_examples=300)
    def test_minimum_remaining_among_unpinned(self, entries):
        victim = UseBasedReplacement().select_victim(entries)
        unpinned = [e for e in entries if not e.pinned]
        if unpinned and not entries[victim].pinned:
            assert entries[victim].remaining == min(
                e.remaining for e in unpinned
            )

    @given(
        st.integers(min_value=0, max_value=7),
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=2, max_size=8, unique=True,
        ),
    )
    @settings(max_examples=300)
    def test_equal_remaining_ties_break_in_true_lru_order(
        self, remaining, timestamps,
    ):
        entries = [
            _entry(i, remaining, False, ts)
            for i, ts in enumerate(timestamps)
        ]
        victim = UseBasedReplacement().select_victim(entries)
        assert entries[victim].last_access == min(timestamps)
        # And it agrees with the pure-LRU policy on this degenerate set.
        assert victim == LRUReplacement().select_victim(entries)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=2, max_size=8, unique=True,
        ),
    )
    @settings(max_examples=200)
    def test_all_pinned_set_falls_back_to_lru(self, timestamps):
        entries = [
            _entry(i, 7, True, ts) for i, ts in enumerate(timestamps)
        ]
        victim = UseBasedReplacement().select_victim(entries)
        assert entries[victim].last_access == min(timestamps)

    @given(sets_of_entries)
    @settings(max_examples=200)
    def test_victim_ordering_is_the_documented_key(self, entries):
        victim = UseBasedReplacement().select_victim(entries)
        key = lambda e: (int(e.pinned), e.remaining, e.last_access)  # noqa: E731
        assert key(entries[victim]) == min(key(e) for e in entries)


def test_registry_round_trip():
    assert isinstance(
        make_replacement_policy("use_based"), UseBasedReplacement,
    )
    assert isinstance(make_replacement_policy("lru"), LRUReplacement)
