"""Property-based tests for the register cache.

Random sequences of writes, lookups, and invalidations must preserve the
structure's invariants and its statistics identities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regfile.indexing import RoundRobinIndexing, StandardIndexing
from repro.regfile.register_cache import RegisterCache
from repro.regfile.replacement import LRUReplacement, UseBasedReplacement

PREGS = 32


def build_cache(entries, assoc, decoupled, use_based):
    assoc_eff = assoc or entries
    num_sets = entries // assoc_eff
    index = (
        RoundRobinIndexing(num_sets) if decoupled
        else StandardIndexing(num_sets)
    )
    replacement = UseBasedReplacement() if use_based else LRUReplacement()
    return RegisterCache(entries, assoc, replacement, index), index


operations = st.lists(
    st.tuples(
        st.sampled_from(["write", "lookup", "invalidate", "filtered"]),
        st.integers(min_value=0, max_value=PREGS - 1),
        st.integers(min_value=0, max_value=7),   # remaining uses
        st.booleans(),                            # pinned
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=60, deadline=None)
@given(
    ops=operations,
    entries_assoc=st.sampled_from([(4, 1), (4, 2), (8, 2), (8, 0), (6, 2)]),
    decoupled=st.booleans(),
    use_based=st.booleans(),
)
def test_cache_invariants_hold(ops, entries_assoc, decoupled, use_based):
    entries, assoc = entries_assoc
    if not decoupled and entries // (assoc or entries) == 3:
        return  # standard indexing with non-power-of-two is fine too
    cache, index = build_cache(entries, assoc, decoupled, use_based)
    assigned: dict[int, int] = {}
    now = 0
    for action, preg, remaining, pinned in ops:
        now += 1
        if action == "write":
            set_index = assigned.get(preg)
            if set_index is None:
                set_index = index.assign(remaining)
                assigned[preg] = set_index
            cache.write(preg, set_index, remaining, pinned, now)
        elif action == "lookup":
            set_index = assigned.get(preg)
            if set_index is None:
                set_index = index.assign(remaining)
                assigned[preg] = set_index
            cache.lookup(preg, set_index, now)
        elif action == "filtered":
            cache.record_filtered_write(preg)
        else:
            cache.invalidate(preg, now)
            assigned.pop(preg, None)
        cache.check_invariants()
        assert cache.occupancy <= cache.num_entries

    stats = cache.stats
    # Statistics identities.
    assert stats.hits + stats.miss_count == stats.reads
    assert stats.instances_cached == stats.writes_initial + stats.writes_fill
    assert stats.evictions == (
        stats.evictions_with_uses + stats.zero_use_victims
    )
    assert stats.invalidations <= stats.values_freed
    assert 0.0 <= stats.miss_rate <= 1.0


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_pinned_entries_survive_unpinned_pressure(ops):
    """A pinned entry is never evicted while its set contains an
    unpinned entry."""
    cache, index = build_cache(4, 2, decoupled=True, use_based=True)
    pinned_set = index.assign(7)
    cache.write(999, pinned_set, 7, pinned=True, now=0)
    now = 0
    for action, preg, remaining, _pinned in ops:
        now += 1
        if action == "write":
            cache.write(preg, pinned_set, remaining, False, now)
    assert cache.contains(999)


@settings(max_examples=40, deadline=None)
@given(
    remainings=st.lists(
        st.integers(min_value=0, max_value=7), min_size=3, max_size=3
    )
)
def test_use_based_victim_minimizes_remaining(remainings):
    """Filling a 2-way set always evicts (one of) the minimum-remaining
    entries."""
    cache, _ = build_cache(2, 2, decoupled=False, use_based=True)
    cache.write(0, -1, remainings[0], False, now=0)
    cache.write(1, -1, remainings[1], False, now=1)
    cache.write(2, -1, remainings[2], False, now=2)
    evicted = next(p for p in (0, 1) if not cache.contains(p))
    survivor = 1 - evicted
    assert remainings[evicted] <= remainings[survivor]
