"""Chaos suite: every injected failure mode must recover.

Each test arms exactly one fault site through ``REPRO_FAULTS``, runs a
real sweep, and asserts two things: the run converges to the
*fault-free* result (bitwise, where the fault allows it), and the
recovery left the expected observability trail — retry/timeout/repair
counters a production run would alarm on. The differential oracle
cross-checks every recovered sweep against a replay of its traces.
"""

import json

import pytest

from repro.analysis.engine import ExperimentEngine, SimJob
from repro.core.config import use_based_config
from repro.testing import oracle
from repro.workloads.suite import (
    clear_trace_memo,
    load_trace,
    trace_counters,
)

pytestmark = pytest.mark.chaos

SCALE = 0.05
NAMES = ("compress", "pointer_chase")


def _jobs():
    return [
        SimJob(config=use_based_config(), trace_name=name, scale=SCALE)
        for name in NAMES
    ]


def _fault_free_baseline():
    engine = ExperimentEngine(workers=1, use_cache=False)
    return [stats.to_dict() for stats in engine.run(_jobs())]


def _assert_oracle_clean(results):
    traces = {name: load_trace(name, scale=SCALE) for name in NAMES}
    by_name = dict(zip(NAMES, results))
    assert oracle.check_results(traces, by_name) == {}


@pytest.mark.parametrize("workers", [1, 2])
def test_crashed_worker_is_retried_to_success(
    chaos_seed, monkeypatch, workers,
):
    """Every first attempt dies (os._exit in pool workers); the retry
    round gets a fresh pool and converges to the fault-free results."""
    baseline = _fault_free_baseline()
    monkeypatch.setenv(
        "REPRO_FAULTS", f"crash=1.0,times=1,seed={chaos_seed}",
    )
    engine = ExperimentEngine(
        workers=workers, use_cache=False, retries=2, retry_backoff=0.0,
    )
    results = engine.run(_jobs())
    assert [stats.to_dict() for stats in results] == baseline
    assert engine.counters.retries >= len(NAMES)
    assert engine.counters.errors == 0  # nothing failed *finally*
    _assert_oracle_clean(results)


@pytest.mark.parametrize("workers", [1, 2])
def test_hung_job_times_out_and_recovers(chaos_seed, monkeypatch, workers):
    """A wedged job is cut off by its wall-clock budget and retried."""
    baseline = _fault_free_baseline()
    monkeypatch.setenv(
        "REPRO_FAULTS",
        f"hang=1.0,times=1,hang_seconds=30,seed={chaos_seed}",
    )
    engine = ExperimentEngine(
        workers=workers, use_cache=False, job_timeout=0.5, retries=1,
        retry_backoff=0.0,
    )
    results = engine.run(_jobs())
    assert [stats.to_dict() for stats in results] == baseline
    assert engine.counters.timeouts == len(NAMES)
    assert engine.counters.retries == len(NAMES)
    assert engine.counters.errors == 0
    _assert_oracle_clean(results)


def test_corrupt_result_cache_entry_repaired(
    chaos_seed, tmp_path, monkeypatch,
):
    """A cache entry corrupted at write time is never served: the next
    run detects it, re-simulates, and heals the entry in place."""
    cache = tmp_path / "rcache"
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)
    monkeypatch.setenv(
        "REPRO_FAULTS", f"corrupt_cache=1.0,times=1,seed={chaos_seed}",
    )
    first_engine = ExperimentEngine(workers=1, cache_dir=cache)
    first = first_engine.run([job])[0]
    path = first_engine._cache_path(job.cache_key())
    assert path.exists()
    with pytest.raises(ValueError):
        json.loads(path.read_text())  # the stored entry is garbage

    second_engine = ExperimentEngine(workers=1, cache_dir=cache)
    second = second_engine.run([job])[0]
    assert second.to_dict() == first.to_dict()
    assert second_engine.counters.executed == 1  # re-simulated, not served

    third = second_engine.run([job])[0]
    assert third.to_dict() == first.to_dict()
    assert second_engine.counters.cache_hits == 1  # entry healed
    assert json.loads(path.read_text())["stats"]["cycles"] == first.cycles


def test_truncated_trace_cache_entry_repaired_and_counted(
    chaos_seed, metrics, monkeypatch,
):
    """A truncated packed trace triggers the repair path: regenerate,
    bump ``trace_cache_repairs``, and publish the metrics counter."""
    repairs_before = trace_counters().repairs
    monkeypatch.setenv(
        "REPRO_FAULTS", f"truncate_trace=1.0,times=1,seed={chaos_seed}",
    )
    first = load_trace("compress", scale=SCALE)  # stores truncated bytes

    clear_trace_memo()
    second = load_trace("compress", scale=SCALE)  # unreadable -> repair
    assert trace_counters().repairs == repairs_before + 1
    assert metrics.snapshot()["repro_trace_cache_repairs"] == 1
    assert len(second.records) == len(first.records)

    clear_trace_memo()
    third = load_trace("compress", scale=SCALE)  # healed entry loads
    assert trace_counters().repairs == repairs_before + 1
    assert len(third.records) == len(first.records)


def test_manifest_enospc_never_fails_the_run(
    chaos_seed, metrics, tmp_path, monkeypatch,
):
    """A full filesystem degrades observability, not the experiment."""
    monkeypatch.setenv(
        "REPRO_FAULTS", f"enospc=1.0,times=100,seed={chaos_seed}",
    )
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path / "rcache")
    results = engine.run(_jobs())
    assert all(stats.retired > 0 for stats in results)
    assert engine.counters.errors == 0
    assert metrics.snapshot()["repro_manifest_write_failures"] >= 3
    assert not engine.manifest.path.exists()  # every write was refused
    _assert_oracle_clean(results)
