"""Shared fixtures for the chaos (fault-injection) suite.

Every test here gets a private result cache, trace cache, and manifest
(``REPRO_CACHE_DIR`` / ``REPRO_TRACE_CACHE_DIR`` pointed at its own
``tmp_path``), a clean fault-plan memo, and an empty in-process trace
memo — so injected faults and their artifacts can never leak between
tests or into the rest of the run.

The suite is seed-parametric: ``REPRO_CHAOS_SEED`` (CI sweeps several
values) feeds every fault plan, so a recovery path that only survives
one lucky fault ordering still gets caught.
"""

import os

import pytest

from repro.obs.metrics import configure_metrics
from repro.testing import faults
from repro.workloads.suite import clear_trace_memo

#: Base seed for every fault plan in this suite.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "42"))


@pytest.fixture
def chaos_seed():
    return CHAOS_SEED


@pytest.fixture(autouse=True)
def _isolated_chaos_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "traces"))
    for knob in (
        "REPRO_FAULTS", "REPRO_RESUME", "REPRO_JOB_TIMEOUT",
        "REPRO_JOB_RETRIES", "REPRO_RETRY_BACKOFF", "REPRO_MANIFEST",
    ):
        monkeypatch.delenv(knob, raising=False)
    faults.reset()
    clear_trace_memo()
    yield
    faults.reset()
    clear_trace_memo()


@pytest.fixture
def metrics():
    """A live metrics registry, restored to the env default afterwards."""
    registry = configure_metrics(enabled=True)
    yield registry
    configure_metrics()
