"""Chaos suite: interrupted sweeps resume; broken results degrade.

Two end-to-end recovery stories. First, a sweep killed mid-run (an
injected ``KeyboardInterrupt`` between jobs) leaves a checkpoint trail
that a ``resume=True`` engine uses to re-run *only* the missing jobs.
Second, a result the differential oracle rejects becomes an explicit
hole: the experiment still renders (with its failures called out) and
the CLI exits 3 instead of publishing silently-partial data.
"""

import pytest

from repro.analysis import experiments
from repro.analysis.engine import ExperimentEngine, SimJob, configure
from repro.analysis.report import render
from repro.core.config import use_based_config
from repro.obs.manifest import checkpoint_events, read_manifest
from repro.testing import faults
from repro.workloads.suite import SHORT_SUITE
from repro.analysis.sweeps import load_traces

pytestmark = pytest.mark.chaos

SCALE = 0.05
NAMES = ("compress", "pointer_chase", "hash_dict")


def _jobs():
    return [
        SimJob(config=use_based_config(), trace_name=name, scale=SCALE)
        for name in NAMES
    ]


def _probe_seed(site, identities, start):
    """First seed >= *start* whose plan fires mid-sweep.

    The fault must spare the first job (so there is finished work to
    resume / a partial result to render) but hit at least one other.
    Decisions are pure in (seed, site, identity), so this probe costs
    a few hashes, not simulations.
    """
    for seed in range(start, start + 10_000):
        plan = faults.FaultPlan(
            seed=seed, rates=faults.MappingProxyType({site: 0.5}),
        )
        fires = [
            plan.decide(site, identity, attempt=0)
            for identity in identities
        ]
        if not fires[0] and any(fires):
            return seed, fires.index(True)
    pytest.fail(f"no workable {site} seed within 10000 of {start}")


def test_interrupted_sweep_resumes_only_missing_jobs(
    chaos_seed, tmp_path, monkeypatch,
):
    jobs = _jobs()
    seed, fire_index = _probe_seed(
        "interrupt", [job.fault_identity() for job in jobs], chaos_seed,
    )
    cache = tmp_path / "rcache"
    monkeypatch.setenv(
        "REPRO_FAULTS", f"interrupt=0.5,times=1,seed={seed}",
    )
    first = ExperimentEngine(workers=1, cache_dir=cache)
    with pytest.raises(KeyboardInterrupt):
        first.run(jobs)
    # Every job finished before the interrupt was already folded in.
    assert first.counters.executed == fire_index

    monkeypatch.delenv("REPRO_FAULTS")
    faults.reset()
    second = ExperimentEngine(workers=1, cache_dir=cache, resume=True)
    results = second.run(_jobs())
    assert all(stats.retired > 0 for stats in results)
    assert second.counters.resumed == fire_index
    assert second.counters.cache_hits == fire_index
    assert second.counters.executed == len(jobs) - fire_index

    events = checkpoint_events(read_manifest(second.manifest.path))
    assert [event["event"] for event in events] == [
        "start", "interrupted", "start", "complete",
    ]
    assert events[1]["done"] == fire_index


def test_invalid_results_degrade_to_partial_experiment(
    chaos_seed, tmp_path, monkeypatch,
):
    monkeypatch.setenv("REPRO_SCALE", str(SCALE))
    monkeypatch.setenv("REPRO_SUITE", "short")
    traces = load_traces(SHORT_SUITE, SCALE)
    jobs = [
        SimJob.for_trace(trace, use_based_config(), label=name)
        for name, trace in traces.items()
    ]
    seed, _ = _probe_seed(
        "bad_stats", [job.fault_identity() for job in jobs], chaos_seed,
    )
    monkeypatch.setenv(
        "REPRO_FAULTS", f"bad_stats=0.5,times=1,seed={seed}",
    )
    configure(workers=1, cache_dir=tmp_path / "rcache", retries=0)
    try:
        result = experiments.fig1_lifetimes()
        failures = result.meta["failures"]
        assert failures
        assert all(f["kind"] == "invalid" for f in failures)
        assert len(failures) < len(jobs)  # partial, not empty
        text = render(result)
        assert "failed:" in text

        # The CLI renders the partial figure but refuses exit code 0.
        assert experiments.main(["fig1", "--quiet"]) == 3
    finally:
        configure()
