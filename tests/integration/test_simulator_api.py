"""Integration tests for the public simulation API."""

import pytest

from repro import (
    DEFAULT_SUITE,
    MachineConfig,
    SHORT_SUITE,
    Trace,
    assemble,
    load_trace,
    mean_ipc,
    run_program,
    simulate,
    simulate_benchmark,
    simulate_suite,
    use_based_config,
)


def test_simulate_default_config():
    trace = run_program(assemble("""
        addi r1, r0, 10
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    """))
    stats = simulate(trace)
    assert stats.retired == len(trace)
    assert stats.cache is not None


def test_simulate_benchmark_by_name():
    stats = simulate_benchmark("crc", scale=0.12)
    assert stats.benchmark == "crc"
    assert stats.ipc > 0


def test_simulate_suite_returns_all():
    results = simulate_suite(names=("crc", "strmatch"), scale=0.12)
    assert set(results) == {"crc", "strmatch"}
    assert mean_ipc(results) > 0


def test_suite_constants():
    assert set(SHORT_SUITE) <= set(DEFAULT_SUITE)
    assert len(DEFAULT_SUITE) == 8


def test_load_trace_cached():
    a = load_trace("crc", scale=0.12)
    b = load_trace("crc", scale=0.12)
    assert a is b
    assert isinstance(a, Trace)


def test_same_trace_same_config_is_deterministic():
    trace = load_trace("strmatch", scale=0.12)
    first = simulate(trace, MachineConfig())
    second = simulate(trace, MachineConfig())
    assert first.cycles == second.cycles
    assert first.cache.miss_count == second.cache.miss_count
    assert first.branch_mispredicts == second.branch_mispredicts


def test_config_changes_change_results():
    trace = load_trace("compress", scale=0.12)
    small = simulate(trace, use_based_config(cache_entries=8))
    large = simulate(trace, use_based_config(cache_entries=128))
    assert small.cache.miss_count >= large.cache.miss_count


def test_memoryless_mode_runs():
    trace = load_trace("crc", scale=0.12)
    stats = simulate(trace, MachineConfig(model_memory=False))
    assert stats.retired == len(trace)


def test_invalid_benchmark_raises():
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        simulate_benchmark("missing")
