"""Integration tests for the experiment harness.

Every paper artifact function must run end to end at tiny scale and
return a well-formed, renderable result whose content passes basic
sanity checks.
"""

import pytest

from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.report import ExperimentResult, render

SCALE = 0.12

FAST_EXPERIMENTS = [
    "table1", "fig1", "fig2", "fig9", "fig10", "table2", "predictor",
]


@pytest.fixture(autouse=True)
def short_suite(monkeypatch):
    monkeypatch.setenv("REPRO_SUITE", "short")
    monkeypatch.setenv("REPRO_SCALE", str(SCALE))


@pytest.mark.parametrize("name", FAST_EXPERIMENTS)
def test_experiment_runs_and_renders(name):
    result = EXPERIMENTS[name]()
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{name} produced no rows"
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = render(result)
    assert result.experiment_id in text


def test_registry_covers_all_paper_artifacts():
    expected = {
        "table1", "fig1", "fig2", "fig6", "fig7", "fig8", "fig9",
        "fig10", "table2", "fig11", "fig12", "tuning_max_use",
        "tuning_defaults", "predictor", "s34_noise", "ablations",
    }
    assert expected == set(EXPERIMENTS)


def test_fig2_live_below_allocated():
    result = EXPERIMENTS["fig2"]()
    assert result.meta["live_p50"] < result.meta["alloc_p50"]


def test_fig8_small():
    result = EXPERIMENTS["fig8"]()
    # Six rows: three schemes x two indexing modes.
    assert len(result.rows) == 6
    for row in result.rows:
        scheme, indexing, filtered, capacity, conflict, total = row
        assert total == pytest.approx(filtered + capacity + conflict,
                                      abs=1e-9)


def test_fig11_small():
    result = EXPERIMENTS["fig11"](sizes=(16, 64))
    numeric_rows = [r for r in result.rows if isinstance(r[0], int)]
    assert {r[0] for r in numeric_rows} == {16, 64}
    for row in numeric_rows:
        for ipc in row[1:]:
            assert 0 < ipc < 8


def test_fig12_small():
    result = EXPERIMENTS["fig12"](latencies=(1, 4))
    numeric_rows = [r for r in result.rows if isinstance(r[0], int)]
    lat1 = next(r for r in numeric_rows if r[0] == 1)
    lat4 = next(r for r in numeric_rows if r[0] == 4)
    # Higher backing latency never helps any caching scheme.
    for col in range(1, 4):
        assert lat4[col] <= lat1[col] + 0.02


def test_tuning_max_use_small():
    result = EXPERIMENTS["tuning_max_use"](values=(2, 7))
    assert len(result.rows) == 2


def test_cli_main_runs(capsys):
    from repro.analysis.experiments import main
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out


def test_cli_main_rejects_unknown():
    from repro.analysis.experiments import main
    assert main(["figZZ"]) == 2


def test_cli_main_no_args_usage():
    from repro.analysis.experiments import main
    assert main([]) == 1


def test_cli_main_failed_experiment_exits_three(monkeypatch, capsys):
    import repro.analysis.experiments as experiments_mod
    from repro.errors import EngineError

    def boom():
        raise EngineError("1 of 9 jobs failed; first: gcc[register_cache]")

    monkeypatch.setitem(experiments_mod.EXPERIMENTS, "boom", boom)
    assert experiments_mod.main(["boom", "table1"]) == 3
    captured = capsys.readouterr()
    # The failure is reported on stderr; later experiments still render.
    assert "boom: FAILED" in captured.err
    assert "1 experiment(s) with failing jobs: boom" in captured.err
    assert "table1" in captured.out


def test_cli_main_verbose_and_quiet_flags(monkeypatch):
    import logging

    from repro.analysis.experiments import main
    from repro.obs.log import ROOT_LOGGER

    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    assert main(["--verbose", "table1"]) == 0
    assert logging.getLogger(ROOT_LOGGER).level == logging.INFO
    assert main(["-q", "table1"]) == 0
    assert logging.getLogger(ROOT_LOGGER).level == logging.ERROR
