"""End-to-end tests of the observability subsystem.

Covers the acceptance criteria of the ``repro.obs`` work: a traced
pipeline run emits a valid Chrome ``trace_event`` JSON containing cache
and predictor events; an engine sweep writes a JSONL manifest whose
totals round-trip through the regression gate; the result cache
survives concurrent writers; and the experiments CLI reports failures
with a distinct exit code.
"""

import json
import threading

import pytest

from repro.analysis.engine import ExperimentEngine, SimJob
from repro.analysis.obs import compare_metrics, extract_metrics, main as obs_main
from repro.core.config import lru_config, use_based_config
from repro.core.pipeline import Pipeline
from repro.obs.manifest import read_manifest, summarize_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import EventTracer
from repro.workloads.suite import load_trace

SCALE = 0.06


# ----------------------------------------------------------------------
# Pipeline tracing.


def _small_cache_config():
    # A small cache forces hits, misses, and evictions in a short run.
    return use_based_config(cache_entries=8, cache_assoc=2)


class TestPipelineTracing:
    def test_env_enabled_run_writes_valid_chrome_trace(
        self, tmp_path, monkeypatch,
    ):
        out = tmp_path / "trace.json"
        monkeypatch.setenv("REPRO_TRACE_EVENTS", "1")
        monkeypatch.setenv("REPRO_TRACE_FILE", str(out))
        trace = load_trace("compress", scale=SCALE)
        pipeline = Pipeline(trace, _small_cache_config(), metrics=None)
        pipeline.run()

        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events, "traced run emitted no events"
        for event in events:
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert event["ph"] in ("i", "X", "C")
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 1.0
        names = {event["name"] for event in events}
        # Register-cache activity...
        assert {"rc_hit", "rc_miss", "rc_evict"} <= names
        # ...predictor activity...
        assert {"dou_predict", "dou_train"} <= names
        # ...and pipeline stage activity.
        assert {"fetch", "rename", "issue", "writeback"} <= names
        # Cache, pipeline, and predictor streams get distinct lanes.
        assert {"cache", "pipeline", "predictor"} <= set(
            doc["otherData"]["lanes"]
        )

    def test_env_disabled_run_writes_nothing(self, tmp_path, monkeypatch):
        out = tmp_path / "trace.json"
        monkeypatch.delenv("REPRO_TRACE_EVENTS", raising=False)
        monkeypatch.setenv("REPRO_TRACE_FILE", str(out))
        trace = load_trace("compress", scale=SCALE)
        pipeline = Pipeline(trace, _small_cache_config(), metrics=None)
        assert pipeline.tracer is None
        pipeline.run()
        assert not out.exists()

    def test_explicit_tracer_not_autowritten(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_FILE", str(tmp_path / "t.json"))
        tracer = EventTracer()
        trace = load_trace("compress", scale=SCALE)
        Pipeline(
            trace, _small_cache_config(), tracer=tracer, metrics=None,
        ).run()
        assert len(tracer) > 0
        assert not (tmp_path / "t.json").exists()

    def test_windowing_bounds_event_count(self):
        tracer = EventTracer(head_cycles=100, tail_events=500)
        trace = load_trace("compress", scale=SCALE)
        Pipeline(
            trace, _small_cache_config(), tracer=tracer, metrics=None,
        ).run()
        head_and_tail_max = len(
            [e for e in tracer.events() if e[3] < 100]
        ) + 500
        assert len(tracer) <= head_and_tail_max
        assert tracer.dropped > 0  # the run overflowed the tail window

    def test_run_publishes_metrics(self):
        registry = MetricsRegistry(enabled=True)
        trace = load_trace("compress", scale=SCALE)
        stats = Pipeline(
            trace, _small_cache_config(), tracer=None, metrics=registry,
        ).run()
        snapshot = registry.snapshot()
        labels = f"{{bench={stats.benchmark},scheme={stats.scheme}}}"
        assert snapshot[f"sim.runs{labels}"] == 1
        assert snapshot[f"sim.cycles{labels}"] == stats.cycles
        assert snapshot[f"sim.ipc{labels}"] == pytest.approx(stats.ipc)
        assert snapshot[f"rc.reads{labels}"] == stats.cache.reads
        assert snapshot[f"dou.queries{labels}"] == stats.predictor_queries


# ----------------------------------------------------------------------
# Engine manifests and the gate round-trip.


class TestEngineManifest:
    def _jobs(self, with_failure=False):
        jobs = [
            SimJob(config=use_based_config(), trace_name=name, scale=SCALE)
            for name in ("compress", "pointer_chase")
        ]
        if with_failure:
            jobs.append(SimJob(
                config=lru_config(), trace_name="no_such_kernel",
                scale=SCALE,
            ))
        return jobs

    def test_manifest_roundtrips_through_gate(self, tmp_path):
        engine = ExperimentEngine(
            workers=1, cache_dir=tmp_path, use_cache=True,
        )
        engine.run(self._jobs())          # cold: everything executes
        engine.run(self._jobs())          # warm: everything cached
        results = engine.run(
            self._jobs(with_failure=True), raise_on_error=False,
        )

        manifest = tmp_path / "manifest.jsonl"
        assert manifest.exists()
        records = read_manifest(manifest)
        summary = summarize_manifest(records)

        # Totals agree with what the engine actually did.
        assert summary["jobs"] == 7
        assert summary["runs"] == 3
        assert summary["cache_hits"] == engine.counters.cache_hits == 4
        assert summary["cache_misses"] == engine.counters.executed == 3
        assert summary["errors"] == engine.counters.errors == 1
        assert summary["wall_seconds"] == pytest.approx(
            engine.counters.job_seconds, abs=1e-3,
        )

        # The failure record carries the real traceback.
        [failure] = summary["failures"]
        assert "no_such_kernel" in failure["job"]
        assert "Traceback" in str(
            next(r for r in records if r.get("status") == "error")["error"]
        )
        assert not results[-1]  # JobFailure slots are falsy

        # Round-trip: the summary is gate-comparable with itself...
        metrics = extract_metrics(manifest)
        regressions, compared = compare_metrics(metrics, dict(metrics))
        assert regressions == [] and compared > 0
        # ...and an error increase trips the gate.
        worse = dict(metrics)
        worse["errors"] += 1
        regressions, _ = compare_metrics(metrics, worse)
        assert [r.metric for r in regressions] == ["errors"]

    def test_run_records_include_provenance(self, tmp_path):
        engine = ExperimentEngine(
            workers=1, cache_dir=tmp_path, use_cache=True,
        )
        engine.run(self._jobs())
        records = read_manifest(tmp_path / "manifest.jsonl")
        job_records = [r for r in records if r["kind"] == "job"]
        run_records = [r for r in records if r["kind"] == "run"]
        assert len(job_records) == 2 and len(run_records) == 1
        for record in job_records:
            assert record["trace"] == ["compress", SCALE, None] or (
                record["trace"] == ["pointer_chase", SCALE, None]
            )
            assert record["config_hash"]
            assert record["key"]
            assert record["worker"]  # executed, so a real pid
        assert run_records[0]["jobs"] == 2
        assert run_records[0]["executed"] == 2

    def test_manifest_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST", "0")
        engine = ExperimentEngine(
            workers=1, cache_dir=tmp_path, use_cache=True,
        )
        assert engine.manifest is None
        engine.run(self._jobs()[:1])
        assert not (tmp_path / "manifest.jsonl").exists()

    def test_counters_expose_wall_percentiles(self, tmp_path):
        engine = ExperimentEngine(
            workers=1, cache_dir=tmp_path, use_cache=False,
        )
        before = engine.counters.snapshot()
        engine.run(self._jobs())
        delta = engine.counters.since(before)
        assert delta["executed"] == 2
        assert delta["job_seconds_p50"] > 0
        assert delta["job_seconds_p95"] >= delta["job_seconds_p50"]

    def test_obs_cli_summarize_matches_engine(self, tmp_path, capsys):
        engine = ExperimentEngine(
            workers=1, cache_dir=tmp_path, use_cache=True,
        )
        engine.run(self._jobs())
        assert obs_main(
            ["summarize", str(tmp_path / "manifest.jsonl")],
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs"] == 2
        assert summary["errors"] == 0


# ----------------------------------------------------------------------
# Concurrent cache writers.


class TestConcurrentCacheWriters:
    def test_racing_writers_and_readers_never_tear(self, tmp_path):
        engine = ExperimentEngine(
            workers=1, cache_dir=tmp_path, use_cache=True,
        )
        job = SimJob(
            config=use_based_config(), trace_name="compress", scale=SCALE,
        )
        [stats] = engine.run([job])
        expected = stats.to_dict()

        errors: list[BaseException] = []

        def writer():
            try:
                for _ in range(20):
                    engine._cache_store(job, stats)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                for _ in range(40):
                    loaded = engine._cache_load(job)
                    # A reader may race the very first publish (miss),
                    # but must never see a torn/partial entry.
                    if loaded is not None:
                        assert loaded.to_dict() == expected
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = (
            [threading.Thread(target=writer) for _ in range(4)]
            + [threading.Thread(target=reader) for _ in range(4)]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # No leftover tmp files once all writers finished.
        leftovers = [
            p for p in tmp_path.rglob("*.tmp.*") if p.is_file()
        ]
        assert leftovers == []
        assert engine._cache_load(job).to_dict() == expected
