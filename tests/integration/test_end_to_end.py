"""Integration tests: full benchmarks under every storage scheme.

These encode the paper's headline qualitative claims (C1-C5 in
DESIGN.md) at reduced scale so they run in seconds. Comparisons use
generous margins: the claims are about orderings, not absolute numbers.
"""

import math

import pytest

from repro.core.config import (
    lru_config,
    monolithic_config,
    non_bypass_config,
    two_level_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline
from repro.workloads.suite import load_trace

SCALE = 0.2
BENCHES = ("compress", "hash_dict", "interp", "crc", "strmatch")


def gmean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_all(config):
    return {
        name: Pipeline(load_trace(name, scale=SCALE), config).run()
        for name in BENCHES
    }


@pytest.fixture(scope="module")
def results():
    configs = {
        "use_based": use_based_config(),
        "use_based_16": use_based_config(cache_entries=16),
        "lru": lru_config(),
        "lru_16": lru_config(cache_entries=16),
        "non_bypass": non_bypass_config(),
        "two_level": two_level_config(),
        "mono1": monolithic_config(1),
        "mono2": monolithic_config(2),
        "mono3": monolithic_config(3),
    }
    return {label: run_all(cfg) for label, cfg in configs.items()}


def ipc(results, label):
    return gmean([s.ipc for s in results[label].values()])


def test_everything_retires(results):
    for per_bench in results.values():
        for name, stats in per_bench.items():
            assert stats.retired == len(load_trace(name, scale=SCALE))


def test_monolithic_latency_ordering(results):
    assert ipc(results, "mono1") > ipc(results, "mono2") >= ipc(
        results, "mono3"
    )


def test_use_based_beats_three_cycle_rf(results):
    """Headline claim C1: the 64-entry 2-way use-based cache outperforms
    the 3-cycle monolithic register file."""
    assert ipc(results, "use_based") > ipc(results, "mono3")


def test_use_based_recovers_most_of_latency_loss(results):
    """Paper: use-based caching recovers over half the performance lost
    to the 3-cycle register file."""
    recovered = ipc(results, "use_based") - ipc(results, "mono3")
    lost = ipc(results, "mono1") - ipc(results, "mono3")
    assert recovered > 0.5 * lost


def test_use_based_beats_non_bypass(results):
    assert ipc(results, "use_based") > ipc(results, "non_bypass")


def test_use_based_advantage_grows_at_small_sizes(results):
    """Paper: the advantage over other caches increases as caches
    shrink."""
    margin_64 = ipc(results, "use_based") - ipc(results, "lru")
    margin_16 = ipc(results, "use_based_16") - ipc(results, "lru_16")
    assert margin_16 > margin_64


def test_use_based_at_16_beats_lru_at_16(results):
    assert ipc(results, "use_based_16") > ipc(results, "lru_16")


def test_miss_rate_orderings(results):
    """Claim C2: non-bypass's filtered misses push its total miss rate
    above LRU's at 64 entries; use-based stays below non-bypass."""
    def total_miss_rate(label):
        reads = sum(s.cache.reads for s in results[label].values())
        misses = sum(s.cache.miss_count for s in results[label].values())
        return misses / reads

    assert total_miss_rate("non_bypass") > total_miss_rate("lru")
    assert total_miss_rate("use_based") < total_miss_rate("non_bypass")


def test_bypass_supplies_large_fraction(results):
    """Paper §3.1: the bypass network supplies many operands (57% in
    their simulations)."""
    stats = results["use_based"]
    bypassed = sum(s.operands_bypass for s in stats.values())
    total = bypassed + sum(s.operands_storage for s in stats.values())
    assert 0.35 < bypassed / total < 0.9


def test_predictor_accuracy_high(results):
    """Paper §3.3: degree-of-use prediction accuracy ~97%."""
    stats = results["use_based"]
    supplied = sum(s.predictor_supplied for s in stats.values())
    correct = sum(s.predictor_correct for s in stats.values())
    assert correct / supplied > 0.9


def test_table2_orderings(results):
    """Claim: use-based has the most reads per cached value and the
    longest entry lifetimes; LRU caches every value at least once."""
    def agg(label):
        per = results[label]
        hits = sum(s.cache.hits for s in per.values())
        instances = sum(s.cache.instances_cached for s in per.values())
        freed = sum(s.cache.values_freed for s in per.values())
        return hits / instances, instances / freed

    ub_reads, ub_count = agg("use_based")
    lru_reads, lru_count = agg("lru")
    nb_reads, nb_count = agg("non_bypass")
    assert ub_reads > nb_reads > lru_reads
    assert lru_count > nb_count > ub_count
    assert lru_count >= 0.99  # LRU writes every value


def test_two_level_between_baselines(results):
    """The two-level file lands between the 1-cycle and 3-cycle
    monolithic files."""
    assert ipc(results, "mono3") < ipc(results, "two_level") <= ipc(
        results, "mono1"
    ) * 1.001


def test_lifetime_shape(results):
    """Claim C4: values are live for a short fraction of their
    lifetime."""
    from repro.core.lifetimes import phase_summary
    for stats in results["use_based"].values():
        summary = phase_summary(stats.lifetimes)
        assert summary.live <= summary.empty + summary.dead


def test_live_registers_well_below_allocated(results):
    from repro.core.lifetimes import allocated_cdf, live_cdf
    records = []
    for stats in results["use_based"].values():
        records.extend(stats.lifetimes)
    assert live_cdf(records).median < allocated_cdf(records).median
