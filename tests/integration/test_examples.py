"""Integration tests: every shipped example runs end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py", ["0.12"])
    out = capsys.readouterr().out
    assert "register cache" in out
    assert "IPC" in out


def test_compare_schemes_runs(capsys):
    run_example("compare_schemes.py", ["32", "0.12"])
    out = capsys.readouterr().out
    assert "use-based cache" in out
    assert "monolithic RF, 3 cycles" in out


def test_lifetime_analysis_runs(capsys):
    run_example("lifetime_analysis.py", ["0.12"])
    out = capsys.readouterr().out
    assert "allocated" in out and "live" in out


def test_custom_workload_runs(capsys):
    run_example("custom_workload.py", [])
    out = capsys.readouterr().out
    assert "dot_product" in out
    assert "synthetic" in out


@pytest.mark.parametrize(
    "name", sorted(p.name for p in EXAMPLES.glob("*.py"))
)
def test_every_example_has_docstring(name):
    text = (EXAMPLES / name).read_text()
    assert text.lstrip().startswith(('"""', "#!"))
