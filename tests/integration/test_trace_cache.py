"""The on-disk trace cache: correctness, invalidation, and repair.

The contract under test is the trace factory's promise to the engine:
a cached load is bit-identical to fresh VM execution, cache identity
follows the kernel/ISA/VM sources (an edit anywhere invalidates), and a
corrupted entry is silently regenerated and repaired — never served and
never fatal.
"""

import hashlib

import pytest

from repro.analysis.engine import ExperimentEngine, SimJob
from repro.core.config import use_based_config
from repro.workloads import suite
from repro.workloads.suite import (
    _hash_tree,
    _trace_key,
    _trace_path,
    clear_trace_memo,
    load_trace,
    warm_trace_cache,
)

SCALE = 0.06


@pytest.fixture
def trace_cache(tmp_path, monkeypatch):
    """Route the trace cache to a fresh directory, with a cold memo."""
    cache_dir = tmp_path / "traces"
    monkeypatch.setenv("REPRO_TRACE_CACHE", "1")
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(cache_dir))
    clear_trace_memo()
    yield cache_dir
    clear_trace_memo()


def _signatures(trace):
    return [record.signature() for record in trace]


def test_cached_load_bit_identical_to_fresh_execution(trace_cache):
    fresh = load_trace("compress", scale=SCALE)
    path = _trace_path(_trace_key("compress", SCALE, None))
    assert path.is_file()  # generation stored the packed trace

    clear_trace_memo()  # force the next load through the disk cache
    before = suite.trace_counters().snapshot()
    cached = load_trace("compress", scale=SCALE)
    delta = suite.trace_counters().since(before)
    assert delta["traces_loaded"] == 1
    assert delta["traces_generated"] == 0

    assert cached is not fresh
    assert _signatures(cached) == _signatures(fresh)
    assert cached.provenance == fresh.provenance
    assert cached.degree_of_use_histogram() == fresh.degree_of_use_histogram()


def test_cache_key_tracks_source_fingerprint(tmp_path):
    """Editing any fingerprinted source must change the cache address."""
    root = tmp_path / "pkg"
    root.mkdir()
    kernel = root / "kernel.py"
    kernel.write_text("A = 1\n")

    def fingerprint():
        digest = hashlib.sha256()
        _hash_tree(root, digest)
        return digest.hexdigest()

    before = fingerprint()
    kernel.write_text("A = 2\n")
    after_edit = fingerprint()
    assert after_edit != before  # content feeds the hash
    (root / "extra.py").write_text("")
    assert fingerprint() != after_edit  # new files feed it too


def test_trace_key_depends_on_fingerprint(monkeypatch):
    key = _trace_key("compress", SCALE, None)
    monkeypatch.setattr(
        suite, "_trace_fingerprint", lambda: "0" * 64
    )
    assert _trace_key("compress", SCALE, None) != key


def test_corrupted_cache_file_regenerated_and_repaired(trace_cache):
    fresh = load_trace("compress", scale=SCALE)
    path = _trace_path(_trace_key("compress", SCALE, None))
    original = path.read_bytes()
    path.write_bytes(original[: len(original) // 3])  # truncate mid-blob

    clear_trace_memo()
    before = suite.trace_counters().snapshot()
    again = load_trace("compress", scale=SCALE)
    delta = suite.trace_counters().since(before)
    assert delta["traces_generated"] == 1  # corrupt entry never served
    assert _signatures(again) == _signatures(fresh)
    assert path.read_bytes() == original  # entry repaired on disk


def test_warm_trace_cache_creates_disk_entry(trace_cache):
    path = _trace_path(_trace_key("pointer_chase", SCALE, None))
    assert not path.exists()
    assert warm_trace_cache("pointer_chase", scale=SCALE)
    assert path.is_file()
    # Second warm is a no-op fast path (entry already on disk).
    assert warm_trace_cache("pointer_chase", scale=SCALE)


def test_warm_stores_even_when_memoized(trace_cache):
    load_trace("hash_dict", scale=SCALE)  # memoized + stored
    path = _trace_path(_trace_key("hash_dict", SCALE, None))
    path.unlink()
    assert warm_trace_cache("hash_dict", scale=SCALE)  # re-store from memo
    assert path.is_file()


def test_cache_disabled_by_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "traces"))
    clear_trace_memo()
    try:
        load_trace("compress", scale=SCALE)
        assert not (tmp_path / "traces").exists()
        assert not warm_trace_cache("compress", scale=SCALE)
    finally:
        clear_trace_memo()


def test_engine_second_run_avoids_all_vm_execution(trace_cache, tmp_path):
    """Acceptance: with a warm trace cache, a cold-pool sweep performs
    zero VM re-executions (trace-gen counter stays 0)."""
    jobs = [
        SimJob(config=use_based_config(), trace_name=name, scale=SCALE)
        for name in ("compress", "pointer_chase")
    ]
    first = ExperimentEngine(workers=1, cache_dir=tmp_path / "r1")
    first.run(jobs)
    assert first.counters.traces_generated == 2
    assert first.counters.trace_gen_seconds > 0

    clear_trace_memo()  # model a cold worker pool
    second = ExperimentEngine(workers=1, cache_dir=tmp_path / "r2")
    second.run(jobs)
    assert second.counters.traces_generated == 0
    assert second.counters.traces_loaded == 2
    assert second.counters.trace_load_seconds > 0


def test_engine_counters_reach_experiment_meta(trace_cache, tmp_path,
                                               monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", str(SCALE))
    monkeypatch.setenv("REPRO_SUITE", "short")
    from repro.analysis import experiments
    from repro.analysis.engine import configure

    configure(workers=1, cache_dir=tmp_path / "results")
    try:
        result = experiments.table2_metrics()
    finally:
        configure()
    meta = result.meta["engine"]
    assert meta["traces_generated"] + meta["traces_loaded"] > 0
