"""Dual-run equivalence: event-driven core vs per-cycle reference.

The cycle-skipping event core (``REPRO_SIM_CORE=event``) must be a pure
wall-clock optimization: for every trace and storage scheme it has to
produce a :class:`SimStats` whose ``to_dict()`` payload is *bit
identical* to the per-cycle reference loop's, and both must satisfy the
differential oracle. Same contract for the engine's shared-frontend
sweep batching and the precomputed branch plan it rides on.
"""

import pytest

from repro.analysis.engine import ExperimentEngine, SimJob
from repro.core.config import (
    lru_config,
    monolithic_config,
    two_level_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline
from repro.frontend.fetch import branch_plan_for
from repro.testing.oracle import check_run
from repro.workloads.suite import load_trace

SCHEMES = {
    "use_based": use_based_config,
    "monolithic": lambda **kw: monolithic_config(3, **kw),
    "two_level": two_level_config,
}


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
@pytest.mark.parametrize("bench", ["pointer_chase", "interp", "compress"])
def test_cores_bit_identical_and_oracle_clean(bench, scheme):
    trace = load_trace(bench, scale=0.12)
    config = SCHEMES[scheme]()
    cycle_stats = Pipeline(trace, config, core="cycle").run()
    event_stats = Pipeline(trace, config, core="event").run()
    assert event_stats.to_dict() == cycle_stats.to_dict()
    assert check_run(trace, cycle_stats) == []
    assert check_run(trace, event_stats) == []


def test_env_var_selects_core(monkeypatch):
    """``REPRO_SIM_CORE`` picks the loop; both answers agree."""
    trace = load_trace("crc", scale=0.1)
    config = use_based_config()
    monkeypatch.setenv("REPRO_SIM_CORE", "cycle")
    cycle_stats = Pipeline(trace, config).run()
    monkeypatch.setenv("REPRO_SIM_CORE", "event")
    event_stats = Pipeline(trace, config).run()
    assert event_stats.to_dict() == cycle_stats.to_dict()


def test_branch_plan_matches_live_predictors():
    """A precomputed branch plan changes nothing about the simulation."""
    trace = load_trace("interp", scale=0.12)
    plan = branch_plan_for(trace)
    assert len(plan) == len(trace.records)
    assert branch_plan_for(trace) is plan  # memoized on the trace
    config = use_based_config()
    live = Pipeline(trace, config).run()
    planned = Pipeline(trace, config, branch_plan=plan).run()
    assert planned.to_dict() == live.to_dict()


def _sweep_jobs(trace):
    configs = [
        use_based_config(backing_read_latency=latency)
        for latency in (1, 3)
    ] + [lru_config(), two_level_config(), monolithic_config(3)]
    return [
        SimJob.for_trace(trace, config, label=f"cfg{i}")
        for i, config in enumerate(configs)
    ]


def test_batched_sweep_matches_unbatched():
    """Shared-frontend batching returns the exact per-job results."""
    trace = load_trace("crc", scale=0.12)
    unbatched = ExperimentEngine(
        workers=1, use_cache=False, batching=False,
    ).run(_sweep_jobs(trace))
    batched = ExperimentEngine(
        workers=1, use_cache=False, batching=True,
    ).run(_sweep_jobs(trace))
    assert len(batched) == len(unbatched)
    for batched_stats, unbatched_stats in zip(batched, unbatched):
        assert batched_stats.to_dict() == unbatched_stats.to_dict()
