"""The experiment engine: fan-out, caching, and failure capture.

The contract under test is the one the analysis layer depends on: the
serial path, the process-pool path, and the cache-hit path must return
*bitwise-identical* SimStats for the same job grid, corrupt or stale
cache entries must be re-simulated (never served), and failures must be
captured per job.
"""

import json
import signal
import time

import pytest

from repro.analysis import engine as engine_mod
from repro.analysis.engine import (
    EngineCounters,
    ExperimentEngine,
    JobFailure,
    SimJob,
)
from repro.core.config import (
    lru_config,
    monolithic_config,
    use_based_config,
)
from repro.core.pipeline import Pipeline
from repro.errors import EngineError
from repro.obs.manifest import checkpoint_events, read_manifest
from repro.workloads.suite import load_trace

SCALE = 0.06
TRACES = ("compress", "pointer_chase", "hash_dict")
CONFIGS = (use_based_config(), lru_config(), monolithic_config(3))


def _grid_jobs():
    return [
        SimJob(config=config, trace_name=name, scale=SCALE, label=name)
        for config in CONFIGS
        for name in TRACES
    ]


def _dicts(results):
    return [stats.to_dict() for stats in results]


def test_serial_parallel_and_cached_results_identical(tmp_path):
    """3 configs x 3 traces: every execution path agrees bit-for-bit."""
    serial = ExperimentEngine(workers=1, use_cache=False)
    baseline = _dicts(serial.run(_grid_jobs()))
    assert serial.counters.executed == 9

    parallel = ExperimentEngine(workers=4, cache_dir=tmp_path / "cache")
    cold = _dicts(parallel.run(_grid_jobs()))
    assert cold == baseline
    assert parallel.counters.cache_misses == 9

    # Second pass: everything comes from the on-disk cache, untouched.
    warm = _dicts(parallel.run(_grid_jobs()))
    assert warm == baseline
    assert parallel.counters.cache_hits == 9
    assert parallel.counters.executed == 9  # no re-simulation


def test_parallel_pool_actually_used(tmp_path):
    engine = ExperimentEngine(workers=4, use_cache=False)
    jobs = [
        SimJob(config=use_based_config(), trace_name=name, scale=SCALE)
        for name in TRACES
    ]
    results = engine.run(jobs)
    assert len(results) == 3
    if engine.counters.serial_fallbacks == 0:
        assert engine.counters.parallel_jobs == 3


def test_corrupted_cache_entry_detected_and_resimulated(tmp_path):
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)
    first = engine.run([job])[0]
    path = engine._cache_path(job.cache_key())
    assert path.exists()

    # Truncate the entry mid-JSON: the probe must treat it as a miss,
    # re-simulate, and repair the file.
    path.write_text(path.read_text()[: 40])
    again = engine.run([job])[0]
    assert again.to_dict() == first.to_dict()
    assert engine.counters.executed == 2
    assert json.loads(path.read_text())["stats"]["cycles"] == first.cycles


def test_stale_cache_key_mismatch_is_a_miss(tmp_path):
    """An entry whose recorded key disagrees with its address (e.g. a
    file surviving a hash-scheme change) is never served."""
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)
    first = engine.run([job])[0]
    path = engine._cache_path(job.cache_key())
    payload = json.loads(path.read_text())
    payload["key"] = "0" * 64
    path.write_text(json.dumps(payload))

    again = engine.run([job])[0]
    assert again.to_dict() == first.to_dict()
    assert engine.counters.executed == 2


def test_code_fingerprint_feeds_cache_key(monkeypatch):
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)
    before = job.cache_key()
    monkeypatch.setattr(engine_mod, "_code_fingerprint_memo", "deadbeef")
    assert job.cache_key() != before


def test_job_failure_captured_and_raised(tmp_path):
    """A failing job raises EngineError naming the job; with
    raise_on_error=False the slot holds the captured traceback."""
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    bad = SimJob(config=use_based_config(max_cycles=10),
                 trace_name="compress", scale=SCALE, label="doomed")
    good = SimJob(config=use_based_config(), trace_name="compress",
                  scale=SCALE)

    with pytest.raises(EngineError, match="doomed"):
        engine.run([good, bad])

    results = engine.run([good, bad], raise_on_error=False)
    assert results[0]  # real stats in slot 0
    failure = results[1]
    assert isinstance(failure, JobFailure)
    assert not failure  # failed slots are falsy
    assert "SimulationError" in failure.error
    assert engine.counters.errors >= 1
    # The failure must not have been cached as a result.
    assert engine._cache_load(bad) is None


def test_in_memory_trace_jobs_run_but_bypass_cache(tmp_path):
    # load_trace memoizes Trace objects per process, so sever the
    # provenance on a copy-like job and restore it afterwards.
    trace = load_trace("compress", scale=SCALE)
    saved = trace.provenance
    trace.provenance = None  # no safe cache identity exists
    try:
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        job = SimJob.for_trace(trace, use_based_config())
        assert not job.cacheable
        engine.run([job])
        engine.run([job])
        assert engine.counters.executed == 2
        assert engine.counters.cache_hits == 0
    finally:
        trace.provenance = saved


def test_counters_flow_into_experiment_meta(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", str(SCALE))
    monkeypatch.setenv("REPRO_SUITE", "short")
    from repro.analysis import experiments
    from repro.analysis.engine import configure

    configure(workers=1, cache_dir=tmp_path)
    try:
        result = experiments.table2_metrics()
    finally:
        configure()
    meta = result.meta["engine"]
    assert meta["jobs"] > 0
    assert meta["cache_misses"] + meta["cache_hits"] == meta["jobs"]
    assert meta["engine_seconds"] > 0
    assert meta["max_job_seconds"] > 0


def test_counters_since_reports_deltas():
    counters = EngineCounters(jobs=5, executed=3, job_seconds=1.5,
                              max_job_seconds=0.9)
    before = counters.snapshot()
    counters.jobs += 2
    counters.cache_hits += 2
    delta = counters.since(before)
    assert delta["jobs"] == 2
    assert delta["cache_hits"] == 2
    assert delta["executed"] == 0
    assert delta["max_job_seconds"] == 0.9  # running max, not a delta


class _CorruptingPipeline:
    """Runs the real pipeline, then breaks a conservation invariant."""

    def __init__(self, trace, config):
        self._inner = Pipeline(trace, config)

    def run(self):
        stats = self._inner.run()
        stats.retired = -stats.retired - 1
        return stats


def test_invalid_result_rejected_and_never_cached(tmp_path, monkeypatch):
    """A result the oracle rejects must not poison the cache.

    Regression test for the store-before-validate ordering bug: the
    engine used to write the cache entry first, so a corrupted result
    would be served as a hit forever after.
    """
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)

    monkeypatch.setattr(engine_mod, "Pipeline", _CorruptingPipeline)
    failure = engine.run([job], raise_on_error=False)[0]
    assert isinstance(failure, JobFailure)
    assert failure.kind == "invalid"
    assert "retired" in failure.error
    # Nothing was cached for the poisoned run.
    assert engine._cache_load(job) is None

    # With the fault gone the same engine simulates cleanly and caches.
    monkeypatch.setattr(engine_mod, "Pipeline", Pipeline)
    stats = engine.run([job], raise_on_error=False)[0]
    assert stats and stats.retired > 0
    assert engine.counters.executed == 2
    assert engine._cache_load(job) is not None


class _SleepyPipeline:
    """Blocks long past any test-sized job timeout."""

    def __init__(self, trace, config):
        del trace, config

    def run(self):  # pragma: no cover - interrupted by SIGALRM
        time.sleep(30)


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                    reason="needs SIGALRM timeouts")
def test_job_timeout_enforced_and_retried_serially(tmp_path, monkeypatch):
    engine = ExperimentEngine(
        workers=1, cache_dir=tmp_path, job_timeout=0.2, retries=1,
        retry_backoff=0.0,
    )
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)

    monkeypatch.setattr(engine_mod, "Pipeline", _SleepyPipeline)
    failure = engine.run([job], raise_on_error=False)[0]
    assert isinstance(failure, JobFailure)
    assert failure.kind == "timeout"
    assert "wall-clock budget" in failure.error
    # Initial attempt + one retry, both cut off by the alarm.
    assert engine.counters.timeouts == 2
    assert engine.counters.retries == 1
    assert engine._cache_load(job) is None

    # A retry that recovers yields real stats and no failure slot.
    calls = {"n": 0}

    class FlakyPipeline:
        def __init__(self, trace, config):
            self._inner = Pipeline(trace, config)

        def run(self):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(30)  # pragma: no cover - alarm interrupts
            return self._inner.run()

    monkeypatch.setattr(engine_mod, "Pipeline", FlakyPipeline)
    stats = engine.run([job])[0]
    assert stats.retired > 0
    assert calls["n"] == 2
    assert engine.counters.timeouts == 3
    assert engine.counters.retries == 2


def test_resume_accounts_for_previously_completed_jobs(tmp_path):
    """A resumed sweep re-runs only the jobs the first run never did."""
    done = [
        SimJob(config=use_based_config(), trace_name=name, scale=SCALE)
        for name in ("compress", "pointer_chase")
    ]
    fresh = SimJob(config=lru_config(), trace_name="hash_dict",
                   scale=SCALE)

    first = ExperimentEngine(workers=1, cache_dir=tmp_path)
    first.run(done)
    assert first.counters.executed == 2

    second = ExperimentEngine(workers=1, cache_dir=tmp_path, resume=True)
    results = second.run(done + [fresh])
    assert all(stats.retired > 0 for stats in results)
    assert second.counters.resumed == 2
    assert second.counters.cache_hits == 2
    assert second.counters.executed == 1

    # Both runs left start/complete checkpoint fences in the manifest.
    events = checkpoint_events(read_manifest(second.manifest.path))
    assert [e["event"] for e in events] == [
        "start", "complete", "start", "complete",
    ]


@pytest.mark.smoke
def test_smoke_single_cached_engine_job(tmp_path):
    """Fast end-to-end probe: one tiny job, simulated then cache-hit."""
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=0.03)
    first = engine.run([job])[0]
    second = engine.run([job])[0]
    assert engine.counters.cache_hits == 1
    assert second.to_dict() == first.to_dict()
    assert first.retired > 0
