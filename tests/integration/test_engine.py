"""The experiment engine: fan-out, caching, and failure capture.

The contract under test is the one the analysis layer depends on: the
serial path, the process-pool path, and the cache-hit path must return
*bitwise-identical* SimStats for the same job grid, corrupt or stale
cache entries must be re-simulated (never served), and failures must be
captured per job.
"""

import json

import pytest

from repro.analysis import engine as engine_mod
from repro.analysis.engine import (
    EngineCounters,
    ExperimentEngine,
    JobFailure,
    SimJob,
)
from repro.core.config import (
    lru_config,
    monolithic_config,
    use_based_config,
)
from repro.errors import EngineError
from repro.workloads.suite import load_trace

SCALE = 0.06
TRACES = ("compress", "pointer_chase", "hash_dict")
CONFIGS = (use_based_config(), lru_config(), monolithic_config(3))


def _grid_jobs():
    return [
        SimJob(config=config, trace_name=name, scale=SCALE, label=name)
        for config in CONFIGS
        for name in TRACES
    ]


def _dicts(results):
    return [stats.to_dict() for stats in results]


def test_serial_parallel_and_cached_results_identical(tmp_path):
    """3 configs x 3 traces: every execution path agrees bit-for-bit."""
    serial = ExperimentEngine(workers=1, use_cache=False)
    baseline = _dicts(serial.run(_grid_jobs()))
    assert serial.counters.executed == 9

    parallel = ExperimentEngine(workers=4, cache_dir=tmp_path / "cache")
    cold = _dicts(parallel.run(_grid_jobs()))
    assert cold == baseline
    assert parallel.counters.cache_misses == 9

    # Second pass: everything comes from the on-disk cache, untouched.
    warm = _dicts(parallel.run(_grid_jobs()))
    assert warm == baseline
    assert parallel.counters.cache_hits == 9
    assert parallel.counters.executed == 9  # no re-simulation


def test_parallel_pool_actually_used(tmp_path):
    engine = ExperimentEngine(workers=4, use_cache=False)
    jobs = [
        SimJob(config=use_based_config(), trace_name=name, scale=SCALE)
        for name in TRACES
    ]
    results = engine.run(jobs)
    assert len(results) == 3
    if engine.counters.serial_fallbacks == 0:
        assert engine.counters.parallel_jobs == 3


def test_corrupted_cache_entry_detected_and_resimulated(tmp_path):
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)
    first = engine.run([job])[0]
    path = engine._cache_path(job.cache_key())
    assert path.exists()

    # Truncate the entry mid-JSON: the probe must treat it as a miss,
    # re-simulate, and repair the file.
    path.write_text(path.read_text()[: 40])
    again = engine.run([job])[0]
    assert again.to_dict() == first.to_dict()
    assert engine.counters.executed == 2
    assert json.loads(path.read_text())["stats"]["cycles"] == first.cycles


def test_stale_cache_key_mismatch_is_a_miss(tmp_path):
    """An entry whose recorded key disagrees with its address (e.g. a
    file surviving a hash-scheme change) is never served."""
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)
    first = engine.run([job])[0]
    path = engine._cache_path(job.cache_key())
    payload = json.loads(path.read_text())
    payload["key"] = "0" * 64
    path.write_text(json.dumps(payload))

    again = engine.run([job])[0]
    assert again.to_dict() == first.to_dict()
    assert engine.counters.executed == 2


def test_code_fingerprint_feeds_cache_key(monkeypatch):
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=SCALE)
    before = job.cache_key()
    monkeypatch.setattr(engine_mod, "_code_fingerprint_memo", "deadbeef")
    assert job.cache_key() != before


def test_job_failure_captured_and_raised(tmp_path):
    """A failing job raises EngineError naming the job; with
    raise_on_error=False the slot holds the captured traceback."""
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    bad = SimJob(config=use_based_config(max_cycles=10),
                 trace_name="compress", scale=SCALE, label="doomed")
    good = SimJob(config=use_based_config(), trace_name="compress",
                  scale=SCALE)

    with pytest.raises(EngineError, match="doomed"):
        engine.run([good, bad])

    results = engine.run([good, bad], raise_on_error=False)
    assert results[0]  # real stats in slot 0
    failure = results[1]
    assert isinstance(failure, JobFailure)
    assert not failure  # failed slots are falsy
    assert "SimulationError" in failure.error
    assert engine.counters.errors >= 1
    # The failure must not have been cached as a result.
    assert engine._cache_load(bad) is None


def test_in_memory_trace_jobs_run_but_bypass_cache(tmp_path):
    # load_trace memoizes Trace objects per process, so sever the
    # provenance on a copy-like job and restore it afterwards.
    trace = load_trace("compress", scale=SCALE)
    saved = trace.provenance
    trace.provenance = None  # no safe cache identity exists
    try:
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        job = SimJob.for_trace(trace, use_based_config())
        assert not job.cacheable
        engine.run([job])
        engine.run([job])
        assert engine.counters.executed == 2
        assert engine.counters.cache_hits == 0
    finally:
        trace.provenance = saved


def test_counters_flow_into_experiment_meta(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", str(SCALE))
    monkeypatch.setenv("REPRO_SUITE", "short")
    from repro.analysis import experiments
    from repro.analysis.engine import configure

    configure(workers=1, cache_dir=tmp_path)
    try:
        result = experiments.table2_metrics()
    finally:
        configure()
    meta = result.meta["engine"]
    assert meta["jobs"] > 0
    assert meta["cache_misses"] + meta["cache_hits"] == meta["jobs"]
    assert meta["engine_seconds"] > 0
    assert meta["max_job_seconds"] > 0


def test_counters_since_reports_deltas():
    counters = EngineCounters(jobs=5, executed=3, job_seconds=1.5,
                              max_job_seconds=0.9)
    before = counters.snapshot()
    counters.jobs += 2
    counters.cache_hits += 2
    delta = counters.since(before)
    assert delta["jobs"] == 2
    assert delta["cache_hits"] == 2
    assert delta["executed"] == 0
    assert delta["max_job_seconds"] == 0.9  # running max, not a delta


@pytest.mark.smoke
def test_smoke_single_cached_engine_job(tmp_path):
    """Fast end-to-end probe: one tiny job, simulated then cache-hit."""
    engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
    job = SimJob(config=use_based_config(), trace_name="compress",
                 scale=0.03)
    first = engine.run([job])[0]
    second = engine.run([job])[0]
    assert engine.counters.cache_hits == 1
    assert second.to_dict() == first.to_dict()
    assert first.retired > 0
